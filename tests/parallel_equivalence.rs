//! Serial ≡ parallel equivalence: the executor's determinism contract,
//! end to end.
//!
//! The engine promises that a tuning run's *entire* [`TuningResult`] —
//! trace, best config, sample counts, unstable set, model-error records —
//! is bit-identical whether trials execute serially or on any number of
//! worker threads. These tests pin that contract for all three SuTs and
//! worker counts {1, 2, 4, 10}, at the pipeline level and at the full
//! experiment level (tuning + deployment on fresh VMs).

use tuna_core::executor::ExecutionMode;
use tuna_core::experiment::{Experiment, Method};
use tuna_core::pipeline::{TunaConfig, TunaPipeline, TuningResult};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::Objective;
use tuna_stats::rng::Rng;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;
use tuna_workloads::Workload;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 10];

fn tune(workload: &Workload, mode: ExecutionMode, seed: u64, rounds: usize) -> TuningResult {
    // Reuse the production workload→SuT and metric→objective mappings.
    let mut exp = Experiment::quick_demo();
    exp.workload = workload.clone();
    let sut = exp.make_sut();
    let objective = exp.objective();
    let cluster = tuna_cloudsim::Cluster::new(
        10,
        tuna_cloudsim::VmSku::d8s_v5(),
        tuna_cloudsim::Region::westus2(),
        seed,
    );
    let optimizer = SmacOptimizer::multi_fidelity(
        sut.space().clone(),
        objective,
        SmacParams {
            n_init: 5,
            n_random_candidates: 30,
            n_neighbors: 4,
            ..SmacParams::default()
        },
        LadderParams::paper_default(),
    );
    let mut cfg = TunaConfig::paper_default(workload.metric.nominal());
    cfg.mode = mode;
    let mut pipeline = TunaPipeline::new(cfg, sut.as_ref(), workload, Box::new(optimizer), cluster);
    let mut rng = Rng::seed_from(seed + 1);
    pipeline.run_rounds(rounds, &mut rng);
    pipeline.finish()
}

/// For each SuT and each worker count, the full `TuningResult` must be
/// bit-identical to serial execution.
#[test]
fn tuning_result_bit_identical_across_modes_all_suts() {
    for workload in [
        tuna_workloads::tpcc(),
        tuna_workloads::ycsb_c(),
        tuna_workloads::wikipedia(),
    ] {
        let serial = tune(&workload, ExecutionMode::Serial, 11, 25);
        assert!(!serial.trace.is_empty());
        for workers in WORKER_COUNTS {
            let parallel = tune(&workload, ExecutionMode::Parallel { workers }, 11, 25);
            assert_eq!(
                serial, parallel,
                "{} diverged from serial at {workers} workers",
                workload.name
            );
        }
    }
}

/// Equality must extend to every result facet the paper reports: best
/// value bits, per-round reported values, unstable classifications and
/// cumulative sample accounting.
#[test]
fn trace_facets_match_bitwise() {
    let workload = tuna_workloads::tpcc();
    let serial = tune(&workload, ExecutionMode::Serial, 23, 40);
    let parallel = tune(&workload, ExecutionMode::Parallel { workers: 10 }, 23, 40);
    assert_eq!(serial.best_value.to_bits(), parallel.best_value.to_bits());
    assert_eq!(serial.best_config, parallel.best_config);
    assert_eq!(serial.n_unstable_configs, parallel.n_unstable_configs);
    assert_eq!(serial.total_samples, parallel.total_samples);
    for (s, p) in serial.trace.iter().zip(&parallel.trace) {
        assert_eq!(
            s.reported.to_bits(),
            p.reported.to_bits(),
            "round {}",
            s.round
        );
        assert_eq!(s.unstable, p.unstable, "round {}", s.round);
        assert_eq!(s.cumulative_samples, p.cumulative_samples);
    }
    assert_eq!(serial.model_errors, parallel.model_errors);
}

/// The full experiment protocol — tuning plus deployment on fresh VMs —
/// is mode-invariant too (deployment lanes use the same fork discipline).
#[test]
fn experiment_with_deployment_is_mode_invariant() {
    let run = |exec: ExecutionMode| {
        let mut exp = Experiment::quick_demo();
        exp.rounds = 15;
        exp.exec = exec;
        exp.run(Method::Tuna, 77)
    };
    let serial = run(ExecutionMode::Serial);
    for workers in [2, 4] {
        let parallel = run(ExecutionMode::Parallel { workers });
        assert_eq!(serial.best_config, parallel.best_config);
        assert_eq!(serial.tuning, parallel.tuning);
        assert_eq!(
            serial.deployment.values, parallel.deployment.values,
            "deployment distribution diverged at {workers} workers"
        );
        assert_eq!(serial.deployment.crashes, parallel.deployment.crashes);
    }
}

/// The naive-distributed baseline rides the same engine; §6.5.2 numbers
/// must not depend on the worker count either.
#[test]
fn naive_distributed_baseline_is_mode_invariant() {
    let run = |exec: ExecutionMode| {
        let mut exp = Experiment::quick_demo();
        exp.rounds = 10;
        exp.exec = exec;
        exp.run(Method::NaiveDistributed { samples: 100 }, 13)
    };
    let serial = run(ExecutionMode::Serial);
    let parallel = run(ExecutionMode::Parallel { workers: 10 });
    assert_eq!(serial.tuning, parallel.tuning);
    assert_eq!(serial.deployment.values, parallel.deployment.values);
}

/// Executor accounting: every scheduled sample is executed and counted
/// exactly once, and the critical path never exceeds the busy total.
#[test]
fn exec_stats_account_for_every_run() {
    let workload = tuna_workloads::tpcc();
    let sut = Postgres::new();
    let cluster = tuna_cloudsim::Cluster::new(
        10,
        tuna_cloudsim::VmSku::d8s_v5(),
        tuna_cloudsim::Region::westus2(),
        3,
    );
    let optimizer = SmacOptimizer::multi_fidelity(
        sut.space().clone(),
        Objective::Maximize,
        SmacParams {
            n_init: 5,
            n_random_candidates: 30,
            ..SmacParams::default()
        },
        LadderParams::paper_default(),
    );
    let mut cfg = TunaConfig::paper_default(1.0);
    cfg.mode = ExecutionMode::Parallel { workers: 4 };
    let mut pipeline = TunaPipeline::new(cfg, &sut, &workload, Box::new(optimizer), cluster);
    let mut rng = Rng::seed_from(4);
    pipeline.run_rounds(30, &mut rng);
    let stats = *pipeline.exec_stats();
    let result = pipeline.finish();
    assert_eq!(stats.runs, result.total_samples);
    assert!(stats.batches <= 30);
    assert!(stats.critical_nanos <= stats.busy_nanos);
    assert!(stats.speedup() > 0.0);
}
