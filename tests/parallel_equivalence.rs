//! Serial ≡ parallel equivalence: the executor's determinism contract,
//! end to end.
//!
//! The engine promises that a tuning run's *entire* [`TuningResult`] —
//! trace, best config, sample counts, unstable set, model-error records —
//! is bit-identical whether trials execute serially or on any number of
//! worker threads. These tests pin that contract for all three SuTs and
//! worker counts {1, 2, 4, 10}, at the pipeline level and at the full
//! experiment level (tuning + deployment on fresh VMs).

use tuna_core::campaign::{Arm, Campaign, CampaignRunner, Recipe, ResultStore, SampleBudgetSpec};
use tuna_core::executor::ExecutionMode;
use tuna_core::experiment::{Experiment, Method};
use tuna_core::pipeline::{TunaConfig, TunaPipeline, TuningResult};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::Objective;
use tuna_stats::rng::Rng;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;
use tuna_workloads::Workload;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 10];

fn tune(workload: &Workload, mode: ExecutionMode, seed: u64, rounds: usize) -> TuningResult {
    // Reuse the production workload→SuT and metric→objective mappings.
    let mut exp = Experiment::quick_demo();
    exp.workload = workload.clone();
    let sut = exp.make_sut();
    let objective = exp.objective();
    let cluster = tuna_cloudsim::Cluster::new(
        10,
        tuna_cloudsim::VmSku::d8s_v5(),
        tuna_cloudsim::Region::westus2(),
        seed,
    );
    let optimizer = SmacOptimizer::multi_fidelity(
        sut.space().clone(),
        objective,
        SmacParams {
            n_init: 5,
            n_random_candidates: 30,
            n_neighbors: 4,
            ..SmacParams::default()
        },
        LadderParams::paper_default(),
    );
    let mut cfg = TunaConfig::paper_default(workload.metric.nominal());
    cfg.mode = mode;
    let mut pipeline = TunaPipeline::new(cfg, sut.as_ref(), workload, Box::new(optimizer), cluster);
    let mut rng = Rng::seed_from(seed + 1);
    pipeline.run_rounds(rounds, &mut rng);
    pipeline.finish()
}

/// For each SuT and each worker count, the full `TuningResult` must be
/// bit-identical to serial execution.
#[test]
fn tuning_result_bit_identical_across_modes_all_suts() {
    for workload in [
        tuna_workloads::tpcc(),
        tuna_workloads::ycsb_c(),
        tuna_workloads::wikipedia(),
    ] {
        let serial = tune(&workload, ExecutionMode::Serial, 11, 25);
        assert!(!serial.trace.is_empty());
        for workers in WORKER_COUNTS {
            let parallel = tune(&workload, ExecutionMode::Parallel { workers }, 11, 25);
            assert_eq!(
                serial, parallel,
                "{} diverged from serial at {workers} workers",
                workload.name
            );
        }
    }
}

/// Equality must extend to every result facet the paper reports: best
/// value bits, per-round reported values, unstable classifications and
/// cumulative sample accounting.
#[test]
fn trace_facets_match_bitwise() {
    let workload = tuna_workloads::tpcc();
    let serial = tune(&workload, ExecutionMode::Serial, 23, 40);
    let parallel = tune(&workload, ExecutionMode::Parallel { workers: 10 }, 23, 40);
    assert_eq!(serial.best_value.to_bits(), parallel.best_value.to_bits());
    assert_eq!(serial.best_config, parallel.best_config);
    assert_eq!(serial.n_unstable_configs, parallel.n_unstable_configs);
    assert_eq!(serial.total_samples, parallel.total_samples);
    for (s, p) in serial.trace.iter().zip(&parallel.trace) {
        assert_eq!(
            s.reported.to_bits(),
            p.reported.to_bits(),
            "round {}",
            s.round
        );
        assert_eq!(s.unstable, p.unstable, "round {}", s.round);
        assert_eq!(s.cumulative_samples, p.cumulative_samples);
    }
    assert_eq!(serial.model_errors, parallel.model_errors);
}

/// The full experiment protocol — tuning plus deployment on fresh VMs —
/// is mode-invariant too (deployment lanes use the same fork discipline).
#[test]
fn experiment_with_deployment_is_mode_invariant() {
    let run = |exec: ExecutionMode| {
        let mut exp = Experiment::quick_demo();
        exp.rounds = 15;
        exp.exec = exec;
        exp.run(Method::Tuna, 77)
    };
    let serial = run(ExecutionMode::Serial);
    for workers in [2, 4] {
        let parallel = run(ExecutionMode::Parallel { workers });
        assert_eq!(serial.best_config, parallel.best_config);
        assert_eq!(serial.tuning, parallel.tuning);
        assert_eq!(
            serial.deployment.values, parallel.deployment.values,
            "deployment distribution diverged at {workers} workers"
        );
        assert_eq!(serial.deployment.crashes, parallel.deployment.crashes);
    }
}

/// The naive-distributed baseline rides the same engine; §6.5.2 numbers
/// must not depend on the worker count either.
#[test]
fn naive_distributed_baseline_is_mode_invariant() {
    let run = |exec: ExecutionMode| {
        let mut exp = Experiment::quick_demo();
        exp.rounds = 10;
        exp.exec = exec;
        exp.run(Method::NaiveDistributed { samples: 100 }, 13)
    };
    let serial = run(ExecutionMode::Serial);
    let parallel = run(ExecutionMode::Parallel { workers: 10 });
    assert_eq!(serial.tuning, parallel.tuning);
    assert_eq!(serial.deployment.values, parallel.deployment.values);
}

/// A small mixed-recipe campaign for the determinism tests below: two
/// workloads, a protocol arm, a default arm and a pinned sample-budget
/// arm — every recipe family the figure binaries use except the
/// convergence pair (covered by the campaign module's own tests).
fn test_campaign(name: &str) -> Campaign {
    let mut campaign = Campaign::protocol(
        name,
        17,
        vec![tuna_workloads::tpcc(), tuna_workloads::ycsb_c()],
        &[],
    )
    .with_runs(2)
    .with_rounds(2);
    campaign.arms = vec![
        Arm::new("TUNA", Recipe::protocol(Method::Tuna)),
        Arm::new("Default", Recipe::protocol(Method::DefaultConfig)),
        Arm::new(
            "TUNA (equal cost)",
            Recipe::SampleBudget(SampleBudgetSpec::new(25, 900, 2, 77)),
        ),
    ];
    campaign
}

/// The campaign engine's determinism contract, grid-level: a campaign's
/// entire result store — every cell record, every per-cell digest, the
/// campaign checksum — is bit-identical whether cells execute serially or
/// are work-stolen by 4 worker threads.
#[test]
fn campaign_serial_and_parallel_stores_bit_identical() {
    let campaign = test_campaign("equivalence");
    let mut serial_store = ResultStore::in_memory(&campaign);
    let serial = CampaignRunner::serial().run(&campaign, &mut serial_store);
    assert!(serial.complete);
    assert_eq!(serial.cells.len(), campaign.n_cells());
    for workers in [1usize, 4] {
        let mut store = ResultStore::in_memory(&campaign);
        let parallel = CampaignRunner::with_workers(workers).run(&campaign, &mut store);
        assert_eq!(
            serial.checksum, parallel.checksum,
            "campaign checksum diverged at {workers} workers"
        );
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                s.record, p.record,
                "cell {} record diverged at {workers} workers",
                s.cell
            );
        }
    }
}

/// Resume-after-interrupt equals an uninterrupted run: a campaign stopped
/// partway through (at any cut point, under either execution mode) and
/// rerun against its store finalizes to byte-identical CSV/JSON files and
/// the same campaign checksum.
#[test]
fn campaign_resume_after_interrupt_is_bit_identical() {
    let campaign = test_campaign("resume");
    let dir = std::env::temp_dir().join(format!(
        "tuna-parallel-equivalence-campaign-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let reference_path = dir.join("reference.csv");
    let mut reference_store = ResultStore::open(&reference_path, &campaign).unwrap();
    let reference = CampaignRunner::serial().run(&campaign, &mut reference_store);
    assert!(reference.complete);
    let reference_csv = std::fs::read_to_string(&reference_path).unwrap();
    let reference_json = std::fs::read_to_string(reference_path.with_extension("json")).unwrap();

    for (cut, workers) in [(1usize, 1usize), (3, 1), (5, 4)] {
        let path = dir.join(format!("resume-{cut}-{workers}.csv"));
        let mut store = ResultStore::open(&path, &campaign).unwrap();
        let partial = CampaignRunner::with_workers(workers)
            .with_cell_limit(cut)
            .run(&campaign, &mut store);
        assert!(!partial.complete);
        assert_eq!(partial.executed, cut);
        drop(store);

        let mut store = ResultStore::open(&path, &campaign).unwrap();
        assert_eq!(store.len(), cut, "journal lost cells at cut {cut}");
        let resumed = CampaignRunner::with_workers(workers).run(&campaign, &mut store);
        assert!(resumed.complete);
        assert_eq!(resumed.executed, campaign.n_cells() - cut);
        assert_eq!(
            resumed.checksum, reference.checksum,
            "cut {cut} workers {workers}"
        );
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            reference_csv,
            "resumed CSV differs (cut {cut}, workers {workers})"
        );
        assert_eq!(
            std::fs::read_to_string(path.with_extension("json")).unwrap(),
            reference_json,
            "resumed JSON differs (cut {cut}, workers {workers})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Executor accounting: every scheduled sample is executed and counted
/// exactly once, and the critical path never exceeds the busy total.
#[test]
fn exec_stats_account_for_every_run() {
    let workload = tuna_workloads::tpcc();
    let sut = Postgres::new();
    let cluster = tuna_cloudsim::Cluster::new(
        10,
        tuna_cloudsim::VmSku::d8s_v5(),
        tuna_cloudsim::Region::westus2(),
        3,
    );
    let optimizer = SmacOptimizer::multi_fidelity(
        sut.space().clone(),
        Objective::Maximize,
        SmacParams {
            n_init: 5,
            n_random_candidates: 30,
            ..SmacParams::default()
        },
        LadderParams::paper_default(),
    );
    let mut cfg = TunaConfig::paper_default(1.0);
    cfg.mode = ExecutionMode::Parallel { workers: 4 };
    let mut pipeline = TunaPipeline::new(cfg, &sut, &workload, Box::new(optimizer), cluster);
    let mut rng = Rng::seed_from(4);
    pipeline.run_rounds(30, &mut rng);
    let stats = *pipeline.exec_stats();
    let result = pipeline.finish();
    assert_eq!(stats.runs, result.total_samples);
    assert!(stats.batches <= 30);
    assert!(stats.critical_nanos <= stats.busy_nanos);
    assert!(stats.speedup() > 0.0);
}
