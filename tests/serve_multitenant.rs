//! Integration tests for the multi-tenant scheduler's determinism
//! contract: a fixed tenant mix on the sim clock schedules
//! bit-identically at any worker width, and a kill/restart preserves
//! the per-tenant usage meters byte-for-byte.
//!
//! Everything runs through the loopback [`SimServer`] with a configured
//! tenant table: requests travel as real wire bytes — bearer token and
//! all — through the daemon's parse→auth→route→serialize path, and
//! scheduling happens in deterministic ticks.

use tuna::serve::manager::USAGE_FILE;
use tuna::serve::sim::SimServer;
use tuna::serve::tenant::TenantRegistry;

/// An 8-cell study (1 workload x 1 arm x 8 runs). The daemon stamps
/// the submitting tenant onto the spec, so the same body serves both
/// tenants.
const JOB: &str = r#"{
  "name": "job",
  "seed": 5,
  "runs": 8,
  "rounds": 2,
  "workloads": ["tpcc"],
  "arms": [{"label": "Default", "method": "default"}]
}"#;

/// The golden deterministic schedule for alice (weight 3) vs bob
/// (weight 1) racing equal 8-cell studies: weighted fair share gives
/// alice 3 of every 4 grants while both compete, then bob drains the
/// remainder. Hand-derivable from the virtual-time rule (pick the
/// tenant minimizing scheduled/weight, ties to least recently
/// scheduled, then name) and locked in by `serve/multitenant` in the
/// perf gate.
const GOLDEN: [&str; 16] = [
    "alice", "bob", "alice", "alice", "bob", "alice", "alice", "alice", "bob", "alice", "alice",
    "bob", "bob", "bob", "bob", "bob",
];

fn registry() -> TenantRegistry {
    TenantRegistry::parse(
        r#"{"tenants": [
            {"name": "alice", "token": "alice-secret", "weight": 3},
            {"name": "bob", "token": "bob-secret", "weight": 1}
        ]}"#,
    )
    .unwrap()
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tuna-mt-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn submit_as(sim: &mut SimServer, token: &str) {
    let (status, body) = sim.request_as("POST", "/v1/studies", JOB, Some(token));
    assert!(
        status == 201 || status == 200,
        "submit replied {status}: {body}"
    );
}

/// Runs the two-tenant mix to completion and returns the tenant of
/// every grant in execution order plus each tenant's results document.
fn run_mix(workers: usize) -> (Vec<String>, String, String) {
    let mut sim = SimServer::with_tenants(None, workers, registry()).unwrap();
    submit_as(&mut sim, "alice-secret");
    submit_as(&mut sim, "bob-secret");
    let mut grants = Vec::new();
    while !sim.idle() {
        for (tenant, _, _) in sim.step() {
            grants.push(tenant);
        }
    }
    let results = |sim: &mut SimServer, token: &str| {
        let (status, body) = sim.request_as("GET", "/v1/studies/job/results", "", Some(token));
        assert_eq!(status, 200, "{body}");
        body
    };
    let alice = results(&mut sim, "alice-secret");
    let bob = results(&mut sim, "bob-secret");
    (grants, alice, bob)
}

/// The acceptance criterion: a fixed tenant mix on the sim clock
/// schedules bit-identically at 1 and 4 workers — the full grant
/// sequence (not just per-tenant counts) matches the golden schedule,
/// and every result byte agrees across widths.
#[test]
fn golden_weighted_schedule_is_identical_across_worker_widths() {
    let (serial_grants, serial_alice, serial_bob) = run_mix(1);
    assert_eq!(serial_grants, GOLDEN, "workers=1 diverged from golden");

    let (par_grants, par_alice, par_bob) = run_mix(4);
    assert_eq!(par_grants, GOLDEN, "workers=4 diverged from golden");

    assert_eq!(serial_alice, par_alice, "alice results differ by width");
    assert_eq!(serial_bob, par_bob, "bob results differ by width");
    // Same declaration, same seed: the namespaces isolate the studies
    // but the cells compute the same pure function.
    assert_eq!(serial_alice, serial_bob);
}

/// Kill/restart mid-run: the usage meter file survives byte-identically
/// through the restart (reload never rewrites it), idempotent
/// re-submission does not double-count studies, and the finished run's
/// meters are byte-identical to an uninterrupted run's.
#[test]
fn kill_restart_preserves_usage_counters_byte_identically() {
    // --- Uninterrupted reference. ------------------------------------
    let ref_dir = fresh_dir("usage-ref");
    let mut sim = SimServer::with_tenants(Some(ref_dir.clone()), 2, registry()).unwrap();
    submit_as(&mut sim, "alice-secret");
    submit_as(&mut sim, "bob-secret");
    sim.run_to_completion();
    drop(sim);
    let ref_usage = std::fs::read_to_string(ref_dir.join(USAGE_FILE)).unwrap();

    // --- Killed mid-run. ---------------------------------------------
    let dir = fresh_dir("usage-kill");
    let mut sim = SimServer::with_tenants(Some(dir.clone()), 2, registry()).unwrap();
    submit_as(&mut sim, "alice-secret");
    submit_as(&mut sim, "bob-secret");
    let mut done = 0;
    while done < 5 {
        done += sim.step().len();
    }
    assert!(done < 16, "the kill must land mid-run");
    drop(sim); // the kill

    let at_kill = std::fs::read_to_string(dir.join(USAGE_FILE)).unwrap();
    let mut sim = SimServer::with_tenants(Some(dir.clone()), 2, registry()).unwrap();
    assert_eq!(
        std::fs::read_to_string(dir.join(USAGE_FILE)).unwrap(),
        at_kill,
        "reload must not rewrite the usage file"
    );
    // Clients re-submit after a daemon restart; the idempotent path
    // must not charge a second study to either meter.
    submit_as(&mut sim, "alice-secret");
    submit_as(&mut sim, "bob-secret");
    assert_eq!(
        std::fs::read_to_string(dir.join(USAGE_FILE)).unwrap(),
        at_kill,
        "idempotent re-submission must not move the meters"
    );
    sim.run_to_completion();
    drop(sim);

    assert_eq!(
        std::fs::read_to_string(dir.join(USAGE_FILE)).unwrap(),
        ref_usage,
        "resumed run's meters differ from the uninterrupted run's"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Auth and namespacing over the wire: no token is a structured `401`,
/// a wrong token a `403`, tenants cannot see each other's studies, and
/// `GET /v1/tenants` reports weights and live meters.
#[test]
fn wire_auth_and_namespacing_against_a_configured_table() {
    let mut sim = SimServer::with_tenants(None, 1, registry()).unwrap();

    let (status, body) = sim.request_as("POST", "/v1/studies", JOB, None);
    assert_eq!(status, 401, "{body}");
    assert!(body.contains("\"reason\": \"missing-token\""), "{body}");

    let (status, body) = sim.request_as("POST", "/v1/studies", JOB, Some("wrong"));
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("\"reason\": \"bad-token\""), "{body}");

    // Health stays unauthenticated — probes need no credentials.
    let (status, _) = sim.request_as("GET", "/healthz", "", None);
    assert_eq!(status, 200);

    submit_as(&mut sim, "alice-secret");
    let (status, body) = sim.request_as("GET", "/v1/studies/job", "", Some("bob-secret"));
    assert_eq!(status, 404, "bob must not see alice's study: {body}");

    sim.run_to_completion();
    let (status, body) = sim.request_as("GET", "/v1/tenants", "", Some("bob-secret"));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"name\": \"alice\""), "{body}");
    assert!(body.contains("\"weight\": 3"), "{body}");
    assert!(body.contains("\"cells\": 8"), "{body}");
}
