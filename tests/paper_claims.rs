//! Scaled-down statistical checks of the paper's major claims (C1-C5 of
//! the artifact appendix).
//!
//! These run the real experiment machinery at reduced budgets, so they
//! assert *direction and rough magnitude*, not exact numbers. The bench
//! binaries (`fig02` ... `table1`) run the full-scale versions.

use tuna_cloudsim::study::{run_study, Lifespan, StudyConfig};
use tuna_core::experiment::{Experiment, Method};
use tuna_core::report::summarize_method;
use tuna_stats::summary;

/// C2/C3 substrate: the cloud's component noise ordering (the study
/// motivating §3.2).
#[test]
fn claim_component_noise_ordering() {
    let report = run_study(&StudyConfig::quick());
    let cov = |bench: &str| report.pooled_short_cov(bench, "Standard_D8s_v5").unwrap();
    let cpu = cov("sysbench-cpu-prime");
    let disk = cov("fio-randwrite-aio");
    let mem = cov("mlc-maxbw-1to1");
    let os = cov("osbench-create-threads");
    let cache = cov("stress-ng-cache");
    assert!(
        cpu < 0.01 && disk < 0.01,
        "CPU/disk too noisy: {cpu} {disk}"
    );
    assert!(mem > 0.02 && os > 0.05 && cache > 0.08);
    assert!(cpu < disk && disk < mem && mem < os && os < cache);
}

/// C1 (scaled): added sampling noise slows convergence. We compare the
/// oracle quality of the incumbent after a fixed number of iterations with
/// and without 10% injected noise, pooled over seeds.
#[test]
fn claim_noise_slows_convergence() {
    use tuna_cloudsim::{Cluster, Region, VmSku};
    use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
    use tuna_optimizer::{Objective, Optimizer};
    use tuna_stats::rng::Rng;
    use tuna_sut::postgres::Postgres;
    use tuna_sut::SystemUnderTest;

    let pg = Postgres::new();
    let workload = tuna_workloads::epinions();
    let memory_mb = VmSku::c220g5().memory_gb * 1024.0;
    let iters = 40;
    // Area under the incumbent-quality curve: a noise-slowed tuner holds
    // worse incumbents for longer even if it eventually catches up.
    let mut clean_auc = Vec::new();
    let mut noisy_auc = Vec::new();
    for seed in 0..10u64 {
        for &sigma in &[0.0, 0.30] {
            let mut rng = Rng::seed_from(1000 + seed * 7 + (sigma * 100.0) as u64);
            let mut cluster = Cluster::new(1, VmSku::c220g5(), Region::cloudlab(), seed);
            let mut opt = SmacOptimizer::new(
                pg.space().clone(),
                Objective::Maximize,
                SmacParams {
                    n_init: 8,
                    n_random_candidates: 30,
                    ..SmacParams::default()
                },
            );
            let mut auc = 0.0;
            for _ in 0..iters {
                let s = opt.ask(&mut rng);
                let outcome = pg.run(&s.config, &workload, cluster.machine_mut(0), &mut rng);
                let value = outcome.value * (1.0 + sigma * rng.next_gaussian()).max(0.05);
                opt.tell(&s.config, value, s.budget);
                if let Some((best_cfg, _)) = opt.best() {
                    auc += pg.noiseless_rel(&best_cfg, &workload, memory_mb);
                }
            }
            if sigma == 0.0 {
                clean_auc.push(auc / iters as f64);
            } else {
                noisy_auc.push(auc / iters as f64);
            }
        }
    }
    let clean = summary::mean(&clean_auc);
    let noisy = summary::mean(&noisy_auc);
    assert!(
        clean > noisy,
        "noise should slow convergence: clean AUC {clean:.4} vs noisy {noisy:.4}"
    );
}

/// C2 (scaled): on plan-sensitive TPC-C, TUNA's deployment variability is
/// lower than traditional sampling's, pooled over several runs.
#[test]
fn claim_tuna_reduces_deployment_variance() {
    let mut exp = Experiment::quick_demo();
    exp.rounds = 45;
    let n = 4;
    let tuna = summarize_method(&exp.run_many(Method::Tuna, n, 9_001));
    let trad = summarize_method(&exp.run_many(Method::Traditional, n, 9_001));
    // Direction: TUNA should not be more volatile than traditional. Allow
    // slack for the small scale.
    assert!(
        tuna.mean_std <= trad.mean_std * 1.35,
        "TUNA std {:.1} vs traditional {:.1}",
        tuna.mean_std,
        trad.mean_std
    );
    // And it must comfortably beat the default.
    let def = summarize_method(&exp.run_many(Method::DefaultConfig, n, 9_001));
    assert!(tuna.mean_of_means > def.mean_of_means * 1.2);
}

/// C4 (scaled): on Redis, TUNA avoids the crashing configs.
#[test]
fn claim_tuna_avoids_redis_crashes() {
    let mut exp = Experiment::quick_demo();
    exp.workload = tuna_workloads::ycsb_c();
    exp.rounds = 35;
    let runs = exp.run_many(Method::Tuna, 3, 77);
    let crashes: usize = runs.iter().map(|r| r.deployment.crashes).sum();
    let total: usize = runs.len() * exp.deploy_vms * exp.deploy_repeats;
    assert!(
        (crashes as f64) < total as f64 * 0.1,
        "TUNA deployments crash too often: {crashes}/{total}"
    );
}

/// C5 substrate: burstable VMs are bimodal, non-burstable are not.
#[test]
fn claim_burstable_bimodality() {
    let report = run_study(&StudyConfig::quick());
    let low_mode = |sku: &str| {
        let s = report
            .series("pgbench-rw", "westus2", sku, Lifespan::Short)
            .unwrap();
        let rel = s.relative_samples();
        rel.iter().filter(|&&x| x < 0.75).count() as f64 / rel.len() as f64
    };
    assert!(low_mode("Standard_B8ms") > 0.05);
    assert!(low_mode("Standard_D8s_v5") < 0.01);
}

/// §4.1/§5.1 sample accounting under parallel execution: the total number
/// of samples consumed equals the ladder's analytical budget — the sum,
/// over evaluated configs, of the highest budget each config reached
/// (lower-budget samples are reused on promotion, never retaken) — and is
/// independent of the worker count.
#[test]
fn claim_parallel_sampling_preserves_ladder_budget() {
    use std::collections::HashMap;
    use tuna_cloudsim::{Cluster, Region, VmSku};
    use tuna_core::executor::ExecutionMode;
    use tuna_core::pipeline::{TunaConfig, TunaPipeline};
    use tuna_optimizer::multifidelity::LadderParams;
    use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
    use tuna_optimizer::Objective;
    use tuna_stats::rng::Rng;
    use tuna_sut::postgres::Postgres;
    use tuna_sut::SystemUnderTest;

    let tune = |mode: ExecutionMode| {
        let pg = Postgres::new();
        let workload = tuna_workloads::tpcc();
        let cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 51);
        let optimizer = SmacOptimizer::multi_fidelity(
            pg.space().clone(),
            Objective::Maximize,
            SmacParams {
                n_init: 5,
                n_random_candidates: 30,
                ..SmacParams::default()
            },
            LadderParams::paper_default(),
        );
        let mut cfg = TunaConfig::paper_default(1.0);
        cfg.mode = mode;
        let mut p = TunaPipeline::new(cfg, &pg, &workload, Box::new(optimizer), cluster);
        let mut rng = Rng::seed_from(52);
        p.run_rounds(60, &mut rng);
        p.finish()
    };

    let serial = tune(ExecutionMode::Serial);
    // Analytical ladder budget from the trace: each config consumes
    // exactly its highest requested budget in distinct-node samples.
    let mut peak_budget: HashMap<_, usize> = HashMap::new();
    for r in &serial.trace {
        let peak = peak_budget.entry(r.config_id).or_insert(0);
        *peak = (*peak).max(r.budget);
    }
    let analytical: usize = peak_budget.values().sum();
    assert_eq!(
        serial.total_samples, analytical,
        "sample reuse broken: consumed {} vs ladder budget {}",
        serial.total_samples, analytical
    );
    assert_eq!(
        serial.trace.last().unwrap().cumulative_samples,
        serial.total_samples
    );

    for workers in [1usize, 2, 4, 10] {
        let parallel = tune(ExecutionMode::Parallel { workers });
        assert_eq!(
            parallel.total_samples, analytical,
            "worker count {workers} changed the sample budget"
        );
        let per_round: usize = parallel.trace.iter().map(|r| r.new_samples).sum();
        assert_eq!(per_round, analytical);
    }
}

/// The outlier detector's effect (Figure 20, scaled): without it, the
/// deployment std across runs should not shrink.
#[test]
fn claim_outlier_detector_contains_variance() {
    let mut exp = Experiment::quick_demo();
    exp.rounds = 45;
    let n = 4;
    let with = summarize_method(&exp.run_many(Method::Tuna, n, 31_337));
    let without = summarize_method(&exp.run_many(Method::TunaNoOutlier, n, 31_337));
    assert!(
        without.mean_std >= with.mean_std * 0.6,
        "detector made things worse: with {:.1} vs without {:.1}",
        with.mean_std,
        without.mean_std
    );
}
