//! Integration tests for the serve subsystem's determinism contract:
//! results fetched from a daemon that was killed and restarted
//! mid-study are byte-identical to an uninterrupted daemon run *and*
//! to the equivalent batch campaign — at 1 and 4 workers.
//!
//! Everything runs through the loopback [`SimServer`]: requests travel
//! as real wire bytes through the daemon's parse→route→serialize path,
//! scheduling happens in deterministic ticks, and dropping the server
//! between ticks is the kill.

use tuna::core::campaign::{CampaignRunner, ResultStore};
use tuna::serve::api::StudySpec;
use tuna::serve::sim::SimServer;

const ALPHA: &str = r#"{
  "name": "alpha",
  "seed": 11,
  "runs": 2,
  "rounds": 2,
  "workloads": ["tpcc"],
  "arms": [
    {"label": "TUNA", "method": "tuna"},
    {"label": "Default", "method": "default"}
  ]
}"#;

const BETA: &str = r#"{
  "name": "beta",
  "seed": 12,
  "runs": 2,
  "rounds": 2,
  "workloads": ["ycsb-c"],
  "arms": [
    {"label": "Traditional", "method": "traditional"},
    {"label": "Default", "method": "default"}
  ]
}"#;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tuna-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn submit(sim: &mut SimServer, spec: &str) {
    let (status, body) = sim.request("POST", "/v1/studies", spec);
    assert!(
        status == 201 || status == 200,
        "submit replied {status}: {body}"
    );
}

fn results(sim: &mut SimServer, name: &str) -> String {
    let (status, body) = sim.request("GET", &format!("/v1/studies/{name}/results"), "");
    assert_eq!(status, 200, "{body}");
    body
}

fn state(sim: &mut SimServer, name: &str) -> String {
    let (status, body) = sim.request("GET", &format!("/v1/studies/{name}"), "");
    assert_eq!(status, 200, "{body}");
    tuna::stats::json::parse(&body)
        .unwrap()
        .get("state")
        .and_then(|s| s.as_str().map(String::from))
        .expect("status has a state")
}

/// The batch equivalent of a spec: the same campaign through
/// `CampaignRunner` with a file-backed store, returning the finalized
/// `.json` mirror's bytes.
fn batch_results(spec_text: &str, dir: &std::path::Path, workers: usize) -> String {
    let spec = StudySpec::parse(spec_text).expect("valid spec");
    let campaign = spec.to_campaign();
    let path = dir.join(format!("{}.csv", spec.name));
    let mut store = ResultStore::open(&path, &campaign).expect("open batch store");
    let runner = if workers > 1 {
        CampaignRunner::with_workers(workers)
    } else {
        CampaignRunner::serial()
    };
    let result = runner.run(&campaign, &mut store);
    assert!(result.complete);
    std::fs::read_to_string(path.with_extension("json")).expect("finalized mirror")
}

#[test]
fn kill_restart_resume_is_byte_identical_across_workers_and_batch() {
    // One batch reference per study (serial); the 4-worker batch runner
    // must agree with it before it anchors the daemon comparisons.
    let batch_dir = fresh_dir("batch");
    let batch_alpha = batch_results(ALPHA, &batch_dir.join("serial"), 1);
    let batch_beta = batch_results(BETA, &batch_dir.join("serial"), 1);
    assert_eq!(batch_alpha, batch_results(ALPHA, &batch_dir.join("par"), 4));
    assert_eq!(batch_beta, batch_results(BETA, &batch_dir.join("par"), 4));

    for workers in [1usize, 4] {
        // --- Uninterrupted daemon run. -------------------------------
        let ref_dir = fresh_dir(&format!("ref-w{workers}"));
        let mut sim = SimServer::new(Some(ref_dir.clone()), workers).unwrap();
        submit(&mut sim, ALPHA);
        submit(&mut sim, BETA);
        // Both studies execute concurrently: after one tick at 4
        // workers each study holds half the pool.
        let first_tick = sim.step();
        if workers == 4 {
            let alpha_cells = first_tick.iter().filter(|(_, s, _)| s == "alpha").count();
            let beta_cells = first_tick.iter().filter(|(_, s, _)| s == "beta").count();
            assert_eq!(
                (alpha_cells, beta_cells),
                (2, 2),
                "fair share splits the pool"
            );
        }
        sim.run_to_completion();
        assert_eq!(state(&mut sim, "alpha"), "done");
        assert_eq!(state(&mut sim, "beta"), "done");
        let ref_alpha = results(&mut sim, "alpha");
        let ref_beta = results(&mut sim, "beta");
        drop(sim);

        // --- Killed mid-study, restarted, resumed. -------------------
        let kill_dir = fresh_dir(&format!("kill-w{workers}"));
        let mut sim = SimServer::new(Some(kill_dir.clone()), workers).unwrap();
        submit(&mut sim, ALPHA);
        submit(&mut sim, BETA);
        let mut done_before_kill = 0;
        while done_before_kill < 3 {
            done_before_kill += sim.step().len();
        }
        assert!(done_before_kill < 8, "the kill must land mid-study");
        assert!(
            state(&mut sim, "alpha") == "running" || state(&mut sim, "beta") == "running",
            "at least one study must still be running at the kill"
        );
        drop(sim); // the kill

        let mut sim = SimServer::new(Some(kill_dir.clone()), workers).unwrap();
        // The restarted daemon reloaded both studies from disk with
        // their pre-kill progress intact.
        let reloaded: usize = sim
            .manager()
            .studies()
            .map(tuna::serve::manager::Study::completed)
            .sum();
        assert_eq!(reloaded, done_before_kill, "progress survived the kill");
        // A client re-submitting the same declarations is idempotent.
        submit(&mut sim, ALPHA);
        submit(&mut sim, BETA);
        let executed_after = sim.run_to_completion();
        assert_eq!(
            done_before_kill + executed_after,
            8,
            "resume executes only the missing cells"
        );

        // --- The contract: all three sources agree byte-for-byte. ----
        let resumed_alpha = results(&mut sim, "alpha");
        let resumed_beta = results(&mut sim, "beta");
        assert_eq!(
            resumed_alpha, ref_alpha,
            "workers={workers}: resumed != uninterrupted (alpha)"
        );
        assert_eq!(
            resumed_beta, ref_beta,
            "workers={workers}: resumed != uninterrupted (beta)"
        );
        assert_eq!(
            resumed_alpha, batch_alpha,
            "workers={workers}: daemon != batch campaign (alpha)"
        );
        assert_eq!(
            resumed_beta, batch_beta,
            "workers={workers}: daemon != batch campaign (beta)"
        );
        // The finalized on-disk mirror is the same document the wire
        // serves.
        let disk = std::fs::read_to_string(kill_dir.join("alpha.json")).unwrap();
        assert_eq!(disk, resumed_alpha);

        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&kill_dir);
    }
    let _ = std::fs::remove_dir_all(&batch_dir);
}

fn trace(sim: &mut SimServer, name: &str) -> String {
    let (status, body) = sim.request("GET", &format!("/v1/studies/{name}/trace"), "");
    assert_eq!(status, 200, "{body}");
    body
}

/// The convergence-trace endpoint inherits the results contract: the
/// document a killed-and-restarted daemon serves is byte-identical to
/// an uninterrupted run's, at 1 and 4 workers — and identical *across*
/// worker counts, because cells are sorted and no clock values appear.
/// The trace is assembled from the `<study>.trace` sidecar (never the
/// row store), so the sidecar's reload path is what this test pins.
#[test]
fn trace_endpoint_is_byte_identical_across_kill_restart_and_workers() {
    let mut reference: Option<(String, String)> = None;
    for workers in [1usize, 4] {
        // --- Uninterrupted daemon run. -------------------------------
        let ref_dir = fresh_dir(&format!("trace-ref-w{workers}"));
        let mut sim = SimServer::new(Some(ref_dir.clone()), workers).unwrap();
        submit(&mut sim, ALPHA);
        submit(&mut sim, BETA);
        sim.run_to_completion();
        let ref_alpha = trace(&mut sim, "alpha");
        let ref_beta = trace(&mut sim, "beta");
        // The TUNA arm tunes: its trace must carry a non-empty series.
        assert!(ref_alpha.contains("\"label\":\"TUNA\""), "{ref_alpha}");
        assert!(ref_alpha.contains("\"n_cells\":4"), "{ref_alpha}");
        drop(sim);

        // --- Killed mid-study, restarted, resumed. -------------------
        let kill_dir = fresh_dir(&format!("trace-kill-w{workers}"));
        let mut sim = SimServer::new(Some(kill_dir.clone()), workers).unwrap();
        submit(&mut sim, ALPHA);
        submit(&mut sim, BETA);
        let mut done_before_kill = 0;
        while done_before_kill < 3 {
            done_before_kill += sim.step().len();
        }
        assert!(done_before_kill < 8, "the kill must land mid-study");
        drop(sim); // the kill

        let mut sim = SimServer::new(Some(kill_dir.clone()), workers).unwrap();
        submit(&mut sim, ALPHA);
        submit(&mut sim, BETA);
        sim.run_to_completion();
        assert_eq!(
            trace(&mut sim, "alpha"),
            ref_alpha,
            "workers={workers}: resumed trace != uninterrupted (alpha)"
        );
        assert_eq!(
            trace(&mut sim, "beta"),
            ref_beta,
            "workers={workers}: resumed trace != uninterrupted (beta)"
        );
        // The sidecar is the on-disk source of the document.
        assert!(
            kill_dir.join("alpha.trace").exists(),
            "trace sidecar missing"
        );

        // --- Identical across worker counts too. ---------------------
        match &reference {
            None => reference = Some((ref_alpha, ref_beta)),
            Some((a, b)) => {
                assert_eq!(&ref_alpha, a, "trace differs across worker counts");
                assert_eq!(&ref_beta, b, "trace differs across worker counts");
            }
        }

        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&kill_dir);
    }
}

/// A slowloris peer — half a request, then silence — must not pin its
/// connection slot forever: once the per-connection time budget lapses
/// the daemon answers a structured `408` and closes the slot, while
/// other clients keep being served throughout.
#[test]
fn stalled_half_request_is_shed_with_408() {
    let mut sim = SimServer::new(None, 1).unwrap();
    let loris = sim.connect();
    sim.send(
        loris,
        b"POST /v1/studies HTTP/1.1\r\ncontent-length: 999\r\n\r\n{\"na",
    );
    assert!(sim.recv(loris).is_empty(), "no complete frame, no reply");

    // A healthy client is unaffected while the slowloris stalls.
    let budget = tuna::serve::engine::EngineConfig::sim_default().request_time_budget;
    for _ in 0..=budget {
        sim.tick();
        let ok = sim.connect();
        sim.send(ok, &tuna::serve::http::request_bytes("GET", "/healthz", ""));
        let (status, _) = tuna::serve::http::parse_response(&sim.recv(ok)).expect("healthz reply");
        assert_eq!(status, 200);
    }
    sim.dispatch();

    let raw = sim.recv(loris);
    let replies = tuna::serve::http::split_responses(&raw).unwrap();
    assert_eq!(replies.len(), 1);
    let (status, body) = &replies[0];
    assert_eq!(*status, 408, "{body}");
    assert!(body.contains("time budget"), "{body}");
    assert!(sim.wants_close(loris), "the stalled slot is reclaimed");
    assert_eq!(sim.engine().timeout_total(), 1);
}

/// Two clients racing identical submissions: attach-or-report-existing
/// is atomic under the manager, so exactly one gets `201 Created`, the
/// other the idempotent `200`, and exactly one store lands on disk.
#[test]
fn racing_identical_submissions_create_exactly_once() {
    let dir = fresh_dir("race");
    let mut sim = SimServer::new(Some(dir.clone()), 1).unwrap();
    let first = sim.connect();
    let second = sim.connect();
    // Both requests are fully buffered before either dispatches — the
    // tightest interleaving the wire allows.
    sim.feed(
        first,
        &tuna::serve::http::request_bytes("POST", "/v1/studies", ALPHA),
    );
    sim.feed(
        second,
        &tuna::serve::http::request_bytes("POST", "/v1/studies", ALPHA),
    );
    sim.dispatch();
    let reply = |raw: Vec<u8>| tuna::serve::http::parse_response(&raw).expect("reply").0;
    let statuses = (reply(sim.recv(first)), reply(sim.recv(second)));
    assert_eq!(statuses, (201, 200), "one creation, one idempotent attach");

    // One spec, one journal — not two studies' worth of files.
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("alpha"))
        .collect();
    assert!(files.contains(&"alpha.spec.json".to_string()), "{files:?}");
    assert_eq!(
        files.iter().filter(|n| n.ends_with(".spec.json")).count(),
        1,
        "{files:?}"
    );
    sim.run_to_completion();
    let body = results(&mut sim, "alpha");
    assert!(body.contains("\"completed\": 4"), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A daemon killed mid-append leaves a torn journal tail; the restarted
/// daemon must repair it (drop the torn cell, keep the rest) and still
/// finish byte-identical to an uninterrupted run.
#[test]
fn torn_journal_tail_is_repaired_on_restart() {
    let ref_dir = fresh_dir("torn-ref");
    let mut sim = SimServer::new(Some(ref_dir.clone()), 1).unwrap();
    submit(&mut sim, ALPHA);
    sim.run_to_completion();
    let reference = results(&mut sim, "alpha");
    drop(sim);

    let dir = fresh_dir("torn-kill");
    let mut sim = SimServer::new(Some(dir.clone()), 1).unwrap();
    submit(&mut sim, ALPHA);
    sim.step();
    sim.step();
    drop(sim); // the kill...

    // ...landed mid-append: tear the journal's final line.
    let journal = dir.join("alpha.csv");
    let text = std::fs::read_to_string(&journal).unwrap();
    std::fs::write(&journal, &text.as_bytes()[..text.len() - 9]).unwrap();

    let mut sim = SimServer::new(Some(dir.clone()), 1).unwrap();
    let reloaded: usize = sim
        .manager()
        .studies()
        .map(tuna::serve::manager::Study::completed)
        .sum();
    assert_eq!(reloaded, 1, "torn cell dropped, intact cell kept");
    submit(&mut sim, ALPHA); // idempotent re-attach, as a client would
    let executed = sim.run_to_completion();
    assert_eq!(executed, 3, "the torn cell and the remaining cells");
    assert_eq!(
        results(&mut sim, "alpha"),
        reference,
        "repaired resume is byte-identical to uninterrupted"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_daemon_refuses_conflicting_resubmission() {
    let dir = fresh_dir("conflict");
    let mut sim = SimServer::new(Some(dir.clone()), 1).unwrap();
    submit(&mut sim, ALPHA);
    drop(sim);

    let mut sim = SimServer::new(Some(dir.clone()), 1).unwrap();
    let conflicting = ALPHA.replace("\"seed\": 11", "\"seed\": 99");
    let (status, body) = sim.request("POST", "/v1/studies", &conflicting);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("different declaration"), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_study_stops_scheduling_but_serves_partial_results() {
    let mut sim = SimServer::new(None, 1).unwrap();
    submit(&mut sim, ALPHA);
    sim.step();
    let (status, _) = sim.request("POST", "/v1/studies/alpha/cancel", "");
    assert_eq!(status, 200);
    assert_eq!(state(&mut sim, "alpha"), "cancelled");
    assert!(sim.idle(), "cancel drops pending cells");
    let body = results(&mut sim, "alpha");
    assert!(body.contains("\"completed\": 1"), "{body}");
}
