//! Source lints: the whole tree must satisfy the determinism contract
//! (docs/LINTS.md), mechanically.
//!
//! This replaces the old `tests/float_ordering_lint.rs` grep-style
//! check: `tuna-lint` is token-aware (comments, string/char/raw-string
//! literals), covers five rules instead of one, and requires every
//! suppression to carry a written justification. `cargo test` fails on
//! any diagnostic; the CI `lints` job runs the same engine via the
//! `tuna-lint` binary.

use std::path::Path;

use tuna_lint::Engine;

#[test]
fn tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = Engine::builtin().check_tree(root).expect("scan the tree");
    // vendor/, target/ and crates/lint/fixtures/ are excluded; the
    // rest of the workspace — every crate, tests/, examples/ — is not.
    assert!(
        report.files_scanned > 100,
        "lint walked too few files: {}",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "the determinism contract is violated (fix it, or suppress with \
         `// lint:allow(<rule>): <justification>` — see docs/LINTS.md):\n  {}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{d}\n      help: {}", d.help))
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}
