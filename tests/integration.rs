//! Cross-crate integration tests: the full TUNA stack end to end.

use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::deploy::{default_worst_case, evaluate_deployment};
use tuna_core::experiment::{Experiment, Method, SolverId};
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::Objective;
use tuna_stats::rng::Rng;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn fast_smac() -> SmacParams {
    SmacParams {
        n_init: 5,
        n_random_candidates: 30,
        n_neighbors: 4,
        ..SmacParams::default()
    }
}

#[test]
fn end_to_end_tuna_run_is_deterministic() {
    let run = |seed: u64| {
        let exp = Experiment::quick_demo();
        let s = exp.run(Method::Tuna, seed);
        (s.best_config.id(), s.deployment.mean)
    };
    let (a_cfg, a_mean) = run(5);
    let (b_cfg, b_mean) = run(5);
    assert_eq!(a_cfg, b_cfg, "same seed must pick the same config");
    assert_eq!(a_mean, b_mean, "same seed must measure identically");
    let (c_cfg, _) = run(6);
    assert_ne!(a_cfg, c_cfg, "different seeds should explore differently");
}

#[test]
fn tuna_pipeline_budget_accounting_consistent() {
    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();
    let cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 31);
    let optimizer = SmacOptimizer::multi_fidelity(
        pg.space().clone(),
        Objective::Maximize,
        fast_smac(),
        LadderParams::paper_default(),
    );
    let mut pipeline = TunaPipeline::new(
        TunaConfig::paper_default(1.0),
        &pg,
        &workload,
        Box::new(optimizer),
        cluster,
    );
    let mut rng = Rng::seed_from(32);
    pipeline.run_rounds(60, &mut rng);
    let result = pipeline.finish();

    // Sample accounting: the trace's cumulative counter must equal the sum
    // of new samples and never exceed rounds * max budget.
    let total: usize = result.trace.iter().map(|r| r.new_samples).sum();
    assert_eq!(total, result.total_samples);
    assert_eq!(
        result.trace.last().unwrap().cumulative_samples,
        result.total_samples
    );
    assert!(result.total_samples <= 60 * 10);
    // Multi-fidelity saves samples vs naive distributed.
    assert!(
        result.total_samples < 60 * 10 / 2,
        "multi-fidelity saved too little: {}",
        result.total_samples
    );
}

#[test]
fn deployment_distributions_differ_between_methods() {
    let exp = Experiment::quick_demo();
    let tuna = exp.run(Method::Tuna, 77);
    let trad = exp.run(Method::Traditional, 77);
    assert_ne!(
        tuna.deployment.values, trad.deployment.values,
        "methods should not produce identical deployments"
    );
}

#[test]
fn gp_optimizer_path_works_end_to_end() {
    let mut exp = Experiment::quick_demo();
    exp.optimizer = SolverId::gp();
    exp.rounds = 12;
    let s = exp.run(Method::Tuna, 3);
    assert!(s.deployment.mean > 0.0);
}

#[test]
fn all_three_suts_tune_end_to_end() {
    for workload in [
        tuna_workloads::tpcc(),
        tuna_workloads::ycsb_c(),
        tuna_workloads::wikipedia(),
    ] {
        let mut exp = Experiment::quick_demo();
        exp.workload = workload.clone();
        exp.rounds = 15;
        let s = exp.run(Method::Tuna, 9);
        assert!(
            s.deployment.mean > 0.0,
            "{} deployment broken",
            workload.name
        );
    }
}

#[test]
fn olap_runtime_tuning_reduces_runtime() {
    let mut exp = Experiment::quick_demo();
    exp.workload = tuna_workloads::mssales();
    exp.rounds = 40;
    let tuna = exp.run(Method::Tuna, 21);
    let default = exp.run(Method::DefaultConfig, 21);
    assert!(
        tuna.deployment.mean < default.deployment.mean,
        "tuned mssales runtime {} should beat default {}",
        tuna.deployment.mean,
        default.deployment.mean
    );
}

#[test]
fn crash_penalty_flows_through_tuning_and_deployment() {
    // Redis with a crash-heavy space: penalties must appear instead of
    // raw values for crashed runs.
    let exp = {
        let mut e = Experiment::quick_demo();
        e.workload = tuna_workloads::ycsb_c();
        e.rounds = 20;
        e
    };
    let sut = exp.make_sut();
    let base = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 41);
    let rng = Rng::seed_from(42);
    let penalty = default_worst_case(sut.as_ref(), &exp.workload, &base, &rng);
    assert!(penalty > 0.0);
    // Deploy a config that always crashes: every value equals the penalty.
    let broken = {
        let rd = tuna_sut::redis::Redis::new();
        rd.default_config().with(
            rd.space().index_of("maxmemory_mb").unwrap(),
            tuna_space::ParamValue::Int(4_096),
        )
    };
    let stats = evaluate_deployment(
        sut.as_ref(),
        &exp.workload,
        &broken,
        &base,
        5,
        5,
        2,
        penalty,
        &rng,
    );
    assert_eq!(stats.crashes, 10);
    assert!(stats.values.iter().all(|&v| v == penalty));
}

#[test]
fn best_config_always_validates_in_space() {
    let exp = Experiment::quick_demo();
    for method in [Method::Tuna, Method::Traditional] {
        let s = exp.run(method, 55);
        let sut = exp.make_sut();
        assert!(
            sut.space().validate(&s.best_config).is_ok(),
            "{:?} produced an invalid config",
            method
        );
    }
}
