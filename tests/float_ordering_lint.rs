//! Source lint: float ordering must not go through `partial_cmp` + panic.
//!
//! Sorting or comparing costs with `partial_cmp(..).unwrap()` is exactly
//! the pattern that let a single NaN measurement take down a whole study
//! (see `tuna_optimizer::history::cost_cmp`). Production code must use
//! `total_cmp` or `cost_cmp` instead; this test fails the build when the
//! panicking pattern reappears anywhere outside `tests/` directories.

use std::fs;
use std::path::{Path, PathBuf};

/// Lines of lookahead after a `partial_cmp` before `unwrap`/`expect`
/// stops counting as part of the same expression.
const LOOKAHEAD: usize = 2;

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // `tests/` trees may use whatever comparison a test needs.
            if path.file_name().is_some_and(|n| n == "tests") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn strip_comment(line: &str) -> &str {
    line.split("//").next().unwrap_or(line)
}

#[test]
fn no_panicking_float_comparisons_in_src() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![];
    for crate_dir in fs::read_dir(root.join("crates")).expect("crates/ exists") {
        let src = crate_dir.expect("dir entry").path().join("src");
        if src.is_dir() {
            rust_sources(&src, &mut files);
        }
    }
    rust_sources(&root.join("src"), &mut files);
    assert!(
        files.len() > 30,
        "lint walked too few files: {}",
        files.len()
    );

    let mut violations = vec![];
    for file in &files {
        let text = fs::read_to_string(file).expect("readable source file");
        let lines: Vec<&str> = text.lines().map(strip_comment).collect();
        for (i, line) in lines.iter().enumerate() {
            if !line.contains("partial_cmp") {
                continue;
            }
            let window = &lines[i..(i + 1 + LOOKAHEAD).min(lines.len())];
            if window
                .iter()
                .any(|l| l.contains(".unwrap(") || l.contains(".expect("))
            {
                violations.push(format!("{}:{}", file.display(), i + 1));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "partial_cmp + unwrap/expect on floats panics on NaN; use total_cmp \
         or history::cost_cmp instead:\n  {}",
        violations.join("\n  ")
    );
}
