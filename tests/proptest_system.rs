//! System-level property tests spanning crates.

use proptest::prelude::*;
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::aggregate::AggregationPolicy;
use tuna_core::outlier::OutlierDetector;
use tuna_core::scheduler::TaskScheduler;
use tuna_optimizer::Objective;
use tuna_stats::rng::Rng;
use tuna_sut::nginx::Nginx;
use tuna_sut::postgres::Postgres;
use tuna_sut::redis::Redis;
use tuna_sut::SystemUnderTest;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sampled config on any SuT produces a finite, positive metric.
    #[test]
    fn any_config_any_sut_runs(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let mut cluster = Cluster::new(3, VmSku::d8s_v5(), Region::westus2(), seed);
        let suts: Vec<(Box<dyn SystemUnderTest>, tuna_workloads::Workload)> = vec![
            (Box::new(Postgres::new()), tuna_workloads::tpcc()),
            (Box::new(Redis::new()), tuna_workloads::ycsb_c()),
            (Box::new(Nginx::new()), tuna_workloads::wikipedia()),
        ];
        for (sut, workload) in &suts {
            let cfg = sut.space().sample(&mut rng);
            let out = sut.run(&cfg, workload, cluster.machine_mut(0), &mut rng);
            prop_assert!(out.value.is_finite() && out.value > 0.0);
            prop_assert_eq!(out.metrics.values().len(), tuna_metrics::SCHEMA.len());
        }
    }

    /// The scheduler never assigns a config to the same node twice, for
    /// any interleaving of budget requests.
    #[test]
    fn scheduler_distinct_node_guarantee(
        seed in any::<u64>(),
        budgets in prop::collection::vec(1usize..=10, 1..12)
    ) {
        let mut sched = TaskScheduler::new(10);
        let mut rng = Rng::seed_from(seed);
        let space = tuna_space::ConfigSpace::builder().int("x", 0, 1_000_000).build();
        let ids: Vec<tuna_space::ConfigId> =
            (0..3).map(|_| space.sample(&mut rng).id()).collect();
        for (i, &b) in budgets.iter().enumerate() {
            let id = ids[i % ids.len()];
            sched.assign(id, b);
            let mut visited = sched.visited(id).to_vec();
            let before = visited.len();
            visited.sort_unstable();
            visited.dedup();
            prop_assert_eq!(before, visited.len(), "duplicate node assignment");
        }
    }

    /// Batch plans are sound for arbitrary ladder promotion sequences:
    /// a plan never exceeds the cluster size or the requested budget,
    /// never revisits a node, tops the config up to exactly the requested
    /// budget, and per-worker load always equals the number of configs
    /// that sampled that worker.
    #[test]
    fn scheduler_batch_plans_sound(
        seed in any::<u64>(),
        steps in prop::collection::vec((0usize..8, 0usize..3), 1..40)
    ) {
        let ladder = [1usize, 3, 10];
        let mut sched = TaskScheduler::new(10);
        // Distinct config ids keyed by the seed (identity collisions would
        // muddy the per-config load accounting below).
        let ids: Vec<tuna_space::ConfigId> = (0..8)
            .map(|i| {
                tuna_space::Config::new(vec![
                    tuna_space::ParamValue::Int(i),
                    tuna_space::ParamValue::Int(seed as i64 & 0xFFFF),
                ])
                .id()
            })
            .collect();
        for &(which, tier) in &steps {
            let id = ids[which];
            let before = sched.visited(id).len();
            let budget = ladder[tier];
            let plan = sched.assign(id, budget);
            prop_assert!(plan.len() <= 10, "plan exceeds cluster");
            prop_assert!(plan.len() <= budget, "plan exceeds budget");
            prop_assert_eq!(plan.len(), budget.saturating_sub(before),
                "plan must top the config up to its budget");
            let mut visited = sched.visited(id).to_vec();
            prop_assert_eq!(visited.len(), before.max(budget));
            let n = visited.len();
            visited.sort_unstable();
            visited.dedup();
            prop_assert_eq!(visited.len(), n, "node revisited");
        }
        // Load accounting: each worker's load is the number of configs
        // that have sampled it.
        let mut per_worker = vec![0u64; 10];
        for &id in &ids {
            for &w in sched.visited(id) {
                per_worker[w] += 1;
            }
        }
        prop_assert_eq!(per_worker.as_slice(), sched.load());
        prop_assert_eq!(sched.total_assigned(), per_worker.iter().sum::<u64>());
    }

    /// First-time (never-promoted) assignments keep worker load balanced
    /// within 1 for arbitrary budget mixes: a batch of size `b` takes the
    /// `b` globally least-loaded workers, raising every minimum before
    /// touching anything else. (Promotions can legally exceed 1 because
    /// the distinct-node guarantee can force runs off the minimum; see
    /// `TaskScheduler::load_spread`.)
    #[test]
    fn scheduler_fresh_assignments_balance_within_one(
        seed in any::<u64>(),
        budgets in prop::collection::vec(1usize..=10, 1..60)
    ) {
        let mut sched = TaskScheduler::new(10);
        let mut rng = Rng::seed_from(seed);
        let space = tuna_space::ConfigSpace::builder().int("x", 0, 100_000_000).build();
        for &b in &budgets {
            sched.assign(space.sample(&mut rng).id(), b);
            prop_assert!(sched.load_spread() <= 1,
                "fresh assignment unbalanced: {:?}", sched.load());
        }
    }

    /// Worst-case aggregation is always at least as pessimistic as the
    /// mean, in the correct orientation.
    #[test]
    fn worst_case_dominates_mean(values in prop::collection::vec(0.1f64..1e6, 1..20)) {
        let min_agg = AggregationPolicy::WorstCase.aggregate(&values, Objective::Maximize);
        let max_agg = AggregationPolicy::WorstCase.aggregate(&values, Objective::Minimize);
        let mean = AggregationPolicy::Mean.aggregate(&values, Objective::Maximize);
        prop_assert!(min_agg <= mean + 1e-9);
        prop_assert!(max_agg >= mean - 1e-9);
    }

    /// The outlier penalty always makes the reported value strictly worse
    /// for non-degenerate inputs.
    #[test]
    fn penalty_worsens_reported_value(value in 0.1f64..1e6) {
        let d = OutlierDetector::default();
        prop_assert!(d.penalize(value, Objective::Maximize) < value);
        prop_assert!(d.penalize(value, Objective::Minimize) > value);
    }

    /// Machine observation is always positive and bounded for arbitrary
    /// demand profiles.
    #[test]
    fn machine_speeds_positive(
        seed in any::<u64>(),
        cpu in 0.0f64..1.0, disk in 0.0f64..1.0, mem in 0.0f64..1.0,
        cache in 0.0f64..1.0, os in 0.0f64..1.0
    ) {
        use tuna_cloudsim::components::ComponentVec;
        let mut cluster = Cluster::new(1, VmSku::b8ms(), Region::centralus(), seed);
        let demand = ComponentVec::new(cpu, disk, mem, cache, os);
        for _ in 0..5 {
            let snap = cluster.machine_mut(0).observe(&demand);
            for (_, v) in snap.speeds.iter() {
                prop_assert!(v > 0.0 && v < 10.0);
            }
        }
    }
}
