//! Redis / YCSB-C: tuning for p95 latency with crash-prone configs.
//!
//! Demonstrates the §6.4 dynamics: aggressive memory configurations crash
//! Redis on some machines; traditional single-node sampling can promote
//! them, while TUNA's cross-node sampling surfaces the crashes as penalty
//! values and steers away.
//!
//! ```text
//! cargo run --release --example redis_ycsb
//! ```

use tuna_core::experiment::{Experiment, Method};
use tuna_space::ParamValue;
use tuna_sut::redis::Redis;
use tuna_sut::SystemUnderTest;

fn main() {
    let mut exp = Experiment::paper_default(tuna_workloads::ycsb_c());
    exp.rounds = 40;
    exp.deploy_vms = 10;
    exp.deploy_repeats = 3;

    println!("tuning Redis / YCSB-C for p95 latency (lower is better)...");
    let tuna = exp.run(Method::Tuna, 11);
    let trad = exp.run(Method::Traditional, 11);
    let default = exp.run(Method::DefaultConfig, 11);

    for (name, run) in [
        ("TUNA", &tuna),
        ("traditional", &trad),
        ("default", &default),
    ] {
        println!(
            "  {name:<12} p95 {:>6.3} ms  std {:>6.3}  crashes {}",
            run.deployment.mean, run.deployment.std, run.deployment.crashes
        );
    }

    // Show the memory knobs each method settled on.
    let rd = Redis::new();
    for (name, run) in [("TUNA", &tuna), ("traditional", &trad)] {
        let knobs = rd.knobs(&run.best_config);
        println!(
            "  {name} chose maxmemory {} MB, policy #{}, appendonly {}",
            knobs.maxmemory_mb, knobs.maxmemory_policy, knobs.appendonly
        );
    }

    // Illustrate the crash mechanism directly: an overly aggressive
    // maxmemory near the VM's physical RAM.
    let aggressive = rd
        .default_config()
        .with(
            rd.space().index_of("maxmemory_mb").unwrap(),
            ParamValue::Int(32_768),
        )
        .with(
            rd.space().index_of("appendonly").unwrap(),
            ParamValue::Bool(true),
        );
    let mut cluster = tuna_cloudsim::Cluster::new(
        10,
        tuna_cloudsim::VmSku::d8s_v5(),
        tuna_cloudsim::Region::westus2(),
        3,
    );
    let mut rng = tuna_stats::rng::Rng::seed_from(5);
    let crashes = (0..100)
        .filter(|i| {
            rd.run(
                &aggressive,
                &tuna_workloads::ycsb_c(),
                cluster.machine_mut(i % 10),
                &mut rng,
            )
            .crashed
        })
        .count();
    println!(
        "aggressive config (maxmemory=32768MB + AOF) crashed {crashes}/100 runs — the §6.4 failure mode"
    );
}
