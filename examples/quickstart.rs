//! Quickstart: tune a simulated PostgreSQL for TPC-C with TUNA and deploy
//! the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tuna_core::experiment::{Experiment, Method};
use tuna_core::report::deploy_line;

fn main() {
    // An experiment bundles the workload, SKU, region and budgets. The
    // quick demo uses a 25-round tuning run on a 10-worker cluster and
    // deploys the winner on 5 fresh VMs.
    let exp = Experiment::quick_demo();

    println!("tuning PostgreSQL / TPC-C with TUNA (quick demo budgets)...");
    let tuna = exp.run(Method::Tuna, 42);
    let tuning = tuna.tuning.as_ref().expect("tuning ran");
    println!(
        "  evaluated {} configs with {} samples; {} flagged unstable",
        tuning.n_configs, tuning.total_samples, tuning.n_unstable_configs
    );
    println!("  best config: {}", tuna.best_config);
    println!("  {}", deploy_line("TUNA deployment", &tuna.deployment));

    println!("reference points:");
    let traditional = exp.run(Method::Traditional, 42);
    println!(
        "  {}",
        deploy_line("traditional deployment", &traditional.deployment)
    );
    let default = exp.run(Method::DefaultConfig, 42);
    println!(
        "  {}",
        deploy_line("default deployment", &default.deployment)
    );

    println!();
    println!(
        "TUNA vs default: {:+.1}% throughput; TUNA std vs traditional: {:.1}%",
        (tuna.deployment.mean / default.deployment.mean - 1.0) * 100.0,
        tuna.deployment.std / traditional.deployment.std.max(1e-9) * 100.0
    );
}
