//! Run a scaled version of the paper's 68-week cloud measurement study.
//!
//! Prints the per-component variability findings (§3.2 / Figure 4), the
//! burstable-VM bimodality (Figure 3) and the long-vs-short lifespan
//! contrast (Figure 6) from the simulated substrate.
//!
//! ```text
//! cargo run --release --example noise_study
//! ```

use tuna_cloudsim::study::{run_study, Lifespan, StudyConfig};

fn main() {
    let config = StudyConfig::scaled_default();
    println!(
        "running the longitudinal study: {} weeks x {} regions x {} SKUs...",
        config.weeks,
        config.regions.len(),
        config.skus.len()
    );
    let report = run_study(&config);
    println!(
        "collected {} samples across {} VM instances",
        report.total_samples, report.total_instances
    );

    println!();
    println!("component variability (short-lived D8s_v5 fleet, pooled regions):");
    for (label, bench) in [
        ("CPU   (sysbench prime)", "sysbench-cpu-prime"),
        ("Disk  (fio randwrite)", "fio-randwrite-aio"),
        ("Memory (MLC bandwidth)", "mlc-maxbw-1to1"),
        ("OS    (thread create)", "osbench-create-threads"),
        ("Cache (stress-ng)", "stress-ng-cache"),
    ] {
        let cov = report
            .pooled_short_cov(bench, "Standard_D8s_v5")
            .unwrap_or(f64::NAN);
        println!("  {label:<24} CoV {:>6.2}%", cov * 100.0);
    }

    println!();
    println!("burstable vs non-burstable (pgbench read/write, westus2):");
    for sku in ["Standard_D8s_v5", "Standard_B8ms"] {
        let series = report
            .series("pgbench-rw", "westus2", sku, Lifespan::Short)
            .expect("series");
        let rel = series.relative_samples();
        let low = rel.iter().filter(|&&x| x < 0.75).count() as f64 / rel.len() as f64;
        println!(
            "  {sku:<18} CoV {:>5.1}%   samples below 75% of mean: {:>4.1}%",
            series.overall.cov() * 100.0,
            low * 100.0
        );
    }

    println!();
    println!("long-running vs short-lived dispersion (MLC, westus2):");
    let long = report
        .series(
            "mlc-maxbw-1to1",
            "westus2",
            "Standard_D8s_v5",
            Lifespan::Long,
        )
        .expect("long");
    let short = report
        .series(
            "mlc-maxbw-1to1",
            "westus2",
            "Standard_D8s_v5",
            Lifespan::Short,
        )
        .expect("short");
    println!(
        "  one long-lived VM: CoV {:.2}%   short-lived fleet: CoV {:.2}%",
        long.overall.cov() * 100.0,
        short.overall.cov() * 100.0
    );
    println!(
        "  => a single machine understates deployment-time variance by {:.1}x — the case for",
        short.overall.cov() / long.overall.cov().max(1e-12)
    );
    println!("     multi-fidelity sampling across a representative cluster (§4.1).");
}
