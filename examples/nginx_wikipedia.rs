//! NGINX / Wikipedia-Top500: tail-latency tuning for a web server.
//!
//! ```text
//! cargo run --release --example nginx_wikipedia
//! ```

use tuna_core::experiment::{Experiment, Method};
use tuna_sut::nginx::Nginx;

fn main() {
    let mut exp = Experiment::paper_default(tuna_workloads::wikipedia());
    exp.rounds = 40;

    println!("tuning NGINX serving the Wikipedia Top-500 pages (p95, ms)...");
    let tuna = exp.run(Method::Tuna, 23);
    let trad = exp.run(Method::Traditional, 23);
    let default = exp.run(Method::DefaultConfig, 23);

    for (name, run) in [
        ("TUNA", &tuna),
        ("traditional", &trad),
        ("default", &default),
    ] {
        println!(
            "  {name:<12} p95 {:>6.1} ms  std {:>5.2}  range [{:.1}, {:.1}]",
            run.deployment.mean,
            run.deployment.std,
            run.deployment.five.min,
            run.deployment.five.max
        );
    }

    let ng = Nginx::new();
    let knobs = ng.knobs(&tuna.best_config);
    println!("TUNA's winning server block:");
    println!("  worker_processes   {}", knobs.worker_processes);
    println!("  worker_connections {}", knobs.worker_connections);
    println!("  keepalive_timeout  {}", knobs.keepalive_timeout);
    println!(
        "  sendfile           {}",
        if knobs.sendfile { "on" } else { "off" }
    );
    println!(
        "  tcp_nopush         {}",
        if knobs.tcp_nopush { "on" } else { "off" }
    );
    println!(
        "  gzip               {} (level {})",
        if knobs.gzip { "on" } else { "off" },
        knobs.gzip_comp_level
    );
    println!("  open_file_cache    max={}", knobs.open_file_cache);
    println!(
        "  access_log         {}",
        if knobs.access_log { "on" } else { "off" }
    );

    println!(
        "improvement over default: {:+.1}% p95",
        (tuna.deployment.mean / default.deployment.mean - 1.0) * 100.0
    );
}
