//! Parallel trial execution: same tuning run, N worker lanes, identical
//! results.
//!
//! ```text
//! cargo run --release --example parallel_tuning
//! TUNA_WORKERS=4 cargo run --release --example parallel_tuning
//! ```
//!
//! The executor's contract is that the execution mode changes *only*
//! wall-clock: per-run randomness is forked by `(config, machine)` and
//! every machine lane replays the same measurement sequence, so serial
//! and parallel tuning are bit-identical. This example runs both and
//! verifies that, then prints the engine's lane accounting.

use std::time::Instant;

use tuna_core::executor::ExecutionMode;
use tuna_core::experiment::{Experiment, Method};
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::Objective;
use tuna_stats::rng::Rng;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn main() {
    let workers = match ExecutionMode::from_env() {
        ExecutionMode::Serial => 4,
        mode => mode.workers(),
    };

    // Experiment level: tuning + deployment under both modes.
    println!("tuning PostgreSQL / TPC-C serially and with {workers} worker lanes...");
    let mut exp = Experiment::quick_demo();
    exp.exec = ExecutionMode::Serial;
    // lint:allow(wall-clock): demonstrating the serial-vs-parallel
    // speedup is this example's point; results are asserted identical.
    let t0 = Instant::now();
    let serial = exp.run(Method::Tuna, 42);
    let serial_wall = t0.elapsed();

    exp.exec = ExecutionMode::Parallel { workers };
    // lint:allow(wall-clock): same — wall time is displayed, not used.
    let t1 = Instant::now();
    let parallel = exp.run(Method::Tuna, 42);
    let parallel_wall = t1.elapsed();

    assert_eq!(
        serial.best_config, parallel.best_config,
        "execution mode must not change the chosen config"
    );
    assert_eq!(
        serial.deployment.values, parallel.deployment.values,
        "execution mode must not change the measured distribution"
    );
    println!("  serial:   {:>8.1} ms", serial_wall.as_secs_f64() * 1e3);
    println!(
        "  parallel: {:>8.1} ms ({} lanes, bit-identical results)",
        parallel_wall.as_secs_f64() * 1e3,
        workers
    );
    println!("  best config: {}", parallel.best_config);

    // Engine level: per-lane accounting from a pipeline run.
    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();
    let cluster = tuna_cloudsim::Cluster::new(
        10,
        tuna_cloudsim::VmSku::d8s_v5(),
        tuna_cloudsim::Region::westus2(),
        42,
    );
    let optimizer = SmacOptimizer::multi_fidelity(
        pg.space().clone(),
        Objective::Maximize,
        SmacParams {
            n_init: 5,
            n_random_candidates: 30,
            ..SmacParams::default()
        },
        LadderParams::paper_default(),
    );
    let mut cfg = TunaConfig::paper_default(1.0);
    cfg.mode = ExecutionMode::Parallel { workers };
    let mut pipeline = TunaPipeline::new(cfg, &pg, &workload, Box::new(optimizer), cluster);
    let mut rng = Rng::seed_from(43);
    pipeline.run_rounds(60, &mut rng);
    let stats = *pipeline.exec_stats();
    let result = pipeline.finish();

    println!();
    println!(
        "engine accounting over {} rounds ({} trial runs):",
        result.trace.len(),
        stats.runs
    );
    println!(
        "  lane-busy {:.2} ms, critical path {:.2} ms, wall {:.2} ms",
        stats.busy_nanos as f64 / 1e6,
        stats.critical_nanos as f64 / 1e6,
        stats.wall_nanos as f64 / 1e6
    );
    println!(
        "  observed speedup {:.2}x (ideal for these batches: {:.2}x)",
        stats.speedup(),
        stats.busy_nanos as f64 / stats.critical_nanos.max(1) as f64
    );
}
