//! PostgreSQL / TPC-C walkthrough: drive the TUNA pipeline by hand.
//!
//! Unlike `quickstart` (which uses the packaged [`Experiment`] runner),
//! this example wires the pipeline pieces explicitly — optimizer, cluster,
//! scheduler, detector, adjuster — the way a downstream user integrating
//! TUNA with their own system would.
//!
//! ```text
//! cargo run --release --example postgres_tpcc
//! ```

use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::deploy::{default_worst_case, evaluate_deployment};
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::Objective;
use tuna_stats::rng::Rng;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn main() {
    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();
    let mut rng = Rng::seed_from(7);

    // A 10-worker tuning cluster of D8s_v5 VMs in westus2, exactly the
    // paper's setup (§6).
    let cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 7);

    // SMAC with the paper's budget ladder: configs are evaluated on 1,
    // then 3, then all 10 nodes as they keep looking promising.
    let optimizer = SmacOptimizer::multi_fidelity(
        pg.space().clone(),
        Objective::Maximize,
        SmacParams::default(),
        LadderParams::paper_default(),
    );

    let crash_penalty = default_worst_case(&pg, &workload, &cluster, &rng);
    let mut pipeline = TunaPipeline::new(
        TunaConfig::paper_default(crash_penalty),
        &pg,
        &workload,
        Box::new(optimizer),
        cluster.clone(),
    );

    println!("running 60 TUNA iterations on PostgreSQL/TPC-C...");
    pipeline.run_rounds(60, &mut rng);
    let result = pipeline.finish();

    println!(
        "configs: {}   samples: {}   unstable flagged: {}",
        result.n_configs, result.total_samples, result.n_unstable_configs
    );
    println!(
        "reported best: {:.0} tx/s (min across its nodes)",
        result.best_value
    );

    // Inspect the winning knobs.
    let knobs = pg.knobs(&result.best_config);
    println!("winning knobs:");
    println!("  shared_buffers_mb    = {}", knobs.shared_buffers_mb);
    println!("  work_mem_mb          = {}", knobs.work_mem_mb);
    println!("  random_page_cost     = {:.2}", knobs.random_page_cost);
    println!("  enable_nestloop      = {}", knobs.enable_nestloop);
    println!("  max_connections      = {}", knobs.max_connections);

    // Deploy on 10 brand-new VMs, the paper's robustness test.
    let stats = evaluate_deployment(
        &pg,
        &workload,
        &result.best_config,
        &cluster,
        99,
        10,
        3,
        crash_penalty,
        &rng,
    );
    println!(
        "deployment on 10 fresh VMs: mean {:.0} tx/s, std {:.0}, range [{:.0}, {:.0}], relative range {:.1}%",
        stats.mean,
        stats.std,
        stats.five.min,
        stats.five.max,
        stats.relative_range * 100.0
    );
    if stats.relative_range <= 0.30 {
        println!("the deployed config is STABLE by the paper's 30% criterion");
    } else {
        println!("warning: deployed config exceeds the 30% relative-range criterion");
    }
}
