//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace's property tests were written against the real
//! `proptest` API, but this repository must build without network access
//! to crates.io. This shim implements exactly the surface those tests
//! use — the `proptest!` macro, `Strategy` with `prop_map`, range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`, the
//! `prop_assert*` macros and `ProptestConfig` — over a deterministic
//! SplitMix64 generator, so `cargo test` is reproducible bit-for-bit.
//!
//! Differences from real proptest, by design:
//!
//! - no shrinking: a failing case panics with the case index so it can
//!   be replayed (`PROPTEST_CASES`/case index are deterministic);
//! - the default case count is 32 (env `PROPTEST_CASES` overrides) and
//!   an env cap `PROPTEST_MAX_CASES` bounds explicit `with_cases`
//!   requests, keeping CI time bounded — a warning is logged whenever
//!   the cap truncates a suite's request, so logs show effective
//!   coverage;
//! - only the strategy combinators used in this workspace exist.

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates a generator from a raw seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng(seed)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Per-run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Requests an explicit case count (still subject to the
        /// `PROPTEST_MAX_CASES` env cap).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count after applying environment overrides.
        pub fn resolved_cases(&self) -> u32 {
            let cap = env_u32("PROPTEST_MAX_CASES").unwrap_or(u32::MAX);
            self.cases.min(cap).max(1)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_u32("PROPTEST_CASES").unwrap_or(32),
            }
        }
    }

    fn env_u32(name: &str) -> Option<u32> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }

    /// Logs when the `PROPTEST_MAX_CASES` cap truncated a suite's
    /// requested case count, so CI logs show the *effective* coverage
    /// instead of silently running fewer cases than the test asked
    /// for. Returns whether a warning was emitted (for tests).
    pub fn warn_if_capped(test_path: &str, requested: u32, resolved: u32) -> bool {
        if resolved >= requested {
            return false;
        }
        eprintln!(
            "proptest: PROPTEST_MAX_CASES caps '{test_path}' at {resolved} of \
             {requested} requested cases"
        );
        true
    }

    /// Deterministic per-(test, case) generator: FNV-1a over the test
    /// name, mixed with the case index and the optional `PROPTEST_SEED`.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64);
        TestRng::from_seed(h ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((case as u64) << 32))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a
    /// strategy simply draws a value from the deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several magnitudes.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// `Just(value)` — always generates a clone of `value`.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty integer range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + off) as $t
                }
            }
        )*}
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let v = self.start + (self.end - self.start) * rng.next_f64() as $t;
                    // The lerp can round up to the excluded bound (wide
                    // ranges where the ulp at `end` exceeds the step, or
                    // f32 narrowing); keep the exclusive contract.
                    if v >= self.end {
                        <$t>::max(self.start, self.end.next_down())
                    } else {
                        v
                    }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty float range strategy");
                    // next_f64 is in [0, 1), which would make the upper
                    // bound unreachable; generate both endpoints
                    // explicitly so boundary behavior gets exercised.
                    match rng.next_u64() % 32 {
                        0 => start,
                        1 => end,
                        _ => start + (end - start) * rng.next_f64() as $t,
                    }
                }
            }
        )*}
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        }
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property; failure panics with the
/// condition text (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ..)`
/// into a plain `#[test]` that replays `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __cases = __config.resolved_cases();
                let __test_path = concat!(module_path!(), "::", stringify!($name));
                $crate::test_runner::warn_if_capped(__test_path, __config.cases, __cases);
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::case_rng(__test_path, __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(__payload) = __outcome {
                        eprintln!(
                            "proptest: '{__test_path}' failed at case {__case} of {__cases} \
                             (draws are deterministic per case; PROPTEST_SEED varies them)"
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::case_rng;

    proptest! {
        #[test]
        fn int_range_in_bounds(x in 3i64..17) {
            prop_assert!((3..17).contains(&x));
        }

        #[test]
        fn inclusive_range_in_bounds(x in 1usize..=10) {
            prop_assert!((1..=10).contains(&x));
        }

        #[test]
        fn float_range_in_bounds(x in -2.5f64..4.0) {
            prop_assert!((-2.5..4.0).contains(&x));
        }

        #[test]
        fn vec_respects_size_range(xs in prop::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuple_and_map_compose(
            y in (0i64..10, 0i64..10).prop_map(|(a, b)| a + b)
        ) {
            prop_assert!((0..19).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_attribute_accepted(b in any::<bool>()) {
            prop_assert_eq!(b, (b as u8) == 1);
        }
    }

    /// A false property must fail — the macro may not pass vacuously.
    #[test]
    #[should_panic]
    #[allow(unnameable_test_items)]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn inner(x in 0i64..100) {
                prop_assert!(x < 0, "must fire for every generated x");
            }
        }
        inner();
    }

    #[test]
    fn cases_draw_distinct_values() {
        let draws: Vec<u64> = (0..16)
            .map(|case| case_rng("cases_draw_distinct_values", case).next_u64())
            .collect();
        let mut unique = draws.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), draws.len(), "cases must not repeat a seed");
    }

    #[test]
    fn case_rng_is_deterministic() {
        let a = case_rng("t", 3).next_u64();
        let b = case_rng("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, case_rng("t", 4).next_u64());
        assert_ne!(a, case_rng("u", 3).next_u64());
    }

    #[test]
    fn with_cases_respects_env_cap_floor() {
        // The suite must pass under any PROPTEST_MAX_CASES the caller
        // exports (CI sets it), so compute the expectation from the env.
        let cap = std::env::var("PROPTEST_MAX_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(u32::MAX);
        assert_eq!(
            ProptestConfig::with_cases(24).resolved_cases(),
            24.min(cap).max(1)
        );
        assert_eq!(ProptestConfig::with_cases(0).resolved_cases(), 1);
    }

    #[test]
    fn cap_warning_fires_only_when_truncating() {
        use crate::test_runner::warn_if_capped;
        // Capped: requested more than resolved.
        assert!(warn_if_capped("t::capped", 256, 64));
        // Not capped: resolved equals or exceeds the request (the
        // `max(1)` floor raises, never truncates).
        assert!(!warn_if_capped("t::uncapped", 64, 64));
        assert!(!warn_if_capped("t::floored", 0, 1));
    }
}
