//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The workspace's microbenchmarks target the real criterion API, but
//! this repository must build without crates.io access. This shim
//! implements the surface those benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_with_setup`, `BenchmarkId`, `black_box` and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! analysis.
//!
//! Each benchmark warms up with one unmeasured iteration, then runs
//! iterations until a small time budget (`CRITERION_BUDGET_MS`, default
//! 100 ms, read once per process) or an iteration cap is hit, and
//! prints the mean time per iteration. That keeps `cargo bench` runs
//! fast while preserving relative timings; raise the env var for
//! longer, steadier measurements.

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_budget() -> Duration {
    static BUDGET: OnceLock<Duration> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        Duration::from_millis(ms)
    })
}

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fit", n)` renders as `fit/n`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` repeatedly within the measurement budget, after
    /// one unmeasured warm-up call.
    ///
    /// Iterations run in batches sized from the observed rate so the
    /// clock is read once per batch, not once per iteration — otherwise
    /// nanosecond-scale routines would mostly measure `Instant` reads.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const MAX_ITERS: u64 = 1_000_000;
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        let mut batch = 1u64;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= MAX_ITERS {
                self.elapsed = elapsed;
                self.iters = iters;
                return;
            }
            let per_iter_ns = (elapsed.as_nanos() / iters as u128).max(1);
            let remaining_ns = (self.budget - elapsed).as_nanos();
            batch = ((remaining_ns / per_iter_ns) as u64).clamp(1, 4096);
            batch = batch.min(MAX_ITERS - iters);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, after one
    /// unmeasured warm-up call; setup time is excluded from the
    /// measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
            if measured >= self.budget || iters >= 1_000_000 {
                break;
            }
        }
        self.elapsed = measured;
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let human = if per_iter < 1_000.0 {
            format!("{per_iter:.1} ns")
        } else if per_iter < 1_000_000.0 {
            format!("{:.2} µs", per_iter / 1_000.0)
        } else if per_iter < 1_000_000_000.0 {
            format!("{:.2} ms", per_iter / 1_000_000.0)
        } else {
            format!("{:.2} s", per_iter / 1_000_000_000.0)
        };
        println!("{name:<48} {human:>12}/iter ({} iters)", self.iters);
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: env_budget(),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: R) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's measurement loop is
    /// time-budgeted rather than sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`BenchmarkGroup::sample_size`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, R>(&mut self, id: BenchmarkId, input: &I, mut f: R) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_BUDGET: Duration = Duration::from_millis(1);

    #[test]
    fn bencher_iter_counts_iterations() {
        let mut b = Bencher::new(TEST_BUDGET);
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters >= 1);
        // The warm-up call runs the routine once outside the measurement.
        assert_eq!(b.iters + 1, n);
    }

    #[test]
    fn iter_with_setup_passes_fresh_input() {
        let mut b = Bencher::new(TEST_BUDGET);
        let mut next = 0u64;
        let mut seen = Vec::new();
        b.iter_with_setup(
            || {
                next += 1;
                next
            },
            |input| seen.push(input),
        );
        // Warm-up consumes one setup/routine pair before measuring.
        assert_eq!(seen.len() as u64, b.iters + 1);
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn benchmark_id_renders_function_and_param() {
        assert_eq!(BenchmarkId::new("fit", 64).to_string(), "fit/64");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            budget: TEST_BUDGET,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
