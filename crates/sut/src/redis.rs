//! Redis-style in-memory KV store model.
//!
//! Eleven knobs; the headline behaviour for the paper's Figure 14 is the
//! **OOM crash**: "overly aggressive" memory configurations (maxmemory near
//! or above guest RAM, amplified by AOF rewrites and RDB fork
//! copy-on-write) crash the server on a per-run coin whose bias depends on
//! how far the transient footprint exceeds what the machine can actually
//! give. The default configuration crashes ~8% of runs; aggressive tuned
//! configs reach ~30% — matching §6.4.

use crate::{RunOutcome, SystemUnderTest};
use tuna_cloudsim::machine::Machine;
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::Rng;
use tuna_workloads::{MetricKind, TargetSystem, Workload};

/// Typed view of a Redis configuration.
#[derive(Debug, Clone, Copy)]
pub struct RedisKnobs {
    /// `maxmemory` in MB.
    pub maxmemory_mb: f64,
    /// `maxmemory-policy` index: 0 noeviction, 1 allkeys-lru, 2
    /// allkeys-lfu, 3 volatile-lru, 4 allkeys-random.
    pub maxmemory_policy: usize,
    /// `appendonly`.
    pub appendonly: bool,
    /// `appendfsync` index: 0 always, 1 everysec, 2 no.
    pub appendfsync: usize,
    /// RDB snapshots enabled (`save` lines present).
    pub save_enabled: bool,
    /// `io-threads`.
    pub io_threads: f64,
    /// `lazyfree-lazy-eviction`.
    pub lazyfree: bool,
    /// `hash-max-listpack-entries`.
    pub hash_max_listpack: f64,
    /// `activedefrag`.
    pub activedefrag: bool,
    /// `tcp-backlog`.
    pub tcp_backlog: f64,
    /// `maxclients`.
    pub maxclients: f64,
}

/// The Redis system-under-test.
#[derive(Debug, Clone)]
pub struct Redis {
    space: ConfigSpace,
}

impl Default for Redis {
    fn default() -> Self {
        Self::new()
    }
}

impl Redis {
    /// Creates the SuT with its 11-knob space.
    pub fn new() -> Self {
        let space = ConfigSpace::builder()
            .int_log("maxmemory_mb", 256, 32_768)
            .categorical(
                "maxmemory_policy",
                &[
                    "noeviction",
                    "allkeys-lru",
                    "allkeys-lfu",
                    "volatile-lru",
                    "allkeys-random",
                ],
            )
            .boolean("appendonly")
            .categorical("appendfsync", &["always", "everysec", "no"])
            .boolean("save_enabled")
            .int("io_threads", 1, 8)
            .boolean("lazyfree")
            .int_log("hash_max_listpack", 32, 4_096)
            .boolean("activedefrag")
            .int_log("tcp_backlog", 128, 4_096)
            .int_log("maxclients", 100, 10_000)
            .build();
        Redis { space }
    }

    /// Decodes a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the config does not fit the space.
    pub fn knobs(&self, config: &Config) -> RedisKnobs {
        let s = &self.space;
        RedisKnobs {
            maxmemory_mb: s.value_of(config, "maxmemory_mb").as_int() as f64,
            maxmemory_policy: s.value_of(config, "maxmemory_policy").as_cat(),
            appendonly: s.value_of(config, "appendonly").as_bool(),
            appendfsync: s.value_of(config, "appendfsync").as_cat(),
            save_enabled: s.value_of(config, "save_enabled").as_bool(),
            io_threads: s.value_of(config, "io_threads").as_int() as f64,
            lazyfree: s.value_of(config, "lazyfree").as_bool(),
            hash_max_listpack: s.value_of(config, "hash_max_listpack").as_int() as f64,
            activedefrag: s.value_of(config, "activedefrag").as_bool(),
            tcp_backlog: s.value_of(config, "tcp_backlog").as_int() as f64,
            maxclients: s.value_of(config, "maxclients").as_int() as f64,
        }
    }

    /// Latency-efficiency of a knob set (higher = lower p95), relative
    /// scale; divide by the default's efficiency to get the multiplier.
    fn efficiency(knobs: &RedisKnobs, workload: &Workload) -> f64 {
        let mut e = 1.0;
        // IO threads help tail latency up to core count pressure.
        e *= 1.0 + 0.10 * (knobs.io_threads.max(1.0).ln() / 8f64.ln());
        // AOF: rewrite pauses; fsync=always stalls the event loop.
        if knobs.appendonly {
            e *= match knobs.appendfsync {
                0 => 0.78,
                1 => 0.93,
                _ => 0.96,
            };
        }
        // RDB snapshots: fork + copy-on-write spikes.
        if knobs.save_enabled {
            e *= 0.91;
        }
        // Active defrag steals cycles.
        if knobs.activedefrag {
            e *= 0.95;
        }
        // Lazy freeing smooths eviction spikes when evicting at all.
        if knobs.lazyfree && knobs.maxmemory_mb < workload.dataset_mb {
            e *= 1.03;
        }
        // listpack threshold: mild optimum around 512.
        let lp = (knobs.hash_max_listpack.log2() - 9.0).abs();
        e *= 1.0 - 0.01 * lp.min(4.0);
        // Short backlog queues reconnect bursts.
        if knobs.tcp_backlog < 512.0 {
            e *= 0.96;
        }
        // Too-low client cap throttles the benchmark harness.
        if knobs.maxclients < 200.0 {
            e *= 0.85;
        }
        // Headroom above the dataset trims fragmentation/rehash stalls —
        // the bait that pulls tuners toward the OOM cliff.
        e *= 1.0 + 0.05 * (knobs.maxmemory_mb / 32_768.0).min(1.0);
        // Evicting below the hot set costs misses (Zipfian: mild until
        // deep).
        if knobs.maxmemory_mb < workload.dataset_mb {
            let coverage = (knobs.maxmemory_mb / workload.dataset_mb).clamp(0.01, 1.0);
            let hit = coverage.powf(0.25); // Zipf-skewed hot set.
            e *= 1.0 - 0.25 * (1.0 - hit);
        }
        e
    }

    /// Transient memory footprint in MB (resident + fork/rewrite
    /// overheads).
    fn footprint_mb(knobs: &RedisKnobs, workload: &Workload) -> f64 {
        let resident = knobs.maxmemory_mb.min(workload.dataset_mb * 1.1);
        let mut overhead = 1.0;
        if knobs.appendonly {
            overhead *= 1.30; // AOF rewrite working copy.
        }
        if knobs.save_enabled {
            overhead *= 1.15; // RDB fork copy-on-write.
        }
        resident * overhead
    }

    /// Per-run crash probability on a machine with `avail_mb` usable RAM.
    fn crash_probability(knobs: &RedisKnobs, workload: &Workload, avail_mb: f64) -> f64 {
        // noeviction with maxmemory below the dataset: the load phase
        // fails outright.
        if knobs.maxmemory_policy == 0 && knobs.maxmemory_mb < workload.dataset_mb * 0.95 {
            return 1.0;
        }
        let ratio = Self::footprint_mb(knobs, workload) / avail_mb.max(1.0);
        ((ratio - 0.93) * 0.6).clamp(0.0, 0.95)
    }
}

impl SystemUnderTest for Redis {
    fn name(&self) -> &'static str {
        "redis"
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn default_config(&self) -> Config {
        use tuna_space::ParamValue as V;
        Config::new(vec![
            V::Int(30_000), // maxmemory_mb (the paper-setup sizing).
            V::Cat(0),      // maxmemory_policy = noeviction
            V::Bool(false), // appendonly
            V::Cat(1),      // appendfsync = everysec
            V::Bool(true),  // save_enabled
            V::Int(1),      // io_threads
            V::Bool(false), // lazyfree
            V::Int(128),    // hash_max_listpack
            V::Bool(false), // activedefrag
            V::Int(512),    // tcp_backlog
            V::Int(10_000), // maxclients
        ])
    }

    fn supports(&self, workload: &Workload) -> bool {
        workload.target == TargetSystem::Redis
    }

    fn run(
        &self,
        config: &Config,
        workload: &Workload,
        machine: &mut Machine,
        rng: &mut Rng,
    ) -> RunOutcome {
        let knobs = self.knobs(config);
        let util = workload.demand.map(|x| x.clamp(0.0, 1.0));
        let snap = machine.observe(&util);
        let scale = machine.sku().component_scale;

        // p95 latency scales inversely with the demand-weighted machine
        // speed; tails amplify interference slightly (exponent 1.1).
        let speeds = snap.speeds.zip(&scale, |a, b| a * b);
        let machine_speed = workload
            .demand
            .normalized()
            .weighted_geomean(&speeds)
            .powf(1.1);

        let e = Self::efficiency(&knobs, workload);
        let e0 = Self::efficiency(&self.knobs(&self.default_config()), workload);
        let rel_raw = (e / e0) * machine_speed;
        let rel = (1.0 + (rel_raw - 1.0) * workload.tuning_headroom).max(1e-3);

        // Tail noise: p95 estimates from a 5-minute window jitter a bit.
        let tail = 1.0 + 0.02 * rng.next_gaussian();

        let nominal = match workload.metric {
            MetricKind::P95LatencyMs { nominal } => nominal,
            MetricKind::ThroughputTps { nominal } | MetricKind::RuntimeSeconds { nominal } => {
                nominal
            }
        };
        let value = (nominal / rel * tail.max(0.5)).max(1e-3);

        // OOM crash draw: host memory pressure moves the boundary a little.
        let avail_mb =
            machine.sku().memory_gb * 1_024.0 * 0.94 * (1.0 + (snap.placement.memory - 1.0) * 0.3);
        let crashed = rng.chance(Self::crash_probability(&knobs, workload, avail_mb));

        let metrics = tuna_metrics::generate(&snap, &util, rel, rng);
        RunOutcome {
            value,
            crashed,
            metrics,
            snapshot: snap,
            relative_perf: rel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Cluster, Region, VmSku};
    use tuna_space::ParamValue as V;
    use tuna_stats::summary;

    fn cluster(seed: u64) -> Cluster {
        Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), seed)
    }

    fn set(rd: &Redis, c: Config, name: &str, v: V) -> Config {
        c.with(rd.space().index_of(name).unwrap(), v)
    }

    #[test]
    fn default_validates() {
        let rd = Redis::new();
        assert!(rd.space().validate(&rd.default_config()).is_ok());
    }

    #[test]
    fn default_crash_rate_near_paper_8pct() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let mut rng = Rng::seed_from(3);
        let mut cl = cluster(5);
        let mut crashes = 0;
        let n = 3_000;
        for i in 0..n {
            let out = rd.run(&rd.default_config(), &w, cl.machine_mut(i % 10), &mut rng);
            if out.crashed {
                crashes += 1;
            }
        }
        let rate = crashes as f64 / n as f64;
        assert!((0.04..0.14).contains(&rate), "default crash rate {rate}");
    }

    #[test]
    fn aggressive_memory_crashes_often() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let aggressive = set(
            &rd,
            set(&rd, rd.default_config(), "maxmemory_mb", V::Int(32_768)),
            "appendonly",
            V::Bool(true),
        );
        let mut rng = Rng::seed_from(4);
        let mut cl = cluster(6);
        let mut crashes = 0;
        let n = 2_000;
        for i in 0..n {
            if rd
                .run(&aggressive, &w, cl.machine_mut(i % 10), &mut rng)
                .crashed
            {
                crashes += 1;
            }
        }
        let rate = crashes as f64 / n as f64;
        assert!(rate > 0.2, "aggressive crash rate {rate}");
    }

    #[test]
    fn conservative_memory_never_crashes() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let safe = set(
            &rd,
            set(&rd, rd.default_config(), "maxmemory_mb", V::Int(20_000)),
            "maxmemory_policy",
            V::Cat(1), // allkeys-lru
        );
        let mut rng = Rng::seed_from(5);
        let mut cl = cluster(7);
        for i in 0..2_000 {
            assert!(!rd.run(&safe, &w, cl.machine_mut(i % 10), &mut rng).crashed);
        }
    }

    #[test]
    fn noeviction_below_dataset_always_fails() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let broken = set(&rd, rd.default_config(), "maxmemory_mb", V::Int(4_096));
        let mut rng = Rng::seed_from(6);
        let mut cl = cluster(8);
        assert!(rd.run(&broken, &w, cl.machine_mut(0), &mut rng).crashed);
    }

    #[test]
    fn eviction_policy_pays_modest_latency_for_safety() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let safe = set(
            &rd,
            set(&rd, rd.default_config(), "maxmemory_mb", V::Int(16_384)),
            "maxmemory_policy",
            V::Cat(1),
        );
        let k_safe = rd.knobs(&safe);
        let k_def = rd.knobs(&rd.default_config());
        let e_safe = Redis::efficiency(&k_safe, &w);
        let e_def = Redis::efficiency(&k_def, &w);
        // Slightly worse than default, but within ~15%.
        assert!(e_safe < e_def);
        assert!(e_safe > e_def * 0.85);
    }

    #[test]
    fn p95_near_nominal_on_default() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let mut rng = Rng::seed_from(7);
        let mut cl = cluster(9);
        let vals: Vec<f64> = (0..200)
            .filter_map(|i| {
                let out = rd.run(&rd.default_config(), &w, cl.machine_mut(i % 10), &mut rng);
                if out.crashed {
                    None
                } else {
                    Some(out.value)
                }
            })
            .collect();
        let mean = summary::mean(&vals);
        assert!((mean - 0.62).abs() < 0.12, "p95 mean {mean}");
    }

    #[test]
    fn io_threads_reduce_latency() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let threaded = set(&rd, rd.default_config(), "io_threads", V::Int(8));
        let e_thr = Redis::efficiency(&rd.knobs(&threaded), &w);
        let e_def = Redis::efficiency(&rd.knobs(&rd.default_config()), &w);
        assert!(e_thr > e_def);
    }

    #[test]
    fn sampled_configs_run_without_panic() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        let mut rng = Rng::seed_from(8);
        let mut cl = cluster(10);
        for i in 0..200 {
            let cfg = rd.space().sample(&mut rng);
            let out = rd.run(&cfg, &w, cl.machine_mut(i % 10), &mut rng);
            assert!(out.value.is_finite() && out.value > 0.0);
        }
    }
}
