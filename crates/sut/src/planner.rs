//! The query-planner flip model — the paper's unstable-config mechanism.
//!
//! §3.2.1 root-causes unstable TPC-C configurations to the DBMS picking
//! between two candidate JOIN plans whose *estimated* costs are nearly
//! equal while their *actual* costs differ by two orders of magnitude.
//! Which plan wins depends on minor machine-local differences in the cost
//! model inputs: "machines that performed well always selected the
//! high-performing plan, while machines that performed poorly occasionally
//! picked the poor plan".
//!
//! [`decide`] reproduces that structure:
//!
//! - the configuration supplies a *margin* `m = ln(est_bad / est_good)`
//!   (positive = the good plan is estimated cheaper);
//! - each machine contributes a fixed *tilt* derived from its placement
//!   (fast cache/memory machines estimate the good plan cheaper) plus a
//!   per-(machine, config) idiosyncrasy;
//! - configurations far from the tie pick deterministically; inside the
//!   near-tie band the choice becomes a per-run coin whose bias depends on
//!   machine and config — some machines always pick well, others flip.

use tuna_cloudsim::machine::Machine;
use tuna_space::ConfigId;
use tuna_stats::rng::{hash64, hash_combine, u64_to_unit_f64, Rng};

/// Outcome of planning the sensitive JOIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// The fast plan.
    Good,
    /// The slow plan (order-of-magnitude penalty on the JOIN path).
    Bad,
}

/// How a (config, machine) pair behaves across runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanBehavior {
    /// Always picks the good plan here.
    AlwaysGood,
    /// Always picks the bad plan here.
    AlwaysBad,
    /// Flips per run with the given bad-plan probability.
    Flips {
        /// Probability of the bad plan on any given run.
        p_bad: f64,
    },
}

/// Machine-fixed tilt: fast cache/memory placements push the cost model
/// toward the good plan.
fn machine_tilt(machine: &Machine, config: ConfigId) -> f64 {
    let p = machine.placement();
    let placement_bias = (p.cache - 1.0) * 4.0 + (p.memory - 1.0) * 3.0;
    // Per-(machine, config) idiosyncrasy: statistics sampled by ANALYZE on
    // this node for this config's stats target, etc.
    let u = u64_to_unit_f64(hash64(hash_combine(machine.identity(), config.0)));
    placement_bias + (u - 0.5) * 0.9
}

/// Classifies how `machine` plans the JOIN under a config with margin
/// `margin` (in units of `ln(est_bad/est_good)`) and near-tie half-width
/// `band` (0 disables flipping entirely).
pub fn behavior(margin: f64, band: f64, machine: &Machine, config: ConfigId) -> PlanBehavior {
    if band <= 0.0 {
        return if margin >= 0.0 {
            PlanBehavior::AlwaysGood
        } else {
            PlanBehavior::AlwaysBad
        };
    }
    // Normalized score: > 1 clearly good, < -1 clearly bad.
    let score = margin / band + machine_tilt(machine, config);
    if score >= 1.0 {
        PlanBehavior::AlwaysGood
    } else if score <= -1.0 {
        PlanBehavior::AlwaysBad
    } else {
        // Inside the tie band: per-run coin with bias tied to the score.
        // The coin is deliberately not allowed to become near-deterministic
        // (floor/ceiling at 25% / 75%): §3.2.1's unstable configs perform
        // "extremely well or extremely poorly ... in a difficult-to-predict
        // manner", i.e. both faces show up readily on a flipping machine.
        PlanBehavior::Flips {
            p_bad: (0.25 + 0.5 * (1.0 - score) / 2.0).clamp(0.25, 0.75),
        }
    }
}

/// Draws the actual plan for one run.
pub fn decide(
    margin: f64,
    band: f64,
    machine: &Machine,
    config: ConfigId,
    rng: &mut Rng,
) -> PlanChoice {
    match behavior(margin, band, machine, config) {
        PlanBehavior::AlwaysGood => PlanChoice::Good,
        PlanBehavior::AlwaysBad => PlanChoice::Bad,
        PlanBehavior::Flips { p_bad } => {
            if rng.chance(p_bad) {
                PlanChoice::Bad
            } else {
                PlanChoice::Good
            }
        }
    }
}

/// End-to-end throughput multiplier when the bad plan is active: the JOIN
/// path (fraction `join_fraction` of the work) runs `slowdown` times
/// slower.
pub fn bad_plan_factor(join_fraction: f64, slowdown: f64) -> f64 {
    1.0 / (1.0 - join_fraction + join_fraction * slowdown.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Region, VmSku};
    use tuna_space::{Config, ParamValue};

    fn machine(id: u64) -> Machine {
        Machine::provision(id, &VmSku::d8s_v5(), &Region::westus2(), &Rng::seed_from(5))
    }

    fn cfg(v: i64) -> ConfigId {
        Config::new(vec![ParamValue::Int(v)]).id()
    }

    #[test]
    fn far_margins_are_deterministic() {
        let m = machine(0);
        assert_eq!(behavior(5.0, 0.3, &m, cfg(1)), PlanBehavior::AlwaysGood);
        assert_eq!(behavior(-5.0, 0.3, &m, cfg(1)), PlanBehavior::AlwaysBad);
    }

    #[test]
    fn zero_band_never_flips() {
        let m = machine(0);
        for margin in [-0.1, 0.0, 0.1] {
            let b = behavior(margin, 0.0, &m, cfg(1));
            assert!(matches!(
                b,
                PlanBehavior::AlwaysGood | PlanBehavior::AlwaysBad
            ));
        }
    }

    #[test]
    fn near_tie_produces_mixed_behaviors_across_machines() {
        // A config at the tie should split a fleet into always-good,
        // always-bad and flipping machines.
        let mut always_good = 0;
        let mut flips = 0;
        for id in 0..200 {
            let m = machine(id);
            match behavior(0.0, 0.3, &m, cfg(42)) {
                PlanBehavior::AlwaysGood => always_good += 1,
                PlanBehavior::Flips { .. } => flips += 1,
                PlanBehavior::AlwaysBad => {}
            }
        }
        assert!(always_good > 0, "no machine is reliably good");
        assert!(flips > 0, "no machine flips");
    }

    #[test]
    fn behavior_is_deterministic_per_machine_config() {
        let m = machine(3);
        assert_eq!(
            behavior(0.1, 0.3, &m, cfg(7)),
            behavior(0.1, 0.3, &m, cfg(7))
        );
    }

    #[test]
    fn different_configs_can_differ_on_same_machine() {
        let m = machine(4);
        let outcomes: Vec<PlanBehavior> = (0..64).map(|v| behavior(0.0, 0.3, &m, cfg(v))).collect();
        let first = outcomes[0];
        assert!(
            outcomes.iter().any(|b| *b != first),
            "config idiosyncrasy missing"
        );
    }

    #[test]
    fn flip_frequency_matches_bias() {
        let m = machine(5);
        if let PlanBehavior::Flips { p_bad } = behavior(0.0, 0.3, &m, cfg(9)) {
            let mut rng = Rng::seed_from(11);
            let n = 20_000;
            let bad = (0..n)
                .filter(|_| decide(0.0, 0.3, &m, cfg(9), &mut rng) == PlanChoice::Bad)
                .count();
            let freq = bad as f64 / n as f64;
            assert!((freq - p_bad).abs() < 0.02, "freq {freq} vs p {p_bad}");
        }
    }

    #[test]
    fn bad_plan_factor_paper_range() {
        // TPC-C parameters give 30-76% end-to-end degradation (§3.2.1).
        let f = bad_plan_factor(0.085, 14.0);
        assert!((0.24..=0.70).contains(&f), "factor {f}");
        // No join sensitivity, no penalty.
        assert_eq!(bad_plan_factor(0.0, 100.0), 1.0);
    }

    #[test]
    fn good_machines_pick_good_plans() {
        // Machines with clearly fast cache/memory placement should be
        // AlwaysGood at the tie.
        let mut found_fast = false;
        for id in 0..8_000 {
            let m = machine(id);
            let p = m.placement();
            // Bias above 1.45 guarantees score >= 1 even at the worst
            // per-config idiosyncrasy (-0.45).
            if (p.cache - 1.0) * 4.0 + (p.memory - 1.0) * 3.0 > 1.45 {
                found_fast = true;
                assert_eq!(
                    behavior(0.0, 0.3, &m, cfg(1)),
                    PlanBehavior::AlwaysGood,
                    "fast machine {id} not always-good"
                );
            }
        }
        assert!(found_fast, "no fast machine sampled");
    }
}
