//! Systems-under-test for the TUNA reproduction.
//!
//! Each SuT is an analytic performance model over a typed knob space,
//! evaluated against a simulated [`Machine`]: the model maps a
//! configuration to per-component *service demands* and efficiency
//! multipliers, composes them with the machine's momentary component speeds
//! (a serial-demand bottleneck model), and returns the workload's metric
//! plus the guest metrics the noise adjuster trains on.
//!
//! The star of the show is the PostgreSQL model's **query-planner flip**
//! (§3.2.1): for plan-sensitive workloads, configurations whose two
//! candidate JOIN plans have near-equal estimated cost pick their actual
//! plan per (machine, run) — well-placed machines always pick the good
//! plan, while on others small cost-model perturbations tip the choice to a
//! plan that is an order of magnitude slower. This is the mechanism behind
//! the paper's *unstable configurations*.
//!
//! # Examples
//!
//! ```
//! use tuna_cloudsim::{Cluster, Region, VmSku};
//! use tuna_stats::rng::Rng;
//! use tuna_sut::postgres::Postgres;
//! use tuna_sut::SystemUnderTest;
//!
//! let pg = Postgres::new();
//! let mut cluster = Cluster::new(1, VmSku::d8s_v5(), Region::westus2(), 7);
//! let outcome = pg.run(
//!     &pg.default_config(),
//!     &tuna_workloads::tpcc(),
//!     cluster.machine_mut(0),
//!     &mut Rng::seed_from(1),
//! );
//! // Default TPC-C throughput lands near the paper's ~848 tx/s.
//! assert!(outcome.value > 700.0 && outcome.value < 1000.0);
//! ```

pub mod nginx;
pub mod planner;
pub mod postgres;
pub mod redis;

use tuna_cloudsim::machine::{Machine, Snapshot};
use tuna_metrics::MetricVector;
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::Rng;
use tuna_workloads::Workload;

/// Result of evaluating one configuration for one measurement epoch.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The workload metric value (tx/s, seconds, or ms — see
    /// [`Workload::metric`]).
    pub value: f64,
    /// Whether the SuT crashed during the run (e.g. Redis OOM). The value
    /// is still populated with the pre-crash estimate but must be treated
    /// as invalid by the sampling layer.
    pub crashed: bool,
    /// Guest-OS metrics collected during the run.
    pub metrics: MetricVector,
    /// The machine snapshot of the epoch.
    pub snapshot: Snapshot,
    /// Performance relative to the default config on a nominal machine
    /// (diagnostic; the noise-free signal an oracle would see).
    pub relative_perf: f64,
}

/// A tunable system that can execute workloads on simulated machines.
///
/// `Send + Sync` is a supertrait requirement: the parallel trial-execution
/// engine shares one SuT across worker threads (each worker runs it
/// against a disjoint machine lane), so implementations must be
/// thread-shareable — in practice, plain immutable model data. All
/// run-level mutability lives in the `machine` and `rng` arguments.
pub trait SystemUnderTest: Send + Sync {
    /// System name.
    fn name(&self) -> &'static str;

    /// The knob space.
    fn space(&self) -> &ConfigSpace;

    /// The vendor-default configuration.
    fn default_config(&self) -> Config;

    /// Whether this SuT can run `workload`.
    fn supports(&self, workload: &Workload) -> bool;

    /// Evaluates `config` under `workload` on `machine` for one
    /// measurement epoch.
    ///
    /// `rng` drives run-level randomness (plan tipping, crash draws, tail
    /// noise); machine-level randomness lives inside `machine`.
    fn run(
        &self,
        config: &Config,
        workload: &Workload,
        machine: &mut Machine,
        rng: &mut Rng,
    ) -> RunOutcome;
}

/// Converts a metric value to "higher is better" orientation for internal
/// comparisons (used by tests and reports).
pub fn oriented(workload: &Workload, value: f64) -> f64 {
    if workload.metric.higher_is_better() {
        value
    } else {
        -value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nginx::Nginx;
    use crate::postgres::Postgres;
    use crate::redis::Redis;

    #[test]
    fn support_matrix() {
        let pg = Postgres::new();
        let rd = Redis::new();
        let ng = Nginx::new();
        assert!(pg.supports(&tuna_workloads::tpcc()));
        assert!(pg.supports(&tuna_workloads::mssales()));
        assert!(!pg.supports(&tuna_workloads::ycsb_c()));
        assert!(rd.supports(&tuna_workloads::ycsb_c()));
        assert!(!rd.supports(&tuna_workloads::tpcc()));
        assert!(ng.supports(&tuna_workloads::wikipedia()));
        assert!(!ng.supports(&tuna_workloads::tpch()));
    }

    #[test]
    fn suts_and_run_inputs_are_thread_shareable() {
        // The parallel executor moves `&mut Machine` lanes into worker
        // threads and shares `&dyn SystemUnderTest` + `&Workload` across
        // them; every piece must be Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Postgres>();
        assert_send_sync::<Redis>();
        assert_send_sync::<Nginx>();
        assert_send_sync::<tuna_workloads::Workload>();
        assert_send_sync::<tuna_cloudsim::machine::Machine>();
        assert_send_sync::<RunOutcome>();
        assert_send_sync::<&dyn SystemUnderTest>();
    }

    #[test]
    fn oriented_flips_minimization() {
        assert_eq!(oriented(&tuna_workloads::tpcc(), 5.0), 5.0);
        assert_eq!(oriented(&tuna_workloads::tpch(), 5.0), -5.0);
    }
}
