//! NGINX-style web server model.
//!
//! Twelve knobs serving the Wikipedia-Top500 workload of §6.4 (whole-page
//! p95 latency, media included). The dominant effect is the
//! `worker_processes` default of a single worker on an 8-vCPU box;
//! secondary effects come from keepalive (connection reuse), sendfile /
//! tcp_nopush, gzip level (transfer-size vs CPU trade), the open-file
//! cache and access logging. A mild instability channel exists: configs
//! whose `worker_connections` sit just above the concurrent-connection
//! need spike their tail latency when OS interference slows accept
//! processing — unstable in exactly the relative-range sense of §4.2.

use crate::{RunOutcome, SystemUnderTest};
use tuna_cloudsim::machine::Machine;
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::Rng;
use tuna_workloads::{MetricKind, TargetSystem, Workload};

/// Concurrent connections the Wikipedia load generator holds open.
const CONCURRENT_CONNECTIONS: f64 = 600.0;

/// Typed view of an NGINX configuration.
#[derive(Debug, Clone, Copy)]
pub struct NginxKnobs {
    /// `worker_processes`.
    pub worker_processes: f64,
    /// `worker_connections`.
    pub worker_connections: f64,
    /// `keepalive_timeout` (seconds; 0 disables).
    pub keepalive_timeout: f64,
    /// `keepalive_requests`.
    pub keepalive_requests: f64,
    /// `sendfile`.
    pub sendfile: bool,
    /// `tcp_nopush`.
    pub tcp_nopush: bool,
    /// `tcp_nodelay`.
    pub tcp_nodelay: bool,
    /// `gzip`.
    pub gzip: bool,
    /// `gzip_comp_level`.
    pub gzip_comp_level: f64,
    /// `open_file_cache` max entries (0 disables).
    pub open_file_cache: f64,
    /// `access_log` enabled.
    pub access_log: bool,
    /// `multi_accept`.
    pub multi_accept: bool,
}

/// The NGINX system-under-test.
#[derive(Debug, Clone)]
pub struct Nginx {
    space: ConfigSpace,
}

impl Default for Nginx {
    fn default() -> Self {
        Self::new()
    }
}

impl Nginx {
    /// Creates the SuT with its 12-knob space.
    pub fn new() -> Self {
        let space = ConfigSpace::builder()
            .int("worker_processes", 1, 16)
            .int_log("worker_connections", 64, 16_384)
            .int("keepalive_timeout", 0, 120)
            .int_log("keepalive_requests", 16, 16_384)
            .boolean("sendfile")
            .boolean("tcp_nopush")
            .boolean("tcp_nodelay")
            .boolean("gzip")
            .int("gzip_comp_level", 1, 9)
            .int_log("open_file_cache", 128, 65_536)
            .boolean("access_log")
            .boolean("multi_accept")
            .build();
        Nginx { space }
    }

    /// Decodes a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the config does not fit the space.
    pub fn knobs(&self, config: &Config) -> NginxKnobs {
        let s = &self.space;
        NginxKnobs {
            worker_processes: s.value_of(config, "worker_processes").as_int() as f64,
            worker_connections: s.value_of(config, "worker_connections").as_int() as f64,
            keepalive_timeout: s.value_of(config, "keepalive_timeout").as_int() as f64,
            keepalive_requests: s.value_of(config, "keepalive_requests").as_int() as f64,
            sendfile: s.value_of(config, "sendfile").as_bool(),
            tcp_nopush: s.value_of(config, "tcp_nopush").as_bool(),
            tcp_nodelay: s.value_of(config, "tcp_nodelay").as_bool(),
            gzip: s.value_of(config, "gzip").as_bool(),
            gzip_comp_level: s.value_of(config, "gzip_comp_level").as_int() as f64,
            open_file_cache: s.value_of(config, "open_file_cache").as_int() as f64,
            access_log: s.value_of(config, "access_log").as_bool(),
            multi_accept: s.value_of(config, "multi_accept").as_bool(),
        }
    }

    /// Latency efficiency (higher = lower p95), relative scale.
    fn efficiency(knobs: &NginxKnobs, vcpus: f64) -> f64 {
        let mut e = 1.0;

        // Worker scaling: sublinear up to core count, slight oversubscribe
        // penalty beyond.
        let effective_workers = knobs.worker_processes.min(vcpus);
        e *= (effective_workers / 8.0).powf(0.30);
        if knobs.worker_processes > vcpus {
            e *= 1.0 - 0.015 * (knobs.worker_processes - vcpus);
        }

        // Keepalive: reconnect storms without it; diminishing returns.
        e *= if knobs.keepalive_timeout == 0.0 {
            0.72
        } else {
            1.0 + 0.03 * (knobs.keepalive_timeout / 75.0).min(1.5)
        };
        e *= 1.0 + 0.02 * ((knobs.keepalive_requests / 1_000.0).min(4.0) - 1.0) / 4.0;

        // Zero-copy file serving.
        if knobs.sendfile {
            e *= 1.08;
            if knobs.tcp_nopush {
                e *= 1.04;
            }
        }
        if knobs.tcp_nodelay {
            e *= 1.02;
        }

        // gzip: transfer-size win on text at moderate levels, CPU burn at
        // high levels (media recompression).
        if knobs.gzip {
            let sweet = 1.0 - ((knobs.gzip_comp_level - 4.0) / 5.0).powi(2) * 0.12;
            e *= 1.10 * sweet.max(0.8);
        }

        // Open-file cache: the 500-page working set plus media wants
        // thousands of entries.
        let ofc_cover = (knobs.open_file_cache / 8_192.0).clamp(0.0, 1.0);
        e *= 0.94 + 0.08 * ofc_cover.powf(0.5);

        // Logging syscall overhead.
        if !knobs.access_log {
            e *= 1.04;
        }
        if knobs.multi_accept {
            e *= 1.01;
        }

        // Hard queueing collapse when connections cannot be held at all.
        let total_conns = knobs.worker_connections * knobs.worker_processes.max(1.0);
        if total_conns < CONCURRENT_CONNECTIONS {
            e *= (total_conns / CONCURRENT_CONNECTIONS).powf(1.5).max(0.05);
        }
        e
    }

    /// Probability of an interference-triggered accept-queue spike for one
    /// run: configs whose per-worker connection headroom is thin live on a
    /// knife's edge (the NGINX unstable-config channel).
    fn spike_probability(knobs: &NginxKnobs, os_speed: f64) -> f64 {
        let total_conns = knobs.worker_connections * knobs.worker_processes.max(1.0);
        let headroom = total_conns / CONCURRENT_CONNECTIONS;
        if !(1.0..1.5).contains(&headroom) {
            return 0.0; // Plenty of headroom, or already penalized flatly.
        }
        let thinness = (1.5 - headroom) / 0.5; // 0 at 1.5x, 1 at 1.0x.
        let os_pressure = ((1.0 - os_speed) * 8.0).max(0.0);
        (0.25 * thinness * (1.0 + os_pressure)).clamp(0.0, 0.9)
    }
}

impl SystemUnderTest for Nginx {
    fn name(&self) -> &'static str {
        "nginx"
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn default_config(&self) -> Config {
        use tuna_space::ParamValue as V;
        Config::new(vec![
            V::Int(2),      // worker_processes (distro default auto=small)
            V::Int(768),    // worker_connections
            V::Int(75),     // keepalive_timeout
            V::Int(1_000),  // keepalive_requests
            V::Bool(true),  // sendfile
            V::Bool(false), // tcp_nopush
            V::Bool(true),  // tcp_nodelay
            V::Bool(false), // gzip
            V::Int(6),      // gzip_comp_level
            V::Int(1_024),  // open_file_cache
            V::Bool(true),  // access_log
            V::Bool(false), // multi_accept
        ])
    }

    fn supports(&self, workload: &Workload) -> bool {
        workload.target == TargetSystem::Nginx
    }

    fn run(
        &self,
        config: &Config,
        workload: &Workload,
        machine: &mut Machine,
        rng: &mut Rng,
    ) -> RunOutcome {
        let knobs = self.knobs(config);
        let util = workload.demand.map(|x| x.clamp(0.0, 1.0));
        let snap = machine.observe(&util);
        let scale = machine.sku().component_scale;
        let vcpus = machine.sku().vcpus as f64;

        let speeds = snap.speeds.zip(&scale, |a, b| a * b);
        let machine_speed = workload
            .demand
            .normalized()
            .weighted_geomean(&speeds)
            .powf(1.1);

        let e = Self::efficiency(&knobs, vcpus);
        let e0 = Self::efficiency(&self.knobs(&self.default_config()), vcpus);
        let rel_raw = (e / e0) * machine_speed;
        let mut rel = (1.0 + (rel_raw - 1.0) * workload.tuning_headroom).max(1e-3);

        // Interference-triggered accept-queue spike (tail collapse).
        if rng.chance(Self::spike_probability(&knobs, snap.speeds.os)) {
            rel /= 2.2;
        }

        let tail = 1.0 + 0.02 * rng.next_gaussian();
        let nominal = match workload.metric {
            MetricKind::P95LatencyMs { nominal } => nominal,
            MetricKind::ThroughputTps { nominal } | MetricKind::RuntimeSeconds { nominal } => {
                nominal
            }
        };
        let value = (nominal / rel * tail.max(0.5)).max(1e-3);

        let metrics = tuna_metrics::generate(&snap, &util, rel, rng);
        RunOutcome {
            value,
            crashed: false,
            metrics,
            snapshot: snap,
            relative_perf: rel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Cluster, Region, VmSku};
    use tuna_space::ParamValue as V;
    use tuna_stats::summary;

    fn cluster(seed: u64) -> Cluster {
        Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), seed)
    }

    fn set(ng: &Nginx, c: Config, name: &str, v: V) -> Config {
        c.with(ng.space().index_of(name).unwrap(), v)
    }

    fn tuned(ng: &Nginx) -> Config {
        let mut c = ng.default_config();
        c = set(ng, c, "worker_processes", V::Int(8));
        c = set(ng, c, "worker_connections", V::Int(4_096));
        c = set(ng, c, "tcp_nopush", V::Bool(true));
        c = set(ng, c, "gzip", V::Bool(true));
        c = set(ng, c, "gzip_comp_level", V::Int(4));
        c = set(ng, c, "open_file_cache", V::Int(16_384));
        c = set(ng, c, "access_log", V::Bool(false));
        c
    }

    #[test]
    fn default_validates_and_near_nominal() {
        let ng = Nginx::new();
        assert!(ng.space().validate(&ng.default_config()).is_ok());
        let w = tuna_workloads::wikipedia();
        let mut rng = Rng::seed_from(1);
        let mut cl = cluster(2);
        let vals: Vec<f64> = (0..100)
            .map(|i| {
                ng.run(&ng.default_config(), &w, cl.machine_mut(i % 10), &mut rng)
                    .value
            })
            .collect();
        let mean = summary::mean(&vals);
        assert!((mean - 69.7).abs() < 10.0, "default p95 {mean}");
    }

    #[test]
    fn tuned_config_cuts_p95_roughly_40pct() {
        let ng = Nginx::new();
        let w = tuna_workloads::wikipedia();
        let mut rng = Rng::seed_from(3);
        let mut cl = cluster(4);
        let vals: Vec<f64> = (0..100)
            .map(|i| {
                ng.run(&tuned(&ng), &w, cl.machine_mut(i % 10), &mut rng)
                    .value
            })
            .collect();
        let mean = summary::mean(&vals);
        assert!((30.0..55.0).contains(&mean), "tuned p95 {mean}");
    }

    #[test]
    fn single_worker_is_much_slower() {
        let ng = Nginx::new();
        let one = Nginx::efficiency(
            &ng.knobs(&set(
                &ng,
                ng.default_config(),
                "worker_processes",
                V::Int(1),
            )),
            8.0,
        );
        let eight = Nginx::efficiency(
            &ng.knobs(&set(
                &ng,
                ng.default_config(),
                "worker_processes",
                V::Int(8),
            )),
            8.0,
        );
        assert!(eight > one * 1.4, "one {one} eight {eight}");
    }

    #[test]
    fn no_keepalive_hurts() {
        let ng = Nginx::new();
        let off = Nginx::efficiency(
            &ng.knobs(&set(
                &ng,
                ng.default_config(),
                "keepalive_timeout",
                V::Int(0),
            )),
            8.0,
        );
        let on = Nginx::efficiency(&ng.knobs(&ng.default_config()), 8.0);
        assert!(on > off * 1.2);
    }

    #[test]
    fn too_few_connections_collapse() {
        let ng = Nginx::new();
        let tiny = set(
            &ng,
            set(&ng, ng.default_config(), "worker_connections", V::Int(64)),
            "worker_processes",
            V::Int(1),
        );
        let e_tiny = Nginx::efficiency(&ng.knobs(&tiny), 8.0);
        let e_def = Nginx::efficiency(&ng.knobs(&ng.default_config()), 8.0);
        assert!(e_tiny < e_def * 0.25, "tiny {e_tiny} default {e_def}");
    }

    #[test]
    fn thin_headroom_configs_spike_sometimes() {
        let ng = Nginx::new();
        let w = tuna_workloads::wikipedia();
        // 1 worker x 640 connections = 1.07x headroom: the knife's edge.
        let thin = set(
            &ng,
            set(&ng, tuned(&ng), "worker_connections", V::Int(640)),
            "worker_processes",
            V::Int(1),
        );
        let mut rng = Rng::seed_from(5);
        let mut cl = cluster(6);
        let vals: Vec<f64> = (0..400)
            .map(|i| ng.run(&thin, &w, cl.machine_mut(i % 10), &mut rng).value)
            .collect();
        let rr = summary::relative_range(&vals);
        assert!(rr > 0.5, "no spikes observed, rr {rr}");

        // Plenty of headroom: no spikes.
        let safe = tuned(&ng);
        let vals_safe: Vec<f64> = (0..400)
            .map(|i| ng.run(&safe, &w, cl.machine_mut(i % 10), &mut rng).value)
            .collect();
        assert!(summary::relative_range(&vals_safe) < 0.4);
    }

    #[test]
    fn gzip_sweet_spot_beats_max_compression() {
        let ng = Nginx::new();
        let base = set(&ng, ng.default_config(), "gzip", V::Bool(true));
        let mid = Nginx::efficiency(
            &ng.knobs(&set(&ng, base.clone(), "gzip_comp_level", V::Int(4))),
            8.0,
        );
        let max = Nginx::efficiency(
            &ng.knobs(&set(&ng, base, "gzip_comp_level", V::Int(9))),
            8.0,
        );
        assert!(mid > max);
    }

    #[test]
    fn sampled_configs_run_without_panic() {
        let ng = Nginx::new();
        let w = tuna_workloads::wikipedia();
        let mut rng = Rng::seed_from(7);
        let mut cl = cluster(8);
        for i in 0..200 {
            let cfg = ng.space().sample(&mut rng);
            let out = ng.run(&cfg, &w, cl.machine_mut(i % 10), &mut rng);
            assert!(out.value.is_finite() && out.value > 0.0);
            assert!(!out.crashed);
        }
    }
}
