//! PostgreSQL 16-style performance model.
//!
//! Eighteen knobs spanning memory sizing, WAL/checkpoint behaviour, planner
//! cost constants and the `enable_*` planner switches the paper implicates
//! in unstable configurations (§3.2.1).
//!
//! The model composes three pieces:
//!
//! 1. **Service demands** — per-component utilizations derived from the
//!    workload's base demand and the knobs (buffer hit ratio removes random
//!    read IO, WAL tuning shrinks sequential write IO, undersized
//!    `work_mem` spills sorts to CPU + disk, ...). Throughput follows a
//!    serial-demand bottleneck law `1 / Σ_c D_c / speed_c`.
//! 2. **Efficiency multipliers** — planner cost constants and `enable_*`
//!    switches move a few percent each; the interesting one is
//!    `random_page_cost`, whose *stable* optimum sits just above the
//!    planner tie — the bait that lures single-node tuners into the
//!    unstable zone.
//! 3. **The planner flip** (see [`crate::planner`]) — the unstable-config
//!    mechanism.

use crate::planner::{self, PlanChoice};
use crate::{RunOutcome, SystemUnderTest};
use tuna_cloudsim::components::ComponentVec;
use tuna_cloudsim::machine::Machine;
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::{hash64, u64_to_unit_f64, Rng};
use tuna_workloads::{MetricKind, TargetSystem, Workload};

/// Exponent of the serial-demand law; >1 sharpens the config response (and
/// correspondingly amplifies how much component noise reaches the metric,
/// keeping measured CoVs in the paper's observed range).
const DEMAND_EXPONENT: f64 = 1.6;

/// Sequential IO (WAL) degrades much less than random IO on slow disks:
/// effective sequential scale is `disk_scale^SEQ_IO_EXPONENT`.
const SEQ_IO_EXPONENT: f64 = 0.3;

/// Typed view of a PostgreSQL configuration.
#[derive(Debug, Clone, Copy)]
pub struct PgKnobs {
    /// `shared_buffers` in MB.
    pub shared_buffers_mb: f64,
    /// `work_mem` in MB.
    pub work_mem_mb: f64,
    /// `effective_cache_size` in MB.
    pub effective_cache_size_mb: f64,
    /// `wal_buffers` in MB.
    pub wal_buffers_mb: f64,
    /// `max_wal_size` in MB.
    pub max_wal_size_mb: f64,
    /// `checkpoint_completion_target`.
    pub checkpoint_completion_target: f64,
    /// `random_page_cost`.
    pub random_page_cost: f64,
    /// `seq_page_cost`.
    pub seq_page_cost: f64,
    /// `effective_io_concurrency`.
    pub effective_io_concurrency: f64,
    /// `max_connections`.
    pub max_connections: f64,
    /// `bgwriter_delay` in ms.
    pub bgwriter_delay_ms: f64,
    /// `default_statistics_target`.
    pub default_statistics_target: f64,
    /// `jit`.
    pub jit: bool,
    /// `enable_bitmapscan`.
    pub enable_bitmapscan: bool,
    /// `enable_hashjoin`.
    pub enable_hashjoin: bool,
    /// `enable_indexscan`.
    pub enable_indexscan: bool,
    /// `enable_nestloop`.
    pub enable_nestloop: bool,
    /// `enable_mergejoin`.
    pub enable_mergejoin: bool,
}

/// The PostgreSQL system-under-test.
#[derive(Debug, Clone)]
pub struct Postgres {
    space: ConfigSpace,
}

impl Default for Postgres {
    fn default() -> Self {
        Self::new()
    }
}

impl Postgres {
    /// Creates the SuT with its 18-knob space.
    pub fn new() -> Self {
        let space = ConfigSpace::builder()
            .int_log("shared_buffers_mb", 16, 24_576)
            .int_log("work_mem_mb", 1, 1_024)
            .int_log("effective_cache_size_mb", 64, 32_768)
            .int_log("wal_buffers_mb", 1, 256)
            .int_log("max_wal_size_mb", 256, 16_384)
            .float("checkpoint_completion_target", 0.1, 0.95)
            .float("random_page_cost", 1.0, 8.0)
            .float("seq_page_cost", 0.1, 2.0)
            .int_log("effective_io_concurrency", 1, 256)
            .int("max_connections", 10, 500)
            .int_log("bgwriter_delay_ms", 10, 1_000)
            .int_log("default_statistics_target", 10, 1_000)
            .boolean("jit")
            .boolean("enable_bitmapscan")
            .boolean("enable_hashjoin")
            .boolean("enable_indexscan")
            .boolean("enable_nestloop")
            .boolean("enable_mergejoin")
            .build();
        Postgres { space }
    }

    /// Decodes a configuration into typed knobs.
    ///
    /// # Panics
    ///
    /// Panics if the config does not fit the space.
    pub fn knobs(&self, config: &Config) -> PgKnobs {
        let s = &self.space;
        PgKnobs {
            shared_buffers_mb: s.value_of(config, "shared_buffers_mb").as_int() as f64,
            work_mem_mb: s.value_of(config, "work_mem_mb").as_int() as f64,
            effective_cache_size_mb: s.value_of(config, "effective_cache_size_mb").as_int() as f64,
            wal_buffers_mb: s.value_of(config, "wal_buffers_mb").as_int() as f64,
            max_wal_size_mb: s.value_of(config, "max_wal_size_mb").as_int() as f64,
            checkpoint_completion_target: s
                .value_of(config, "checkpoint_completion_target")
                .as_float(),
            random_page_cost: s.value_of(config, "random_page_cost").as_float(),
            seq_page_cost: s.value_of(config, "seq_page_cost").as_float(),
            effective_io_concurrency: s.value_of(config, "effective_io_concurrency").as_int()
                as f64,
            max_connections: s.value_of(config, "max_connections").as_int() as f64,
            bgwriter_delay_ms: s.value_of(config, "bgwriter_delay_ms").as_int() as f64,
            default_statistics_target: s.value_of(config, "default_statistics_target").as_int()
                as f64,
            jit: s.value_of(config, "jit").as_bool(),
            enable_bitmapscan: s.value_of(config, "enable_bitmapscan").as_bool(),
            enable_hashjoin: s.value_of(config, "enable_hashjoin").as_bool(),
            enable_indexscan: s.value_of(config, "enable_indexscan").as_bool(),
            enable_nestloop: s.value_of(config, "enable_nestloop").as_bool(),
            enable_mergejoin: s.value_of(config, "enable_mergejoin").as_bool(),
        }
    }

    /// Buffer-cache hit ratio for a workload on a machine with
    /// `memory_mb` of guest RAM.
    fn hit_ratio(knobs: &PgKnobs, workload: &Workload, memory_mb: f64) -> f64 {
        let sb = knobs.shared_buffers_mb.min(memory_mb * 0.45);
        let ecs = knobs.effective_cache_size_mb.min(memory_mb * 0.5);
        let cache_mb = sb + 0.3 * ecs;
        let hot_set = workload.working_set_mb * 0.25;
        cache_mb / (cache_mb + hot_set)
    }

    /// WAL write efficiency (1.0 at defaults; smaller = fewer disk
    /// seconds per transaction).
    fn wal_efficiency(knobs: &PgKnobs) -> f64 {
        let wal_gain = (knobs.max_wal_size_mb / 1_024.0).max(0.25).log2() * 0.25
            + (knobs.checkpoint_completion_target - 0.5) * 0.3
            + (knobs.wal_buffers_mb / 16.0).max(0.25).log2() * 0.08;
        0.5 + 0.5 / (1.0 + wal_gain.max(-0.8))
    }

    /// Per-component service demands (plus the sequential-IO share of the
    /// disk demand, which scales differently on slow disks).
    fn demands(knobs: &PgKnobs, workload: &Workload, memory_mb: f64) -> (ComponentVec, f64) {
        let olap = matches!(workload.metric, MetricKind::RuntimeSeconds { .. });
        let h = Self::hit_ratio(knobs, workload, memory_mb);
        let sort_need_mb = workload.working_set_mb * 0.01;
        let spill = sort_need_mb / (sort_need_mb + knobs.work_mem_mb);
        let read_ratio = workload.read_ratio;

        // Random-read residual after caching, improved by IO concurrency.
        let read_resid = ((1.0 - h).powf(1.3) + 0.012)
            * (1.0 - 0.12 * knobs.effective_io_concurrency.max(1.0).log2() / 8.0);
        let wal = Self::wal_efficiency(knobs);
        let rand_io =
            workload.demand.disk * (read_ratio * read_resid) + workload.demand.disk * 0.15 * spill;
        let seq_io = workload.demand.disk * (1.0 - read_ratio) * wal;

        // CPU: jit helps analytics, costs a little on OLTP; sort spills
        // burn CPU; connection thrash beyond ~150 costs on 8 vCPUs.
        let jit_factor = match (olap, knobs.jit) {
            (true, true) => 0.82,
            (true, false) => 1.0,
            (false, true) => 1.02,
            (false, false) => 1.0,
        };
        let conn_thrash = 1.0 + ((knobs.max_connections - 150.0).max(0.0) / 350.0) * 0.25;
        let cpu =
            workload.demand.cpu * jit_factor * conn_thrash + workload.demand.cpu * 0.2 * spill;

        // Memory traffic shrinks as the buffer pool absorbs page copies.
        let memory = workload.demand.memory * (0.5 + 0.5 * (1.0 - h));

        let cache = workload.demand.cache;

        // OS: background writer wakeups and per-connection overhead.
        let os_factor = 1.0
            + 0.05 * (200.0 / knobs.bgwriter_delay_ms.max(10.0)).ln().max(0.0)
            + 0.1 * (knobs.max_connections / 500.0);
        let os = workload.demand.os * os_factor;

        (
            ComponentVec::new(cpu, rand_io + seq_io, memory, cache, os),
            seq_io,
        )
    }

    /// Planner cost margin `ln(est_bad / est_good)` for the sensitive JOIN
    /// (positive = good plan estimated cheaper). Only valid when both
    /// plans are structurally available (see [`Self::forced_plan`]).
    ///
    /// The margin has a smooth part (cost constants, work_mem, statistics
    /// accuracy) plus a *per-config idiosyncratic* part: §3.2.1 found that
    /// "the exact combinations [of knobs] are inconsistent across configs",
    /// i.e. instability is not a smooth function of the knobs — which is
    /// precisely why a surrogate model cannot learn to avoid the unstable
    /// region and single-node tuning keeps promoting such configs.
    fn plan_margin(knobs: &PgKnobs, config_id: tuna_space::ConfigId) -> f64 {
        // Good plan: hash join over scans; bad plan: mis-estimated nested
        // loop over index probes (the classic row-underestimation trap).
        let est_good = knobs.seq_page_cost * 2.6 + 1.2 / (1.0 + knobs.work_mem_mb / 64.0);
        let est_bad = knobs.random_page_cost * 1.9;
        // Better statistics widen the (correct) separation.
        let stats_accuracy = 0.7 + 0.3 * (knobs.default_statistics_target.log10() / 3.0);
        let idio = (u64_to_unit_f64(hash64(config_id.0 ^ 0x9A7E_11F5)) - 0.5) * 0.8;
        (est_bad / est_good).ln() * stats_accuracy + idio
    }

    /// Structural plan availability from the `enable_*` switches.
    fn forced_plan(knobs: &PgKnobs) -> Option<PlanChoice> {
        let good_available = knobs.enable_hashjoin || knobs.enable_mergejoin;
        let bad_available = knobs.enable_indexscan && knobs.enable_nestloop;
        match (good_available, bad_available) {
            (true, true) => None,
            (true, false) => Some(PlanChoice::Good),
            (false, _) => Some(PlanChoice::Bad),
        }
    }

    /// Efficiency multipliers outside the demand model.
    fn multiplier(knobs: &PgKnobs, workload: &Workload, memory_mb: f64, olap: bool) -> f64 {
        // Lower random_page_cost nudges the planner toward index scans on
        // the *other* queries, a genuine OLTP win — and the bait that pulls
        // tuners toward the unstable planner-tie region.
        let rpc_gain = if olap {
            1.0 + (0.05 * (1.0 - knobs.random_page_cost / 4.0)).clamp(-0.05, 0.04)
        } else {
            1.0 + (0.12 * (1.0 - knobs.random_page_cost / 4.0)).clamp(-0.06, 0.09)
        };

        // Buffer hits shorten the CPU path (no buffer-manager misses).
        let h = Self::hit_ratio(knobs, workload, memory_mb);
        let h_default = Self::hit_ratio(&PgKnobs::defaults(), workload, memory_mb);
        let buf_cpu = 1.0 + 0.5 * (h - h_default);

        // Moderate connection pools beat the 100-connection default on
        // 8 vCPUs.
        let conn = 1.0 + (0.06 * (1.0 - knobs.max_connections / 100.0)).clamp(-0.12, 0.055);

        // Scan/join switches: small penalties for disabling generally
        // useful operators (the planner loses options elsewhere).
        let mut enables = 1.0;
        if !knobs.enable_bitmapscan {
            enables *= if olap { 0.95 } else { 0.98 };
        }
        if !knobs.enable_indexscan {
            enables *= if olap { 0.93 } else { 0.85 };
        }
        if !knobs.enable_nestloop {
            // Point joins everywhere else in the mix degrade to hash/merge
            // plans: a real cost, which is why DBAs rarely flip this knob
            // globally even though it would disarm the unstable JOIN.
            enables *= if olap { 0.96 } else { 0.92 };
        }
        if !knobs.enable_hashjoin {
            enables *= if olap { 0.90 } else { 0.995 };
        }
        if !knobs.enable_mergejoin {
            enables *= 0.995;
        }

        // Statistics target: slightly better plans for analytics, slight
        // planning overhead for short OLTP statements.
        let stats = if olap {
            1.0 + 0.02 * (knobs.default_statistics_target / 100.0).log10()
        } else {
            1.0 - 0.01 * (knobs.default_statistics_target / 100.0).log10().max(0.0)
        };

        rpc_gain * buf_cpu * conn * enables * stats
    }

    /// Memory overcommit penalty (swap thrash).
    fn swap_penalty(knobs: &PgKnobs, workload: &Workload, memory_mb: f64) -> f64 {
        let olap = matches!(workload.metric, MetricKind::RuntimeSeconds { .. });
        let concurrency = if olap {
            6.0
        } else {
            knobs.max_connections * 0.2
        };
        let used = knobs.shared_buffers_mb + knobs.work_mem_mb * concurrency + 300.0;
        let budget = memory_mb * 0.9;
        if used <= budget {
            1.0
        } else {
            1.0 + 4.0 * (used / budget - 1.0)
        }
    }

    /// Noise-free relative performance (speeds = 1) — used by tests and
    /// the oracle in the noise-adjuster evaluation.
    pub fn noiseless_rel(&self, config: &Config, workload: &Workload, memory_mb: f64) -> f64 {
        let knobs = self.knobs(config);
        let olap = matches!(workload.metric, MetricKind::RuntimeSeconds { .. });
        let (d, _) = Self::demands(&knobs, workload, memory_mb);
        let (d0, _) = Self::demands(&PgKnobs::defaults(), workload, memory_mb);
        let ratio = d0.sum() / d.sum().max(1e-9);
        let raw = ratio.powf(DEMAND_EXPONENT) * Self::multiplier(&knobs, workload, memory_mb, olap)
            / Self::swap_penalty(&knobs, workload, memory_mb);
        1.0 + (raw - 1.0) * workload.tuning_headroom
    }
}

impl PgKnobs {
    /// PostgreSQL's vendor defaults (with `effective_cache_size` at the
    /// common 4 GB provisioning default).
    pub fn defaults() -> PgKnobs {
        PgKnobs {
            shared_buffers_mb: 128.0,
            work_mem_mb: 4.0,
            effective_cache_size_mb: 4_096.0,
            wal_buffers_mb: 16.0,
            max_wal_size_mb: 1_024.0,
            checkpoint_completion_target: 0.9,
            random_page_cost: 4.0,
            seq_page_cost: 1.0,
            effective_io_concurrency: 1.0,
            max_connections: 100.0,
            bgwriter_delay_ms: 200.0,
            default_statistics_target: 100.0,
            jit: true,
            enable_bitmapscan: true,
            enable_hashjoin: true,
            enable_indexscan: true,
            enable_nestloop: true,
            enable_mergejoin: true,
        }
    }
}

impl SystemUnderTest for Postgres {
    fn name(&self) -> &'static str {
        "postgresql"
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn default_config(&self) -> Config {
        use tuna_space::ParamValue as V;
        Config::new(vec![
            V::Int(128),   // shared_buffers_mb
            V::Int(4),     // work_mem_mb
            V::Int(4096),  // effective_cache_size_mb
            V::Int(16),    // wal_buffers_mb
            V::Int(1024),  // max_wal_size_mb
            V::Float(0.9), // checkpoint_completion_target
            V::Float(4.0), // random_page_cost
            V::Float(1.0), // seq_page_cost
            V::Int(1),     // effective_io_concurrency
            V::Int(100),   // max_connections
            V::Int(200),   // bgwriter_delay_ms
            V::Int(100),   // default_statistics_target
            V::Bool(true), // jit
            V::Bool(true), // enable_bitmapscan
            V::Bool(true), // enable_hashjoin
            V::Bool(true), // enable_indexscan
            V::Bool(true), // enable_nestloop
            V::Bool(true), // enable_mergejoin
        ])
    }

    fn supports(&self, workload: &Workload) -> bool {
        workload.target == TargetSystem::Postgres
    }

    fn run(
        &self,
        config: &Config,
        workload: &Workload,
        machine: &mut Machine,
        rng: &mut Rng,
    ) -> RunOutcome {
        let knobs = self.knobs(config);
        let olap = matches!(workload.metric, MetricKind::RuntimeSeconds { .. });
        let memory_mb = machine.sku().memory_gb * 1_024.0;
        let scale = machine.sku().component_scale;

        let (d, seq_io) = Self::demands(&knobs, workload, memory_mb);
        let (d0, seq_io0) = Self::demands(&PgKnobs::defaults(), workload, memory_mb);

        // Observe the machine under this config's utilization profile.
        let util = d.map(|x| x.clamp(0.0, 1.0));
        let snap = machine.observe(&util);

        // Serial-demand composition with per-component absolute scales;
        // sequential IO (WAL) sees a milder slow-disk penalty.
        let seq_scale = scale.disk.powf(SEQ_IO_EXPONENT);
        let sum = |dv: &ComponentVec, seq: f64, speeds: &ComponentVec| {
            let rand_io = dv.disk - seq;
            dv.cpu / (speeds.cpu * scale.cpu)
                + rand_io / (speeds.disk * scale.disk)
                + seq / (speeds.disk * seq_scale)
                + dv.memory / (speeds.memory * scale.memory)
                + dv.cache / (speeds.cache * scale.cache)
                + dv.os / (speeds.os * scale.os)
        };
        // The norm anchors rel = 1 at the default config on a *nominal
        // Azure* machine (unit speeds, unit scales), so cross-SKU absolute
        // differences flow through the scales.
        let norm = d0.sum();
        let _ = seq_io0;
        let total = sum(&d, seq_io, &snap.speeds);
        let ratio = norm / total.max(1e-9);

        let raw = ratio.powf(DEMAND_EXPONENT) * Self::multiplier(&knobs, workload, memory_mb, olap)
            / Self::swap_penalty(&knobs, workload, memory_mb);
        let mut rel = 1.0 + (raw - 1.0) * workload.tuning_headroom;

        // Planner flip on the sensitive JOIN.
        if workload.join_fraction > 0.0 {
            let choice = match Self::forced_plan(&knobs) {
                Some(c) => c,
                None => planner::decide(
                    Self::plan_margin(&knobs, config.id()),
                    0.5 * workload.plan_sensitivity,
                    machine,
                    config.id(),
                    rng,
                ),
            };
            if choice == PlanChoice::Bad {
                rel *= planner::bad_plan_factor(workload.join_fraction, workload.bad_plan_slowdown);
            }
        }
        rel = rel.max(1e-3);

        let value = match workload.metric {
            MetricKind::ThroughputTps { nominal } => nominal * rel,
            MetricKind::RuntimeSeconds { nominal } => nominal / rel,
            MetricKind::P95LatencyMs { nominal } => nominal / rel,
        };

        let metrics = tuna_metrics::generate(&snap, &util, rel, rng);
        RunOutcome {
            value,
            crashed: false,
            metrics,
            snapshot: snap,
            relative_perf: rel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Cluster, Region, VmSku};
    use tuna_space::ParamValue as V;
    use tuna_stats::summary;

    fn azure_cluster(seed: u64) -> Cluster {
        Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), seed)
    }

    /// A well-tuned, *stable* configuration (random_page_cost above the
    /// planner tie, nestloop fix not needed).
    fn good_config(pg: &Postgres) -> Config {
        let mut c = pg.default_config();
        let set = |c: Config, name: &str, v: V| -> Config {
            c.with(pg.space().index_of(name).unwrap(), v)
        };
        c = set(c, "shared_buffers_mb", V::Int(24_576));
        c = set(c, "work_mem_mb", V::Int(256));
        c = set(c, "effective_cache_size_mb", V::Int(24_576));
        c = set(c, "wal_buffers_mb", V::Int(128));
        c = set(c, "max_wal_size_mb", V::Int(8_192));
        c = set(c, "effective_io_concurrency", V::Int(128));
        c = set(c, "max_connections", V::Int(50));
        c = set(c, "random_page_cost", V::Float(3.8));
        c = set(c, "jit", V::Bool(false));
        c
    }

    /// A near-tie configuration: good knobs but random_page_cost in the
    /// unstable planner zone.
    fn risky_config(pg: &Postgres) -> Config {
        let c = good_config(pg);
        c.with(
            pg.space().index_of("random_page_cost").unwrap(),
            V::Float(2.7),
        )
    }

    #[test]
    fn default_config_validates_and_matches_knob_defaults() {
        let pg = Postgres::new();
        let cfg = pg.default_config();
        assert!(pg.space().validate(&cfg).is_ok());
        let k = pg.knobs(&cfg);
        let d = PgKnobs::defaults();
        assert_eq!(k.shared_buffers_mb, d.shared_buffers_mb);
        assert_eq!(k.random_page_cost, d.random_page_cost);
        assert_eq!(k.jit, d.jit);
    }

    #[test]
    fn default_tpcc_throughput_near_nominal() {
        let pg = Postgres::new();
        let mut cluster = azure_cluster(3);
        let mut rng = Rng::seed_from(1);
        let mut vals = Vec::new();
        for i in 0..10 {
            let out = pg.run(
                &pg.default_config(),
                &tuna_workloads::tpcc(),
                cluster.machine_mut(i),
                &mut rng,
            );
            vals.push(out.value);
        }
        let mean = summary::mean(&vals);
        assert!((mean - 848.0).abs() < 120.0, "default TPS {mean}");
    }

    #[test]
    fn tuned_config_roughly_doubles_tpcc() {
        let pg = Postgres::new();
        let rel = pg.noiseless_rel(&good_config(&pg), &tuna_workloads::tpcc(), 32.0 * 1024.0);
        assert!((1.7..=3.0).contains(&rel), "tuned rel {rel}");
    }

    #[test]
    fn default_is_unit_rel() {
        let pg = Postgres::new();
        for w in [
            tuna_workloads::tpcc(),
            tuna_workloads::epinions(),
            tuna_workloads::tpch(),
            tuna_workloads::mssales(),
        ] {
            let rel = pg.noiseless_rel(&pg.default_config(), &w, 32.0 * 1024.0);
            assert!((rel - 1.0).abs() < 1e-9, "{}: default rel {rel}", w.name);
        }
    }

    #[test]
    fn epinions_has_less_headroom_than_mssales() {
        let pg = Postgres::new();
        let cfg = good_config(&pg);
        let epi = pg.noiseless_rel(&cfg, &tuna_workloads::epinions(), 32.0 * 1024.0);
        let ms = pg.noiseless_rel(&cfg, &tuna_workloads::mssales(), 32.0 * 1024.0);
        assert!(epi < 1.4, "epinions rel {epi}");
        assert!(ms > 1.7, "mssales rel {ms}");
    }

    #[test]
    fn cloudlab_amplifies_tuning_gains() {
        // Figure 13: the default config wastes the big-memory bare-metal
        // box (random IO on a slow local disk); tuning yields an
        // order-of-magnitude improvement and ~3x the Azure throughput.
        let pg = Postgres::new();
        let mut cluster = Cluster::new(10, VmSku::c220g5(), Region::cloudlab(), 7);
        let mut rng = Rng::seed_from(2);
        let tpcc = tuna_workloads::tpcc();
        let mut default_vals = Vec::new();
        let mut tuned_vals = Vec::new();
        for i in 0..10 {
            default_vals.push(
                pg.run(
                    &pg.default_config(),
                    &tpcc,
                    cluster.machine_mut(i),
                    &mut rng,
                )
                .value,
            );
            tuned_vals.push(
                pg.run(&good_config(&pg), &tpcc, cluster.machine_mut(i), &mut rng)
                    .value,
            );
        }
        let d = summary::mean(&default_vals);
        let t = summary::mean(&tuned_vals);
        let improvement = t / d;
        assert!(
            (8.0..40.0).contains(&improvement),
            "improvement {improvement} (default {d}, tuned {t})"
        );
        assert!(t > 2_000.0, "tuned bare-metal TPS {t}");
    }

    #[test]
    fn near_tie_zone_contains_unstable_configs() {
        // §3.2.1: instability is idiosyncratic ("exact combinations are
        // inconsistent across configs"), so scan the random_page_cost axis
        // near the planner tie: a healthy share of those configs must show
        // a wide relative range across a 10-node cluster, while the
        // well-tuned config (rpc above the tie) stays tight.
        let pg = Postgres::new();
        let tpcc = tuna_workloads::tpcc();
        let mut rng = Rng::seed_from(5);
        let rpc_idx = pg.space().index_of("random_page_cost").unwrap();
        let mut unstable_candidates = 0;
        let mut candidates = 0;
        for tenths in 10..28 {
            let rpc = tenths as f64 / 10.0;
            let cfg = good_config(&pg).with(rpc_idx, V::Float(rpc));
            let mut rrs = Vec::new();
            for seed in 0..4 {
                let mut cluster = azure_cluster(100 + seed);
                let vals: Vec<f64> = (0..10)
                    .map(|i| pg.run(&cfg, &tpcc, cluster.machine_mut(i), &mut rng).value)
                    .collect();
                rrs.push(summary::relative_range(&vals));
            }
            candidates += 1;
            if summary::mean(&rrs) > 0.30 {
                unstable_candidates += 1;
            }
        }
        assert!(
            unstable_candidates * 4 >= candidates,
            "only {unstable_candidates}/{candidates} near-tie configs unstable"
        );

        // The reference tuned config stays stable.
        let mut good_rr = Vec::new();
        for seed in 0..8 {
            let mut cluster = azure_cluster(200 + seed);
            let vals: Vec<f64> = (0..10)
                .map(|i| {
                    pg.run(&good_config(&pg), &tpcc, cluster.machine_mut(i), &mut rng)
                        .value
                })
                .collect();
            good_rr.push(summary::relative_range(&vals));
        }
        let good_mean = summary::mean(&good_rr);
        assert!(good_mean < 0.30, "stable relative range {good_mean}");
    }

    #[test]
    fn nestloop_off_disarms_instability() {
        // Disabling the bad plan's operator makes the risky config stable.
        let pg = Postgres::new();
        let tpcc = tuna_workloads::tpcc();
        let fixed = risky_config(&pg).with(
            pg.space().index_of("enable_nestloop").unwrap(),
            V::Bool(false),
        );
        let mut rng = Rng::seed_from(6);
        let mut vals = Vec::new();
        let mut cluster = azure_cluster(11);
        for i in 0..10 {
            vals.push(
                pg.run(&fixed, &tpcc, cluster.machine_mut(i), &mut rng)
                    .value,
            );
        }
        assert!(
            summary::relative_range(&vals) < 0.30,
            "fixed config still unstable: {:?}",
            vals
        );
    }

    #[test]
    fn disabling_good_plan_operators_is_consistently_slow() {
        let pg = Postgres::new();
        let tpcc = tuna_workloads::tpcc();
        let broken = pg
            .default_config()
            .with(
                pg.space().index_of("enable_hashjoin").unwrap(),
                V::Bool(false),
            )
            .with(
                pg.space().index_of("enable_mergejoin").unwrap(),
                V::Bool(false),
            );
        let mut rng = Rng::seed_from(7);
        let mut cluster = azure_cluster(12);
        let mut vals = Vec::new();
        for i in 0..10 {
            vals.push(
                pg.run(&broken, &tpcc, cluster.machine_mut(i), &mut rng)
                    .value,
            );
        }
        // Forced bad plan: well below default, but *stable*.
        assert!(
            summary::mean(&vals) < 620.0,
            "mean {}",
            summary::mean(&vals)
        );
        assert!(summary::relative_range(&vals) < 0.30);
    }

    #[test]
    fn memory_overcommit_collapses() {
        let pg = Postgres::new();
        let bad = pg
            .default_config()
            .with(
                pg.space().index_of("shared_buffers_mb").unwrap(),
                V::Int(24_576),
            )
            .with(pg.space().index_of("work_mem_mb").unwrap(), V::Int(1_024))
            .with(pg.space().index_of("max_connections").unwrap(), V::Int(300));
        let rel = pg.noiseless_rel(&bad, &tuna_workloads::tpcc(), 32.0 * 1024.0);
        assert!(rel < 0.5, "overcommitted rel {rel}");
    }

    #[test]
    fn olap_runtime_improves_with_tuning() {
        let pg = Postgres::new();
        let mut cluster = azure_cluster(21);
        let mut rng = Rng::seed_from(9);
        let tpch = tuna_workloads::tpch();
        let default_rt = pg
            .run(
                &pg.default_config(),
                &tpch,
                cluster.machine_mut(0),
                &mut rng,
            )
            .value;
        let tuned_rt = pg
            .run(&good_config(&pg), &tpch, cluster.machine_mut(1), &mut rng)
            .value;
        assert!(
            default_rt > 100.0 && default_rt < 130.0,
            "default {default_rt}"
        );
        assert!(tuned_rt < default_rt * 0.75, "tuned {tuned_rt}");
    }

    #[test]
    fn measurement_noise_in_paper_range() {
        // Repeated default-config runs on one machine: CoV must be a few
        // percent (the paper's PostgreSQL microbenchmark ceiling is 7.23%).
        let pg = Postgres::new();
        let mut cluster = azure_cluster(31);
        let mut rng = Rng::seed_from(10);
        let tpcc = tuna_workloads::tpcc();
        let vals: Vec<f64> = (0..300)
            .map(|_| {
                pg.run(
                    &pg.default_config(),
                    &tpcc,
                    cluster.machine_mut(0),
                    &mut rng,
                )
                .value
            })
            .collect();
        let cov = summary::coefficient_of_variation(&vals);
        assert!((0.005..0.0723).contains(&cov), "CoV {cov}");
    }

    #[test]
    fn sampled_configs_run_without_panic() {
        let pg = Postgres::new();
        let mut cluster = azure_cluster(41);
        let mut rng = Rng::seed_from(11);
        for w in [
            tuna_workloads::tpcc(),
            tuna_workloads::epinions(),
            tuna_workloads::tpch(),
            tuna_workloads::mssales(),
        ] {
            for i in 0..40 {
                let cfg = pg.space().sample(&mut rng);
                let out = pg.run(&cfg, &w, cluster.machine_mut(i % 10), &mut rng);
                assert!(out.value.is_finite() && out.value > 0.0);
                assert!(!out.crashed);
            }
        }
    }
}
