//! A hand-rolled, hardened subset of HTTP/1.1 — the daemon's wire
//! framing.
//!
//! The workspace builds fully offline, so the daemon speaks a minimal
//! dialect instead of pulling in a server stack: JSON bodies,
//! `Content-Length` framing only, HTTP/1.1 keep-alive and pipelining.
//! What the parser lacks in generality it makes up in paranoia — every
//! limit is explicit and every malformed or truncated input comes back
//! as a typed [`HttpError`] (which the daemon turns into a structured
//! JSON error response), never a panic:
//!
//! - request line and each header line are capped at
//!   [`MAX_LINE_BYTES`]; total header count at [`MAX_HEADERS`];
//! - bodies are capped at [`MAX_BODY_BYTES`] and must match their
//!   `Content-Length` exactly — a peer that closes mid-frame gets a
//!   truncation error, not a hang or a partial parse;
//! - `Transfer-Encoding: chunked` is rejected up front rather than
//!   mis-framed.
//!
//! The parser is *sans-IO*: [`RequestParser`] consumes whatever bytes
//! the transport produced and yields zero or more complete requests, so
//! the non-blocking daemon event loop, the deterministic loopback
//! simulator and the fuzz tests all drive the exact same byte-level
//! code path — a socket is just one more byte source.

use std::io::Write;

/// Longest accepted request/header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request target, e.g. `/v1/studies/demo/results`.
    pub path: String,
    /// Decoded body (empty when the request has none).
    pub body: String,
    /// Whether the peer asked to close the connection after this
    /// request (`Connection: close`, or an HTTP/1.0 request without
    /// `keep-alive`). HTTP/1.1 defaults to keep-alive.
    pub close: bool,
    /// The bearer token presented via `authorization: Bearer <token>`
    /// (`None` when absent or not a bearer scheme — the tenant registry
    /// decides whether that is a 401).
    pub bearer: Option<String>,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed framing or a violated limit; the message is safe to
    /// echo back to the client.
    BadRequest(String),
    /// Body longer than [`MAX_BODY_BYTES`].
    PayloadTooLarge(String),
    /// The peer closed the connection before sending a full request.
    Truncated(String),
    /// The peer stalled mid-request past its time budget.
    Timeout(String),
    /// Transport error underneath the parser.
    Io(String),
}

impl HttpError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::Truncated(_) => 400,
            HttpError::Timeout(_) => 408,
            HttpError::Io(_) => 400,
        }
    }

    /// The error detail.
    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m)
            | HttpError::PayloadTooLarge(m)
            | HttpError::Truncated(m)
            | HttpError::Timeout(m)
            | HttpError::Io(m) => m,
        }
    }
}

/// The head of a request whose body is still streaming in.
#[derive(Debug, Clone)]
struct Head {
    method: String,
    path: String,
    content_length: usize,
    close: bool,
    bearer: Option<String>,
}

/// Incremental request parser: feed it transport bytes as they arrive,
/// pull complete requests out. One parser per connection; pipelined
/// requests simply queue up in the buffer and come out one
/// [`RequestParser::next_request`] at a time.
///
/// After the first error the parser is dead — framing is unrecoverable
/// once a frame boundary is lost, so the connection must answer the
/// error and close (exactly what the engine does).
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    head: Option<Head>,
    dead: bool,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Appends transport bytes. Ignored once the parser is dead.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.dead {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Whether a request is partially buffered (the connection is
    /// mid-frame, so an EOF or a deadline here is an error, not an
    /// idle close).
    pub fn mid_request(&self) -> bool {
        !self.dead && (self.head.is_some() || !self.buf.is_empty())
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pulls the next complete request out of the buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] on any framing violation: malformed
    /// request line or header, missing/overlong/duplicated
    /// `Content-Length`, chunked encoding, or a violated size limit.
    /// The error is fatal: every later call returns `Ok(None)`.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if self.dead {
            return Ok(None);
        }
        if self.head.is_none() {
            match self.parse_head() {
                Ok(Some(head)) => self.head = Some(head),
                Ok(None) => return Ok(None),
                Err(e) => {
                    self.dead = true;
                    return Err(e);
                }
            }
        }
        let head = self.head.as_ref().expect("head parsed above");
        if self.buf.len() < head.content_length {
            return Ok(None);
        }
        let head = self.head.take().expect("present");
        let body_bytes: Vec<u8> = self.buf.drain(..head.content_length).collect();
        let body = match String::from_utf8(body_bytes) {
            Ok(b) => b,
            Err(_) => {
                self.dead = true;
                return Err(HttpError::BadRequest("body is not UTF-8".into()));
            }
        };
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            body,
            close: head.close,
            bearer: head.bearer,
        }))
    }

    /// The error (if any) that an EOF at this point in the stream
    /// represents: `None` between requests (a clean close), a
    /// [`HttpError::Truncated`] mid-head or mid-body.
    pub fn eof_error(&self) -> Option<HttpError> {
        if self.dead {
            return None;
        }
        if let Some(head) = &self.head {
            return Some(HttpError::Truncated(format!(
                "body truncated at {} of {} bytes",
                self.buf.len(),
                head.content_length
            )));
        }
        if !self.buf.is_empty() {
            return Some(HttpError::Truncated("connection closed mid-line".into()));
        }
        None
    }

    /// Parses the head (request line + headers) if the buffer holds all
    /// of it. On success the head bytes are consumed from the buffer.
    fn parse_head(&mut self) -> Result<Option<Head>, HttpError> {
        // Walk complete lines; the head ends at the first empty line.
        let mut lines: Vec<String> = Vec::new();
        let mut offset = 0usize;
        let head_end = loop {
            let Some(nl) = self.buf[offset..].iter().position(|&b| b == b'\n') else {
                // No terminator yet: either the peer is slow or the line
                // is already over budget.
                if self.buf.len() - offset > MAX_LINE_BYTES {
                    return Err(HttpError::BadRequest(format!(
                        "line longer than {MAX_LINE_BYTES} bytes"
                    )));
                }
                return Ok(None);
            };
            if nl > MAX_LINE_BYTES {
                return Err(HttpError::BadRequest(format!(
                    "line longer than {MAX_LINE_BYTES} bytes"
                )));
            }
            let mut line = &self.buf[offset..offset + nl];
            while line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            offset += nl + 1;
            if line.is_empty() {
                break offset;
            }
            // One request line + the header cap.
            if lines.len() > MAX_HEADERS {
                return Err(HttpError::BadRequest(format!(
                    "more than {MAX_HEADERS} headers"
                )));
            }
            let text = std::str::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("line is not UTF-8".into()))?;
            lines.push(text.to_string());
        };

        let head = Self::parse_head_lines(&lines)?;
        self.buf.drain(..head_end);
        Ok(Some(head))
    }

    fn parse_head_lines(lines: &[String]) -> Result<Head, HttpError> {
        let request_line = lines.first().map(String::as_str).unwrap_or_default();
        let mut parts = request_line.split_ascii_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
            _ => {
                return Err(HttpError::BadRequest(format!(
                    "malformed request line {request_line:?}"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version {version:?}"
            )));
        }
        if !path.starts_with('/') {
            return Err(HttpError::BadRequest(format!(
                "request target {path:?} must be an absolute path"
            )));
        }

        let mut content_length: Option<usize> = None;
        // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
        let mut close = version == "HTTP/1.0";
        let mut bearer: Option<String> = None;
        for line in &lines[1..] {
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    let n: usize = value.parse().map_err(|_| {
                        HttpError::BadRequest(format!("content-length {value:?} is not a length"))
                    })?;
                    if let Some(prev) = content_length {
                        if prev != n {
                            return Err(HttpError::BadRequest(
                                "conflicting content-length headers".into(),
                            ));
                        }
                    }
                    if n > MAX_BODY_BYTES {
                        return Err(HttpError::PayloadTooLarge(format!(
                            "body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                        )));
                    }
                    content_length = Some(n);
                }
                "transfer-encoding" => {
                    return Err(HttpError::BadRequest(
                        "transfer-encoding is not supported; send content-length".into(),
                    ));
                }
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v.contains("close") {
                        close = true;
                    } else if v.contains("keep-alive") {
                        close = false;
                    }
                }
                "authorization" => {
                    // Only the bearer scheme is understood; anything
                    // else is equivalent to no token (the registry
                    // answers 401, not the parser).
                    if let Some((scheme, token)) = value.split_once(' ') {
                        if scheme.eq_ignore_ascii_case("bearer") && !token.trim().is_empty() {
                            bearer = Some(token.trim().to_string());
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(Head {
            method,
            path,
            content_length: content_length.unwrap_or(0),
            close,
            bearer,
        })
    }
}

/// One-shot convenience over [`RequestParser`]: parses exactly one
/// request from a complete byte slice (the historical
/// one-request-per-connection path, kept for the fuzz tests and the
/// simulator's single-request helper).
///
/// # Errors
///
/// Returns an [`HttpError`] on any framing violation, including a frame
/// that is still incomplete at the end of the slice (truncation).
pub fn parse_request_bytes(raw: &[u8]) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new();
    parser.feed(raw);
    match parser.next_request()? {
        Some(req) => Ok(req),
        None => Err(parser
            .eof_error()
            .unwrap_or_else(|| HttpError::Truncated("connection closed mid-request".into()))),
    }
}

/// A response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `content-type` header value. Every body in the API is JSON
    /// except the Prometheus exposition at `/metrics`.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (the Prometheus exposition format is
    /// `text/plain; version=0.0.4`). Framing is unchanged — replies are
    /// still `content-length`-delimited — so keep-alive clients and
    /// [`ResponseParser`] handle it like any other body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// A structured JSON error response:
    /// `{"error": {"status": S, "message": "..."}}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\": {{\"status\": {status}, \"message\": {}}}}}\n",
                tuna_stats::json::quote(message)
            ),
        )
    }

    /// A structured JSON refusal with a machine-readable reason slug:
    /// `{"error": {"status": S, "reason": "...", "message": "..."}}` —
    /// what auth (401/403) and admission control (429) answer with, so
    /// clients can branch on `reason` instead of parsing prose.
    pub fn refusal(status: u16, reason: &str, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\": {{\"status\": {status}, \"reason\": {}, \"message\": {}}}}}\n",
                tuna_stats::json::quote(reason),
                tuna_stats::json::quote(message)
            ),
        )
    }

    /// The canonical response for a framing-level [`HttpError`].
    pub fn of_http_error(e: &HttpError) -> Self {
        Response::error(e.status(), e.message())
    }

    /// Reason phrase for the status line.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response to wire bytes, advertising whether the
    /// server will keep the connection open afterwards.
    pub fn to_wire(&self, keep_alive: bool) -> Vec<u8> {
        format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{}",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
            self.body
        )
        .into_bytes()
    }

    /// Serializes the response to wire bytes with `connection: close` —
    /// the historical one-request-per-connection framing.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire(false)
    }

    /// Writes the response to `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.to_bytes())
    }
}

/// Builds the wire bytes of a request, choosing the connection
/// disposition — the client side of [`RequestParser`], shared by
/// `tuna-ctl` and the loopback simulator.
pub fn request_bytes_with(method: &str, path: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    request_bytes_auth(method, path, body, keep_alive, None)
}

/// [`request_bytes_with`] plus an optional bearer token
/// (`authorization: Bearer <token>`) — the client side of a
/// tenant-authenticated daemon.
pub fn request_bytes_auth(
    method: &str,
    path: &str,
    body: &str,
    keep_alive: bool,
    token: Option<&str>,
) -> Vec<u8> {
    let auth = match token {
        Some(t) => format!("authorization: Bearer {t}\r\n"),
        None => String::new(),
    };
    format!(
        "{method} {path} HTTP/1.1\r\nhost: tunad\r\ncontent-type: application/json\r\n{auth}content-length: {}\r\nconnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// Builds one-shot (`connection: close`) request bytes.
pub fn request_bytes(method: &str, path: &str, body: &str) -> Vec<u8> {
    request_bytes_with(method, path, body, false)
}

/// Splits a raw response into `(status, body)` — the client side of
/// [`Response::to_bytes`] for a one-shot connection where the body runs
/// to EOF.
///
/// # Errors
///
/// Returns a message when the bytes do not form a full response.
pub fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let text = std::str::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("response lacks a header/body separator")?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    Ok((status, body.to_string()))
}

/// One response decoded off a keep-alive connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body (exactly `content-length` bytes).
    pub body: String,
    /// Whether the server advertised it will keep the connection open.
    pub keep_alive: bool,
}

/// Incremental response parser — the client mirror of
/// [`RequestParser`], so `tuna-ctl`'s persistent connection and the
/// pipelining tests can frame responses by `content-length` instead of
/// waiting for EOF.
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: Vec<u8>,
}

impl ResponseParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        ResponseParser::default()
    }

    /// Appends transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a response is partially buffered.
    pub fn mid_response(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Pulls the next complete response out of the buffer; `Ok(None)`
    /// when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed response framing (bad status
    /// line, missing or unparsable `content-length`).
    pub fn next_response(&mut self) -> Result<Option<WireResponse>, String> {
        let sep = b"\r\n\r\n";
        let Some(head_end) = self
            .buf
            .windows(sep.len())
            .position(|w| w == sep)
            .map(|p| p + sep.len())
        else {
            if self.buf.len() > MAX_LINE_BYTES * (MAX_HEADERS + 2) {
                return Err("response head exceeds every sane limit".into());
            }
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| "response head is not UTF-8".to_string())?;
        let status_line = head.lines().next().unwrap_or_default();
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
        let mut content_length: Option<usize> = None;
        let mut keep_alive = true;
        for line in head.lines().skip(1) {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad content-length {value:?}"))?,
                    );
                }
                "connection" => {
                    keep_alive = !value.trim().eq_ignore_ascii_case("close");
                }
                _ => {}
            }
        }
        let n = content_length.ok_or("response lacks a content-length")?;
        if self.buf.len() < head_end + n {
            return Ok(None);
        }
        let body = String::from_utf8(self.buf[head_end..head_end + n].to_vec())
            .map_err(|_| "response body is not UTF-8".to_string())?;
        self.buf.drain(..head_end + n);
        Ok(Some(WireResponse {
            status,
            body,
            keep_alive,
        }))
    }
}

/// Splits a byte stream of consecutive keep-alive responses (as a
/// pipelined connection produces) into `(status, body)` pairs.
///
/// # Errors
///
/// Returns a message on malformed framing or a trailing partial
/// response.
pub fn split_responses(raw: &[u8]) -> Result<Vec<(u16, String)>, String> {
    let mut parser = ResponseParser::new();
    parser.feed(raw);
    let mut out = Vec::new();
    while let Some(resp) = parser.next_response()? {
        out.push((resp.status, resp.body));
    }
    if parser.mid_response() {
        return Err("trailing partial response".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        parse_request_bytes(raw)
    }

    #[test]
    fn roundtrip_request() {
        let raw = request_bytes("POST", "/v1/studies", "{\"name\": \"x\"}");
        let req = parse(&raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/studies");
        assert_eq!(req.body, "{\"name\": \"x\"}");
        assert!(req.close, "request_bytes frames connection: close");
        let keep = request_bytes_with("GET", "/healthz", "", true);
        assert!(!parse(&keep).unwrap().close);
    }

    #[test]
    fn get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
        let old = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(old.close, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"POST /v1/studies HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"partial\":";
        match parse(raw) {
            Err(HttpError::Truncated(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(raw.as_bytes()) {
            Err(e) => assert_eq!(e.status(), 413),
            Ok(r) => panic!("accepted {r:?}"),
        }
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        let e = parse(raw).unwrap_err();
        assert!(e.message().contains("transfer-encoding"), "{e:?}");
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut parser = RequestParser::new();
        parser.feed(&request_bytes_with("GET", "/a", "", true));
        parser.feed(&request_bytes_with("POST", "/b", "{\"x\": 1}", true));
        parser.feed(&request_bytes_with("GET", "/c", "", false));
        let a = parser.next_request().unwrap().unwrap();
        let b = parser.next_request().unwrap().unwrap();
        let c = parser.next_request().unwrap().unwrap();
        assert_eq!((a.path.as_str(), a.close), ("/a", false));
        assert_eq!((b.path.as_str(), b.body.as_str()), ("/b", "{\"x\": 1}"));
        assert_eq!((c.path.as_str(), c.close), ("/c", true));
        assert!(parser.next_request().unwrap().is_none());
        assert!(!parser.mid_request());
        assert!(parser.eof_error().is_none(), "clean close between frames");
    }

    #[test]
    fn byte_at_a_time_feeding_parses_identically() {
        let raw = request_bytes_with("POST", "/v1/studies", "{\"name\": \"drip\"}", true);
        let mut parser = RequestParser::new();
        let mut got = None;
        for b in &raw {
            parser.feed(std::slice::from_ref(b));
            if let Some(req) = parser.next_request().unwrap() {
                got = Some(req);
            }
        }
        let req = got.expect("parsed by the final byte");
        assert_eq!(req.body, "{\"name\": \"drip\"}");
    }

    #[test]
    fn parser_is_dead_after_an_error() {
        let mut parser = RequestParser::new();
        parser.feed(b"BROKEN\r\n\r\n");
        assert!(parser.next_request().is_err());
        parser.feed(&request_bytes("GET", "/healthz", ""));
        assert!(
            parser.next_request().unwrap().is_none(),
            "dead parsers stay dead"
        );
        assert!(parser.eof_error().is_none());
    }

    #[test]
    fn mid_head_eof_is_truncation() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /healthz HTTP/1.1\r\nhost: x");
        assert!(parser.next_request().unwrap().is_none());
        assert!(parser.mid_request());
        match parser.eof_error() {
            Some(HttpError::Truncated(_)) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_response() {
        let resp = Response::json(201, "{\"ok\": true}");
        let (status, body) = parse_response(&resp.to_bytes()).unwrap();
        assert_eq!(status, 201);
        assert_eq!(body, "{\"ok\": true}");
    }

    #[test]
    fn keep_alive_responses_split_by_content_length() {
        let mut raw = Response::json(200, "{\"a\": 1}").to_wire(true);
        raw.extend(Response::json(404, "{\"b\": 2}").to_wire(true));
        raw.extend(Response::json(200, "{\"c\": 3}").to_wire(false));
        let parts = split_responses(&raw).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], (200, "{\"a\": 1}".to_string()));
        assert_eq!(parts[1], (404, "{\"b\": 2}".to_string()));
        assert_eq!(parts[2], (200, "{\"c\": 3}".to_string()));

        let mut parser = ResponseParser::new();
        parser.feed(&Response::json(200, "x").to_wire(false));
        let resp = parser.next_response().unwrap().unwrap();
        assert!(!resp.keep_alive);
    }

    #[test]
    fn bearer_tokens_are_extracted() {
        let raw = request_bytes_auth("GET", "/v1/studies", "", true, Some("s3cret"));
        assert_eq!(parse(&raw).unwrap().bearer.as_deref(), Some("s3cret"));
        // No header, a non-bearer scheme, or an empty token all read as
        // "no token" — the registry turns that into a 401.
        assert_eq!(parse(&request_bytes("GET", "/x", "")).unwrap().bearer, None);
        let basic = parse(b"GET /x HTTP/1.1\r\nauthorization: Basic dXNlcg==\r\n\r\n").unwrap();
        assert_eq!(basic.bearer, None);
        let empty = parse(b"GET /x HTTP/1.1\r\nauthorization: Bearer  \r\n\r\n").unwrap();
        assert_eq!(empty.bearer, None);
        let mixed = parse(b"GET /x HTTP/1.1\r\nAuthorization: bearer tok\r\n\r\n").unwrap();
        assert_eq!(mixed.bearer.as_deref(), Some("tok"));
    }

    #[test]
    fn refusals_carry_a_reason_slug() {
        let resp = Response::refusal(429, "cell-budget", "over budget");
        assert_eq!(resp.reason(), "Too Many Requests");
        let v = tuna_stats::json::parse(&resp.body).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("status").and_then(|s| s.as_f64()), Some(429.0));
        assert_eq!(
            err.get("reason").and_then(|r| r.as_str()),
            Some("cell-budget")
        );
        assert_eq!(
            err.get("message").and_then(|m| m.as_str()),
            Some("over budget")
        );
        assert_eq!(Response::json(401, "").reason(), "Unauthorized");
        assert_eq!(Response::json(403, "").reason(), "Forbidden");
    }

    #[test]
    fn error_responses_are_structured_json() {
        let resp = Response::error(400, "bad \"thing\"");
        let v = tuna_stats::json::parse(&resp.body).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("status").and_then(|s| s.as_f64()), Some(400.0));
        assert_eq!(
            err.get("message").and_then(|m| m.as_str()),
            Some("bad \"thing\"")
        );
    }

    #[test]
    fn shed_statuses_have_reasons() {
        for (status, reason) in [
            (408, "Request Timeout"),
            (429, "Too Many Requests"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(Response::json(status, "").reason(), reason);
        }
    }
}
