//! A hand-rolled, hardened subset of HTTP/1.1 — the daemon's wire
//! framing.
//!
//! The workspace builds fully offline, so the daemon speaks a minimal
//! dialect instead of pulling in a server stack: one request per
//! connection (`Connection: close`), JSON bodies, `Content-Length`
//! framing only. What the parser lacks in generality it makes up in
//! paranoia — every limit is explicit and every malformed or truncated
//! input comes back as a typed [`HttpError`] (which the daemon turns
//! into a structured JSON error response), never a panic:
//!
//! - request line and each header line are capped at
//!   [`MAX_LINE_BYTES`]; total header count at [`MAX_HEADERS`];
//! - bodies are capped at [`MAX_BODY_BYTES`] and must match their
//!   `Content-Length` exactly — a short read (truncated frame) is an
//!   error, not a hang or a partial parse;
//! - `Transfer-Encoding: chunked` is rejected up front rather than
//!   mis-framed.
//!
//! The parser reads from any [`BufRead`], so the daemon, the loopback
//! simulator and the fuzz tests all drive the exact same byte-level
//! code path — a `TcpStream` is just one more reader.

use std::io::{BufRead, Write};

/// Longest accepted request/header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request target, e.g. `/v1/studies/demo/results`.
    pub path: String,
    /// Decoded body (empty when the request has none).
    pub body: String,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed framing or a violated limit; the message is safe to
    /// echo back to the client.
    BadRequest(String),
    /// Body longer than [`MAX_BODY_BYTES`].
    PayloadTooLarge(String),
    /// The peer closed the connection before sending a full request.
    Truncated(String),
    /// Transport error underneath the parser.
    Io(String),
}

impl HttpError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::Truncated(_) => 400,
            HttpError::Io(_) => 400,
        }
    }

    /// The error detail.
    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m)
            | HttpError::PayloadTooLarge(m)
            | HttpError::Truncated(m)
            | HttpError::Io(m) => m,
        }
    }
}

/// Reads one `\n`-terminated line of at most `MAX_LINE_BYTES`, without
/// trusting the peer to ever send the terminator.
fn read_line_bounded(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut limited = std::io::Read::take(&mut *r, (MAX_LINE_BYTES + 1) as u64);
    limited
        .read_until(b'\n', &mut line)
        .map_err(|e| HttpError::Io(format!("read failed: {e}")))?;
    if line.is_empty() {
        return Err(HttpError::Truncated("connection closed mid-request".into()));
    }
    if line.last() != Some(&b'\n') {
        return Err(if line.len() > MAX_LINE_BYTES {
            HttpError::BadRequest(format!("line longer than {MAX_LINE_BYTES} bytes"))
        } else {
            HttpError::Truncated("connection closed mid-line".into())
        });
    }
    while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::BadRequest("line is not UTF-8".into()))
}

/// Parses one request from `r`.
///
/// # Errors
///
/// Returns an [`HttpError`] on any framing violation: malformed request
/// line or header, missing/overlong/duplicated `Content-Length`, a body
/// shorter than its declared length (truncated frame), chunked
/// encoding, or a transport failure.
pub fn parse_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line_bounded(r)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target {path:?} must be an absolute path"
        )));
    }

    let mut content_length: Option<usize> = None;
    let mut n_headers = 0usize;
    loop {
        let line = read_line_bounded(r)?;
        if line.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(HttpError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value.parse().map_err(|_| {
                    HttpError::BadRequest(format!("content-length {value:?} is not a length"))
                })?;
                if let Some(prev) = content_length {
                    if prev != n {
                        return Err(HttpError::BadRequest(
                            "conflicting content-length headers".into(),
                        ));
                    }
                }
                if n > MAX_BODY_BYTES {
                    return Err(HttpError::PayloadTooLarge(format!(
                        "body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                    )));
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                return Err(HttpError::BadRequest(
                    "transfer-encoding is not supported; send content-length".into(),
                ));
            }
            _ => {}
        }
    }

    let body = match content_length.unwrap_or(0) {
        0 => String::new(),
        n => {
            let mut buf = vec![0u8; n];
            let mut filled = 0usize;
            while filled < n {
                match r.read(&mut buf[filled..]) {
                    Ok(0) => {
                        return Err(HttpError::Truncated(format!(
                            "body truncated at {filled} of {n} bytes"
                        )))
                    }
                    Ok(k) => filled += k,
                    Err(e) => return Err(HttpError::Io(format!("body read failed: {e}"))),
                }
            }
            String::from_utf8(buf).map_err(|_| HttpError::BadRequest("body is not UTF-8".into()))?
        }
    };

    Ok(Request { method, path, body })
}

/// A response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
        }
    }

    /// A structured JSON error response:
    /// `{"error": {"status": S, "message": "..."}}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            body: format!(
                "{{\"error\": {{\"status\": {status}, \"message\": {}}}}}\n",
                tuna_stats::json::quote(message)
            ),
        }
    }

    /// The canonical response for a framing-level [`HttpError`].
    pub fn of_http_error(e: &HttpError) -> Self {
        Response::error(e.status(), e.message())
    }

    /// Reason phrase for the status line.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serializes the response to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
            self.status,
            self.reason(),
            self.body.len(),
            self.body
        )
        .into_bytes()
    }

    /// Writes the response to `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.to_bytes())
    }
}

/// Builds the wire bytes of a request — the client side of
/// [`parse_request`], shared by `tuna-ctl` and the loopback simulator.
pub fn request_bytes(method: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nhost: tunad\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Splits a raw response into `(status, body)` — the client side of
/// [`Response::to_bytes`].
///
/// # Errors
///
/// Returns a message when the bytes do not form a full response.
pub fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let text = std::str::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("response lacks a header/body separator")?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut std::io::BufReader::new(raw))
    }

    #[test]
    fn roundtrip_request() {
        let raw = request_bytes("POST", "/v1/studies", "{\"name\": \"x\"}");
        let req = parse(&raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/studies");
        assert_eq!(req.body, "{\"name\": \"x\"}");
    }

    #[test]
    fn get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"POST /v1/studies HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"partial\":";
        match parse(raw) {
            Err(HttpError::Truncated(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(raw.as_bytes()) {
            Err(e) => assert_eq!(e.status(), 413),
            Ok(r) => panic!("accepted {r:?}"),
        }
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        let e = parse(raw).unwrap_err();
        assert!(e.message().contains("transfer-encoding"), "{e:?}");
    }

    #[test]
    fn roundtrip_response() {
        let resp = Response::json(201, "{\"ok\": true}");
        let (status, body) = parse_response(&resp.to_bytes()).unwrap();
        assert_eq!(status, 201);
        assert_eq!(body, "{\"ok\": true}");
    }

    #[test]
    fn error_responses_are_structured_json() {
        let resp = Response::error(400, "bad \"thing\"");
        let v = tuna_stats::json::parse(&resp.body).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("status").and_then(|s| s.as_f64()), Some(400.0));
        assert_eq!(
            err.get("message").and_then(|m| m.as_str()),
            Some("bad \"thing\"")
        );
    }
}
