//! Deterministic loopback mode: the whole daemon —
//! request→schedule→execute→respond — without sockets, threads or
//! wall-clock.
//!
//! [`SimServer`] holds the same [`StudyManager`] the real daemon locks,
//! a virtual worker pool of fixed width, and a tick counter for a
//! clock. Requests travel as real wire bytes through the exact
//! parse/route/serialize path `tunad` uses; [`SimServer::step`] models
//! one scheduling quantum: claim up to `workers` fair-share
//! assignments, execute them (serially, in assignment order — cells
//! are pure functions, so this is bit-identical to any interleaving),
//! and record the results. Dropping a `SimServer` between steps *is*
//! the kill: whatever the journal holds survives, and a new `SimServer`
//! over the same data directory resumes exactly there.

use std::path::PathBuf;

use crate::daemon;
use crate::http::{self, Response};
use crate::manager::StudyManager;
use tuna_core::campaign::execute_cell;
use tuna_core::executor::ExecutionMode;

/// The in-process daemon with deterministic listener, clock and worker
/// pool.
pub struct SimServer {
    mgr: StudyManager,
    workers: usize,
    ticks: u64,
}

impl SimServer {
    /// A simulator with `workers` virtual workers, persistent under
    /// `data_dir` (or fully in-memory when `None`). Persisted studies
    /// are reloaded exactly like a restarted `tunad`.
    ///
    /// # Errors
    ///
    /// Propagates [`StudyManager::open`] failures.
    pub fn new(data_dir: Option<PathBuf>, workers: usize) -> Result<Self, String> {
        let mgr = match data_dir {
            None => StudyManager::in_memory(),
            Some(dir) => StudyManager::open(dir)?,
        };
        Ok(SimServer {
            mgr,
            workers: workers.max(1),
            ticks: 0,
        })
    }

    /// Feeds raw request bytes through the full wire path; returns raw
    /// response bytes.
    pub fn request_bytes(&mut self, raw: &[u8]) -> Vec<u8> {
        daemon::handle_bytes(&mut self.mgr, raw)
    }

    /// Convenience request: builds the wire bytes, runs them through
    /// [`SimServer::request_bytes`], and splits the response into
    /// `(status, body)`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let raw = self.request_bytes(&http::request_bytes(method, path, body));
        http::parse_response(&raw).unwrap_or_else(|e| (500, Response::error(500, &e).body))
    }

    /// One scheduling quantum: claims up to `workers` assignments under
    /// fair share, executes them all, records the results. Returns the
    /// `(study, cell)` pairs that completed this tick.
    pub fn step(&mut self) -> Vec<(String, usize)> {
        self.ticks += 1;
        let mut claimed = Vec::new();
        for _ in 0..self.workers {
            match self.mgr.next_assignment() {
                Some(a) => claimed.push(a),
                None => break,
            }
        }
        let mut done = Vec::with_capacity(claimed.len());
        for a in claimed {
            let (record, _payload) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            self.mgr
                .complete(&a.study, record)
                .expect("sim completion of a just-claimed cell");
            done.push((a.study, a.cell));
        }
        done
    }

    /// Steps until no study has pending work. Returns total cells
    /// executed.
    pub fn run_to_completion(&mut self) -> usize {
        let mut total = 0;
        while self.mgr.has_pending() {
            total += self.step().len();
        }
        total
    }

    /// Whether the scheduler has nothing left to hand out.
    pub fn idle(&self) -> bool {
        !self.mgr.has_pending()
    }

    /// Virtual clock: completed scheduling quanta.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Virtual worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Direct manager access for assertions.
    pub fn manager(&self) -> &StudyManager {
        &self.mgr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_body(name: &str, runs: usize) -> String {
        format!(
            r#"{{"name": "{name}", "seed": 9, "runs": {runs}, "rounds": 2,
                "workloads": ["tpcc"],
                "arms": [{{"label": "Default", "method": "default"}}]}}"#
        )
    }

    #[test]
    fn submit_step_results_loop() {
        let mut sim = SimServer::new(None, 2).unwrap();
        let (status, _) = sim.request("POST", "/v1/studies", &spec_body("a", 3));
        assert_eq!(status, 201);
        assert!(!sim.idle());
        let done = sim.step();
        assert_eq!(done.len(), 2, "two workers claim two cells");
        sim.run_to_completion();
        let (status, body) = sim.request("GET", "/v1/studies/a", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\": \"done\""), "{body}");
        let (_, results) = sim.request("GET", "/v1/studies/a/results", "");
        assert!(results.contains("\"completed\": 3"), "{results}");
    }

    #[test]
    fn two_studies_share_the_pool_per_tick() {
        let mut sim = SimServer::new(None, 4).unwrap();
        sim.request("POST", "/v1/studies", &spec_body("a", 6));
        sim.request("POST", "/v1/studies", &spec_body("b", 6));
        let done = sim.step();
        let a_count = done.iter().filter(|(s, _)| s == "a").count();
        let b_count = done.iter().filter(|(s, _)| s == "b").count();
        assert_eq!((a_count, b_count), (2, 2), "fair share within one tick");
    }

    #[test]
    fn worker_width_changes_pacing_not_results() {
        let run = |workers: usize| -> String {
            let mut sim = SimServer::new(None, workers).unwrap();
            sim.request("POST", "/v1/studies", &spec_body("x", 4));
            sim.run_to_completion();
            sim.request("GET", "/v1/studies/x/results", "").1
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(7));
    }
}
