//! Deterministic loopback mode: the whole daemon —
//! accept→read→parse→schedule→execute→respond — without sockets,
//! threads or wall-clock.
//!
//! [`SimServer`] holds the same [`StudyManager`] the real daemon locks
//! and the same connection [`Engine`] the real daemon drives — the
//! only things simulated are the transport (in-memory byte buffers
//! instead of sockets) and the clock (scheduler ticks instead of
//! milliseconds). Requests travel as real wire bytes through the exact
//! parse/route/serialize state machine `tunad` uses, including
//! keep-alive, pipelining and the budget/shed behavior.
//! [`SimServer::step`] models one scheduling quantum: advance the
//! clock, claim up to `workers` fair-share assignments, execute them
//! (serially, in assignment order — cells are pure functions, so this
//! is bit-identical to any interleaving), and record the results.
//! Dropping a `SimServer` between steps *is* the kill: whatever the
//! journal holds survives, and a new `SimServer` over the same data
//! directory resumes exactly there.

use std::path::PathBuf;

use crate::engine::{Engine, EngineConfig};
use crate::http::{self, HttpError, Response};
use crate::manager::StudyManager;
use crate::tenant::TenantRegistry;
use tuna_core::campaign::execute_cell;
use tuna_core::executor::ExecutionMode;

/// Deterministic wall-time charge per executed cell under the
/// simulator: virtual nanoseconds proportional to the rows produced, so
/// usage accounting is reproducible (and restart-stable) on the sim
/// clock.
pub const SIM_NS_PER_ROW: u64 = 1000;

/// The in-process daemon with deterministic listener, clock and worker
/// pool.
pub struct SimServer {
    mgr: StudyManager,
    engine: Engine,
    workers: usize,
    ticks: u64,
}

impl SimServer {
    /// A simulator with `workers` virtual workers, persistent under
    /// `data_dir` (or fully in-memory when `None`). Persisted studies
    /// are reloaded exactly like a restarted `tunad`.
    ///
    /// # Errors
    ///
    /// Propagates [`StudyManager::open`] failures.
    pub fn new(data_dir: Option<PathBuf>, workers: usize) -> Result<Self, String> {
        Self::with_engine_config(data_dir, workers, EngineConfig::sim_default())
    }

    /// A simulator over an explicit tenant table — the multi-tenant
    /// daemon (auth, weighted fair share, admission) on the sim clock.
    ///
    /// # Errors
    ///
    /// Propagates [`StudyManager::open_with`] failures.
    pub fn with_tenants(
        data_dir: Option<PathBuf>,
        workers: usize,
        registry: TenantRegistry,
    ) -> Result<Self, String> {
        let mgr = match data_dir {
            None => Ok(StudyManager::in_memory_with(registry)),
            Some(dir) => StudyManager::open_with(dir, registry),
        }?;
        Ok(SimServer {
            mgr,
            engine: Engine::new(EngineConfig::sim_default()),
            workers: workers.max(1),
            ticks: 0,
        })
    }

    /// A simulator with explicit engine budgets (tick units).
    ///
    /// # Errors
    ///
    /// Propagates [`StudyManager::open`] failures.
    pub fn with_engine_config(
        data_dir: Option<PathBuf>,
        workers: usize,
        cfg: EngineConfig,
    ) -> Result<Self, String> {
        let mgr = match data_dir {
            None => StudyManager::in_memory(),
            Some(dir) => StudyManager::open(dir)?,
        };
        Ok(SimServer {
            mgr,
            engine: Engine::new(cfg),
            workers: workers.max(1),
            ticks: 0,
        })
    }

    // --- Virtual listener: connection-level API. ---------------------

    /// Accepts a new virtual connection (may be shed with a `503` once
    /// the engine is at capacity — exactly like the real listener).
    pub fn connect(&mut self) -> usize {
        self.engine.connect(self.ticks)
    }

    /// Feeds bytes into a connection without dispatching — the "peer
    /// wrote to the socket" half, so tests can control when dispatch
    /// happens relative to the clock.
    pub fn feed(&mut self, conn: usize, bytes: &[u8]) {
        self.engine.recv(conn, bytes, self.ticks);
    }

    /// Dispatches every queued request against the manager (the "event
    /// loop ran" half). Returns how many requests were answered.
    pub fn dispatch(&mut self) -> usize {
        self.engine.dispatch(&mut self.mgr, self.ticks)
    }

    /// Feeds bytes and dispatches — the common case.
    pub fn send(&mut self, conn: usize, bytes: &[u8]) {
        self.feed(conn, bytes);
        self.dispatch();
    }

    /// Drains a connection's buffered response bytes.
    pub fn recv(&mut self, conn: usize) -> Vec<u8> {
        self.engine.take_output(conn)
    }

    /// Signals peer EOF on a connection.
    pub fn finish(&mut self, conn: usize) {
        self.engine.on_eof(conn);
        self.dispatch();
    }

    /// Whether the engine has decided to close this connection (all
    /// owed bytes already readable via [`SimServer::recv`]).
    pub fn wants_close(&self, conn: usize) -> bool {
        self.engine.wants_close(conn)
    }

    /// Advances the virtual clock by one tick *without* running the
    /// scheduler — models wall-time passing on an otherwise idle
    /// daemon, which is what trips time budgets (`408`, idle closes).
    pub fn tick(&mut self) {
        self.ticks += 1;
        self.engine.on_tick(self.ticks);
    }

    /// Direct engine access for assertions.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (latency draining in the perf gate).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    // --- One-shot request helpers (the historical API). --------------

    /// Feeds raw request bytes through the full wire path on a fresh
    /// one-shot connection; returns raw response bytes.
    pub fn request_bytes(&mut self, raw: &[u8]) -> Vec<u8> {
        let conn = self.connect();
        self.send(conn, raw);
        self.engine.on_eof(conn);
        self.dispatch();
        let mut out = self.engine.take_output(conn);
        if out.is_empty() {
            // The frame never completed and EOF landed between requests
            // from the parser's point of view — the one-shot contract
            // still owes the peer an answer.
            out = Response::of_http_error(&HttpError::Truncated(
                "connection closed mid-request".into(),
            ))
            .to_bytes();
        }
        self.engine.disconnect(conn);
        out
    }

    /// Convenience request: builds the wire bytes, runs them through
    /// [`SimServer::request_bytes`], and splits the response into
    /// `(status, body)`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let raw = self.request_bytes(&http::request_bytes(method, path, body));
        http::parse_response(&raw).unwrap_or_else(|e| (500, Response::error(500, &e).body))
    }

    /// [`SimServer::request`] with a bearer token — the authenticated
    /// variant multi-tenant tests drive.
    pub fn request_as(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        token: Option<&str>,
    ) -> (u16, String) {
        let raw = self.request_bytes(&http::request_bytes_auth(method, path, body, false, token));
        http::parse_response(&raw).unwrap_or_else(|e| (500, Response::error(500, &e).body))
    }

    // --- Virtual worker pool. ----------------------------------------

    /// One scheduling quantum: advances the clock, claims up to
    /// `workers` assignments under weighted fair share, executes them
    /// all, records the results (charging [`SIM_NS_PER_ROW`] virtual
    /// wall-ns per produced row to the owning tenant's meter). Returns
    /// the `(tenant, study, cell)` triples that completed this tick.
    pub fn step(&mut self) -> Vec<(String, String, usize)> {
        self.tick();
        let mut claimed = Vec::new();
        for _ in 0..self.workers {
            match self.mgr.next_assignment() {
                Some(a) => claimed.push(a),
                None => break,
            }
        }
        let mut done = Vec::with_capacity(claimed.len());
        for a in claimed {
            let (record, payload) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            let wall_ns = SIM_NS_PER_ROW * record.rows.len() as u64;
            let trace = tuna_core::campaign::cell_trace(&a.campaign, a.cell, &payload);
            self.mgr
                .complete_traced(&a.tenant, &a.study, record, wall_ns, Some(trace))
                .expect("sim completion of a just-claimed cell");
            done.push((a.tenant, a.study, a.cell));
        }
        done
    }

    /// Steps until no study has pending work. Returns total cells
    /// executed.
    pub fn run_to_completion(&mut self) -> usize {
        let mut total = 0;
        while self.mgr.has_pending() {
            total += self.step().len();
        }
        total
    }

    /// Whether the scheduler has nothing left to hand out.
    pub fn idle(&self) -> bool {
        !self.mgr.has_pending()
    }

    /// Virtual clock: elapsed ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Virtual worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Direct manager access for assertions.
    pub fn manager(&self) -> &StudyManager {
        &self.mgr
    }

    /// Mutable manager access (synthetic completions in the perf gate).
    pub fn manager_mut(&mut self) -> &mut StudyManager {
        &mut self.mgr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{request_bytes_with, split_responses};

    fn spec_body(name: &str, runs: usize) -> String {
        format!(
            r#"{{"name": "{name}", "seed": 9, "runs": {runs}, "rounds": 2,
                "workloads": ["tpcc"],
                "arms": [{{"label": "Default", "method": "default"}}]}}"#
        )
    }

    #[test]
    fn submit_step_results_loop() {
        let mut sim = SimServer::new(None, 2).unwrap();
        let (status, _) = sim.request("POST", "/v1/studies", &spec_body("a", 3));
        assert_eq!(status, 201);
        assert!(!sim.idle());
        let done = sim.step();
        assert_eq!(done.len(), 2, "two workers claim two cells");
        sim.run_to_completion();
        let (status, body) = sim.request("GET", "/v1/studies/a", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\": \"done\""), "{body}");
        let (_, results) = sim.request("GET", "/v1/studies/a/results", "");
        assert!(results.contains("\"completed\": 3"), "{results}");
    }

    #[test]
    fn two_studies_share_the_pool_per_tick() {
        let mut sim = SimServer::new(None, 4).unwrap();
        sim.request("POST", "/v1/studies", &spec_body("a", 6));
        sim.request("POST", "/v1/studies", &spec_body("b", 6));
        let done = sim.step();
        let a_count = done.iter().filter(|(_, s, _)| s == "a").count();
        let b_count = done.iter().filter(|(_, s, _)| s == "b").count();
        assert_eq!((a_count, b_count), (2, 2), "fair share within one tick");
    }

    #[test]
    fn worker_width_changes_pacing_not_results() {
        let run = |workers: usize| -> String {
            let mut sim = SimServer::new(None, workers).unwrap();
            sim.request("POST", "/v1/studies", &spec_body("x", 4));
            sim.run_to_completion();
            sim.request("GET", "/v1/studies/x/results", "").1
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(7));
    }

    #[test]
    fn keep_alive_connection_spans_scheduler_ticks() {
        let mut sim = SimServer::new(None, 1).unwrap();
        let conn = sim.connect();
        sim.send(
            conn,
            &request_bytes_with("POST", "/v1/studies", &spec_body("k", 2), true),
        );
        let submit = split_responses(&sim.recv(conn)).unwrap();
        assert_eq!(submit.len(), 1);
        assert_eq!(submit[0].0, 201);

        sim.run_to_completion();

        // Same connection, later tick: still open, still answering.
        sim.send(conn, &request_bytes_with("GET", "/v1/studies/k", "", true));
        let status = split_responses(&sim.recv(conn)).unwrap();
        assert_eq!(status[0].0, 200);
        assert!(status[0].1.contains("\"state\": \"done\""));
        assert!(!sim.wants_close(conn));
    }
}
