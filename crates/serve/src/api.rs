//! The wire-level study schema: what a client submits and how it maps
//! onto a [`Campaign`].
//!
//! A study is submitted as one JSON document:
//!
//! ```json
//! {
//!   "name": "nightly-tpcc",
//!   "seed": 42,
//!   "runs": 3,
//!   "rounds": 24,
//!   "optimizer": "smac",
//!   "workloads": ["tpcc", "ycsb-c"],
//!   "arms": [
//!     {"label": "TUNA", "method": "tuna"},
//!     {"label": "Traditional", "method": "traditional"},
//!     {"label": "Default", "method": "default"}
//!   ]
//! }
//! ```
//!
//! The spec is the durable identity of a study: the daemon persists the
//! *canonical* serialization ([`StudySpec::to_json`]) next to the
//! study's result store and rebuilds the [`Campaign`] from it after a
//! restart, so a killed daemon resumes exactly the declaration the
//! client submitted (the store's declaration digest is re-verified on
//! load). Validation is strict — every limit that the campaign layer
//! enforces with a panic (arm labels, grid shape) is checked here with
//! an `Err` first, because this input arrives from the network.

use tuna_core::campaign::{Arm, Campaign, Recipe};
use tuna_core::experiment::{Method, SolverId};
use tuna_stats::json::{self, Value};

/// Hard cap on cells per study; a submission above this is refused.
pub const MAX_CELLS: usize = 100_000;

/// Hard cap on a study's `max_workers` declaration.
pub const MAX_WORKER_CAP: usize = 1_000_000;

/// Scheduling lane of a study.
///
/// `interactive` studies (short probes, `run-local`-style) preempt
/// `batch` work at cell boundaries: while any interactive study has
/// pending cells, the scheduler hands out no batch cells. Running batch
/// cells are never aborted — preemption waits for the cell boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Default lane for long-running campaigns.
    Batch,
    /// Preempting lane for short probes.
    Interactive,
}

impl Lane {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Lane::Batch => "batch",
            Lane::Interactive => "interactive",
        }
    }
}

/// A validated study submission.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// Study name: unique per tenant namespace, `[A-Za-z0-9._-]`, also
    /// the stem of the on-disk spec/store files.
    pub name: String,
    /// Tenant namespace the study belongs to. `None` on the wire means
    /// "whoever is submitting" — the router fills in the authenticated
    /// tenant before the manager sees the spec. The default tenant
    /// stays implicit (the manager normalizes it back to `None`) so a
    /// loopback spec's persisted bytes are exactly the pre-tenant ones.
    pub tenant: Option<String>,
    /// Scheduling lane (default [`Lane::Batch`]).
    pub lane: Lane,
    /// Per-study worker cap: at most this many of the study's cells in
    /// flight at once (`0` = unlimited, the default).
    pub max_workers: usize,
    /// Campaign root seed.
    pub seed: u64,
    /// Independent runs (seeds) per (workload, arm).
    pub runs: usize,
    /// Tuning rounds for protocol arms.
    pub rounds: usize,
    /// Optimizer (solver registry name) driving the arms.
    pub optimizer: SolverId,
    /// Workload names (validated against [`tuna_workloads::all_workloads`]).
    pub workloads: Vec<String>,
    /// `(label, method)` arms.
    pub arms: Vec<(String, Method)>,
}

fn method_wire_name(m: &Method) -> &'static str {
    match m {
        Method::Tuna => "tuna",
        Method::TunaNoOutlier => "tuna-no-outlier",
        Method::TunaNoAdjuster => "tuna-no-adjuster",
        Method::Traditional => "traditional",
        Method::TraditionalExtended { .. } => "traditional-extended",
        Method::NaiveDistributed { .. } => "naive-distributed",
        Method::DefaultConfig => "default",
    }
}

fn parse_method(arm: &Value) -> Result<Method, String> {
    let name = arm
        .get("method")
        .and_then(Value::as_str)
        .ok_or("arm lacks a string 'method'")?;
    let samples = || -> Result<usize, String> {
        let n = arm
            .get("samples")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("method '{name}' requires a numeric 'samples'"))?;
        if n.fract() != 0.0 || !(1.0..=1e9).contains(&n) {
            return Err(format!("'samples' must be a positive integer, got {n}"));
        }
        Ok(n as usize)
    };
    match name {
        "tuna" => Ok(Method::Tuna),
        "tuna-no-outlier" => Ok(Method::TunaNoOutlier),
        "tuna-no-adjuster" => Ok(Method::TunaNoAdjuster),
        "traditional" => Ok(Method::Traditional),
        "traditional-extended" => Ok(Method::TraditionalExtended {
            samples: samples()?,
        }),
        "naive-distributed" => Ok(Method::NaiveDistributed {
            samples: samples()?,
        }),
        "default" => Ok(Method::DefaultConfig),
        other => Err(format!(
            "unknown method '{other}' (expected tuna | tuna-no-outlier | tuna-no-adjuster | \
             traditional | traditional-extended | naive-distributed | default)"
        )),
    }
}

/// Whether a name is usable as a study id and file stem.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !name.starts_with('.')
}

fn parse_u64_field(obj: &Value, name: &str, default: Option<u64>) -> Result<u64, String> {
    match obj.get(name) {
        None => default.ok_or_else(|| format!("missing field '{name}'")),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| format!("'{name}' must be a number"))?;
            if x.fract() != 0.0 || !(0.0..=1.8e19).contains(&x) {
                return Err(format!("'{name}' must be a non-negative integer, got {x}"));
            }
            Ok(x as u64)
        }
    }
}

impl StudySpec {
    /// Parses and validates a submission document.
    ///
    /// # Errors
    ///
    /// Returns a client-facing message on malformed JSON, unknown
    /// workloads/methods/optimizers, invalid names or labels, or a grid
    /// over [`MAX_CELLS`].
    pub fn parse(text: &str) -> Result<StudySpec, String> {
        let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        if v.as_obj().is_none() {
            return Err("study spec must be a JSON object".into());
        }

        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing string field 'name'")?
            .to_string();
        if !valid_name(&name) {
            return Err(format!(
                "invalid study name {name:?}: use 1-128 chars of [A-Za-z0-9._-], not starting with '.'"
            ));
        }

        let tenant = match v.get("tenant").map(|t| t.as_str()) {
            None => None,
            Some(Some(t)) if valid_name(t) => Some(t.to_string()),
            Some(Some(t)) => return Err(format!("invalid tenant name {t:?}")),
            Some(None) => return Err("'tenant' must be a string".into()),
        };

        let lane = match v.get("lane").map(|l| l.as_str()) {
            None => Lane::Batch,
            Some(Some("batch")) => Lane::Batch,
            Some(Some("interactive")) => Lane::Interactive,
            Some(Some(other)) => {
                return Err(format!(
                    "unknown lane '{other}' (expected batch | interactive)"
                ))
            }
            Some(None) => return Err("'lane' must be a string".into()),
        };

        let max_workers = parse_u64_field(&v, "max_workers", Some(0))? as usize;
        if max_workers > MAX_WORKER_CAP {
            return Err(format!("'max_workers' must be at most {MAX_WORKER_CAP}"));
        }

        let seed = parse_u64_field(&v, "seed", Some(42))?;
        let runs = parse_u64_field(&v, "runs", Some(1))? as usize;
        let rounds = parse_u64_field(&v, "rounds", Some(96))? as usize;
        if runs == 0 || rounds == 0 {
            return Err("'runs' and 'rounds' must be at least 1".into());
        }

        // Any solver-registry name is a valid wire value; the original
        // "smac"/"gp" submissions parse unchanged.
        let optimizer = match v.get("optimizer").map(|o| o.as_str()) {
            None => SolverId::smac(),
            Some(Some(name)) => SolverId::new(name)?,
            Some(None) => return Err("'optimizer' must be a string".into()),
        };

        let known = tuna_workloads::all_workloads();
        let workloads = v
            .get("workloads")
            .and_then(Value::as_arr)
            .ok_or("missing array field 'workloads'")?
            .iter()
            .map(|w| {
                let name = w.as_str().ok_or("workload entries must be strings")?;
                if known.iter().any(|k| k.name == name) {
                    Ok(name.to_string())
                } else {
                    let names: Vec<&str> = known.iter().map(|k| k.name).collect();
                    Err(format!(
                        "unknown workload '{name}' (expected one of {names:?})"
                    ))
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        if workloads.is_empty() {
            return Err("'workloads' must not be empty".into());
        }

        let arms = v
            .get("arms")
            .and_then(Value::as_arr)
            .ok_or("missing array field 'arms'")?
            .iter()
            .map(|arm| {
                let label = arm
                    .get("label")
                    .and_then(Value::as_str)
                    .ok_or("arm lacks a string 'label'")?
                    .to_string();
                if label.is_empty()
                    || label.len() > 128
                    || label.contains(',')
                    || label.contains('\n')
                {
                    return Err(format!(
                        "invalid arm label {label:?}: 1-128 chars, no commas or newlines"
                    ));
                }
                Ok((label, parse_method(arm)?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        if arms.is_empty() {
            return Err("'arms' must not be empty".into());
        }
        let mut labels: Vec<&str> = arms.iter().map(|(l, _)| l.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() != arms.len() {
            return Err("arm labels must be unique".into());
        }

        // Checked arithmetic: runs is attacker-controlled and can sit
        // near u64::MAX, so an unchecked product would overflow (panic
        // in debug, wrap past the limit in release).
        workloads
            .len()
            .checked_mul(arms.len())
            .and_then(|x| x.checked_mul(runs))
            .filter(|&c| c <= MAX_CELLS)
            .ok_or_else(|| format!("study declares more than {MAX_CELLS} cells"))?;

        Ok(StudySpec {
            name,
            tenant,
            lane,
            max_workers,
            seed,
            runs,
            rounds,
            optimizer,
            workloads,
            arms,
        })
    }

    /// The canonical serialization — what the daemon persists and what
    /// [`StudySpec::parse`] round-trips.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {},\n", json::quote(&self.name)));
        // Tenant-era fields serialize only when set so that the
        // canonical form of a pre-tenant spec is byte-identical to what
        // a pre-tenant daemon persisted.
        if let Some(tenant) = &self.tenant {
            out.push_str(&format!("  \"tenant\": {},\n", json::quote(tenant)));
        }
        if self.lane != Lane::Batch {
            out.push_str(&format!("  \"lane\": \"{}\",\n", self.lane.label()));
        }
        if self.max_workers > 0 {
            out.push_str(&format!("  \"max_workers\": {},\n", self.max_workers));
        }
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"runs\": {},\n", self.runs));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!(
            "  \"optimizer\": \"{}\",\n",
            self.optimizer.as_str()
        ));
        out.push_str(&format!(
            "  \"workloads\": [{}],\n",
            self.workloads
                .iter()
                .map(|w| json::quote(w))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"arms\": [\n");
        for (i, (label, method)) in self.arms.iter().enumerate() {
            let samples = match method {
                Method::TraditionalExtended { samples } | Method::NaiveDistributed { samples } => {
                    format!(", \"samples\": {samples}")
                }
                _ => String::new(),
            };
            out.push_str(&format!(
                "    {{\"label\": {}, \"method\": \"{}\"{samples}}}{}\n",
                json::quote(label),
                method_wire_name(method),
                if i + 1 == self.arms.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The number of cells the spec declares (validated against
    /// [`MAX_CELLS`] at parse time, so this cannot overflow).
    pub fn n_cells(&self) -> usize {
        self.workloads.len() * self.arms.len() * self.runs
    }

    /// Builds the campaign this spec declares. Infallible after
    /// [`StudySpec::parse`]'s validation.
    ///
    /// The tenant, lane and worker cap deliberately do *not* enter the
    /// campaign: they say who owns the study and when its cells run,
    /// never what the cells compute — so the campaign digest (and every
    /// result byte) is independent of scheduling policy.
    pub fn to_campaign(&self) -> Campaign {
        let known = tuna_workloads::all_workloads();
        let workloads = self
            .workloads
            .iter()
            .map(|name| {
                known
                    .iter()
                    .find(|k| k.name == name)
                    .expect("validated workload name")
                    .clone()
            })
            .collect();
        Campaign {
            name: self.name.clone(),
            seed: self.seed,
            runs: self.runs,
            rounds: self.rounds,
            optimizer: self.optimizer.clone(),
            workloads,
            arms: self
                .arms
                .iter()
                .map(|(label, method)| Arm::new(label.clone(), Recipe::protocol(*method)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_text() -> String {
        r#"{
            "name": "demo-1",
            "seed": 7,
            "runs": 2,
            "rounds": 3,
            "workloads": ["tpcc", "ycsb-c"],
            "arms": [
                {"label": "TUNA", "method": "tuna"},
                {"label": "Naive", "method": "naive-distributed", "samples": 50},
                {"label": "Default", "method": "default"}
            ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_and_roundtrips_canonically() {
        let spec = StudySpec::parse(&demo_text()).unwrap();
        assert_eq!(spec.name, "demo-1");
        assert_eq!(spec.arms.len(), 3);
        assert_eq!(spec.arms[1].1, Method::NaiveDistributed { samples: 50 });
        let canonical = spec.to_json();
        let reparsed = StudySpec::parse(&canonical).unwrap();
        assert_eq!(reparsed, spec);
        // Canonical serialization is a fixed point.
        assert_eq!(reparsed.to_json(), canonical);
    }

    #[test]
    fn campaign_matches_declaration() {
        let spec = StudySpec::parse(&demo_text()).unwrap();
        let c = spec.to_campaign();
        assert_eq!(c.n_cells(), 2 * 3 * 2);
        assert_eq!(c.seed, 7);
        assert_eq!(c.workloads[1].name, "ycsb-c");
        assert_eq!(c.arms[0].label, "TUNA");
        // Same spec, same digest — the resume identity.
        assert_eq!(c.digest(), spec.to_campaign().digest());
    }

    #[test]
    fn defaults_are_filled_in() {
        let spec = StudySpec::parse(
            r#"{"name": "d", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.runs, 1);
        assert_eq!(spec.rounds, 96);
        assert_eq!(spec.optimizer, SolverId::smac());
        assert_eq!(spec.tenant, None);
        assert_eq!(spec.lane, Lane::Batch);
        assert_eq!(spec.max_workers, 0);
    }

    #[test]
    fn tenant_fields_round_trip_and_stay_out_of_the_campaign() {
        let spec = StudySpec::parse(
            r#"{"name": "probe", "tenant": "alice", "lane": "interactive",
                "max_workers": 2, "runs": 2, "rounds": 2,
                "workloads": ["tpcc"],
                "arms": [{"label": "x", "method": "default"}]}"#,
        )
        .unwrap();
        assert_eq!(spec.tenant.as_deref(), Some("alice"));
        assert_eq!(spec.lane, Lane::Interactive);
        assert_eq!(spec.max_workers, 2);
        assert_eq!(spec.n_cells(), 2);
        let canonical = spec.to_json();
        let reparsed = StudySpec::parse(&canonical).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.to_json(), canonical);
        // Scheduling policy never reaches the campaign digest: the same
        // declaration under any tenant/lane/cap computes the same cells.
        let mut plain = spec.clone();
        plain.tenant = None;
        plain.lane = Lane::Batch;
        plain.max_workers = 0;
        assert_eq!(spec.to_campaign().digest(), plain.to_campaign().digest());
        // An explicit "lane": "batch" normalizes away (canonical form
        // omits defaults), so pre-tenant canonical bytes are unchanged.
        let batch = StudySpec::parse(
            r#"{"name": "d", "lane": "batch", "workloads": ["tpcc"],
                "arms": [{"label": "x", "method": "default"}]}"#,
        )
        .unwrap();
        assert!(!batch.to_json().contains("lane"), "{}", batch.to_json());
    }

    #[test]
    fn rejects_bad_specs() {
        for (text, needle) in [
            ("not json", "invalid JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"workloads": [], "arms": []}"#, "'name'"),
            (
                r#"{"name": "bad name!", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "invalid study name",
            ),
            (
                r#"{"name": "d", "workloads": ["nope"], "arms": [{"label": "x", "method": "default"}]}"#,
                "unknown workload",
            ),
            (
                r#"{"name": "d", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "frob"}]}"#,
                "unknown method",
            ),
            (
                r#"{"name": "d", "workloads": ["tpcc"], "arms": [{"label": "a,b", "method": "default"}]}"#,
                "invalid arm label",
            ),
            (
                r#"{"name": "d", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "naive-distributed"}]}"#,
                "'samples'",
            ),
            (
                r#"{"name": "d", "runs": 0, "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "at least 1",
            ),
            (
                r#"{"name": "d", "runs": 2.5, "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "non-negative integer",
            ),
            (
                r#"{"name": "d", "runs": 1000000, "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "cells",
            ),
            // Near-u64::MAX runs must not overflow the cell product
            // (panic in debug, wrap past the limit in release).
            (
                r#"{"name": "d", "runs": 9223372036854775808, "workloads": ["tpcc", "ycsb-c"], "arms": [{"label": "x", "method": "default"}]}"#,
                "cells",
            ),
            (
                r#"{"name": "d", "optimizer": "adam", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "unknown solver",
            ),
            (
                r#"{"name": "d", "tenant": "bad tenant", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "invalid tenant name",
            ),
            (
                r#"{"name": "d", "lane": "express", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "unknown lane",
            ),
            (
                r#"{"name": "d", "max_workers": 2.5, "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}]}"#,
                "non-negative integer",
            ),
            (
                r#"{"name": "d", "workloads": ["tpcc"], "arms": [{"label": "x", "method": "default"}, {"label": "x", "method": "tuna"}]}"#,
                "unique",
            ),
        ] {
            let err = StudySpec::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("a-b_c.9"));
        assert!(!valid_name(""));
        assert!(!valid_name(".hidden"));
        assert!(!valid_name("has space"));
        assert!(!valid_name("path/../escape"));
        assert!(!valid_name(&"x".repeat(129)));
    }
}
