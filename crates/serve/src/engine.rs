//! The per-connection state machine behind both `tunad` and the
//! loopback simulator.
//!
//! [`Engine`] is sans-IO: it never touches a socket or a clock. A
//! *driver* owns the transport and the time source and narrates events
//! to the engine — [`Engine::connect`] on accept, [`Engine::recv`] on
//! readable bytes, [`Engine::on_eof`] on peer close, [`Engine::on_tick`]
//! as time passes — then drains [`Engine::pending_output`] back onto the
//! wire and reaps connections once [`Engine::wants_close`]. `tunad`
//! drives it from a readiness loop over non-blocking sockets with
//! milliseconds for time; `serve::sim` drives the *same* engine from a
//! virtual listener with scheduler ticks for time. One state machine,
//! two transports — which is what keeps the simulator's determinism
//! tests honest about the production path.
//!
//! Each connection walks read-header → read-body → dispatch →
//! write-response, with HTTP/1.1 keep-alive and pipelining on top:
//! parsed requests queue per-connection and are answered in order, and
//! responses always come out in request order (errors included — a
//! malformed frame's error response queues *behind* the valid requests
//! that preceded it).
//!
//! Budgets, and the structured shed responses they produce, live here
//! too ([`EngineConfig`]):
//!
//! - connection slots are bounded: past `max_connections` a new peer
//!   gets a JSON `503` and an immediate close;
//! - the per-connection pipeline queue is bounded: past `max_pending`
//!   undispatched requests the connection gets a `429` and closes;
//! - each request has a time budget from its first byte: a peer that
//!   stalls mid-frame (the slowloris) gets a `408` and closes instead
//!   of pinning the slot forever;
//! - total request bytes per connection are bounded (`429`), as is the
//!   number of requests served per connection (the last response simply
//!   closes).

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::daemon;
use crate::http::{Request, RequestParser, Response};
use crate::manager::StudyManager;

/// Cached handles into the process-global metrics registry — the same
/// relaxed-atomics-only discipline as the executor's instrumentation:
/// registration locks once, the hot path never does. All values are
/// u64 counts in the driver's clock units, so nothing here can perturb
/// a result byte (`instrument: false` exists purely so the perfgate
/// can prove that claim by measuring the overhead).
struct EngineMetrics {
    requests: tuna_obs::Counter,
    dispatch_latency: tuna_obs::Histogram,
    pipeline_depth: tuna_obs::Histogram,
    shed_503_capacity: tuna_obs::Counter,
    shed_429_depth: tuna_obs::Counter,
    shed_429_bytes: tuna_obs::Counter,
    shed_408_timeout: tuna_obs::Counter,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = tuna_obs::global();
        let shed = |class: &str| {
            reg.counter(
                &format!("tuna_serve_shed_total{{class=\"{class}\"}}"),
                "requests/connections shed, by shed class",
            )
        };
        EngineMetrics {
            requests: reg.counter("tuna_serve_requests_total", "requests dispatched"),
            dispatch_latency: reg.histogram(
                "tuna_serve_dispatch_latency",
                "decode-to-dispatch latency in driver clock units (ms under tunad, \
                 scheduler ticks under the simulator)",
                &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            ),
            pipeline_depth: reg.histogram(
                "tuna_serve_pipeline_depth",
                "per-connection queued requests at enqueue time",
                &[1, 2, 4, 8, 16, 32, 64],
            ),
            shed_503_capacity: shed("503-capacity"),
            shed_429_depth: shed("429-depth"),
            shed_429_bytes: shed("429-bytes"),
            shed_408_timeout: shed("408-timeout"),
        }
    })
}

/// Budgets and limits for an [`Engine`]. All time quantities are in the
/// driver's clock unit: milliseconds under `tunad`, scheduler ticks
/// under the simulator.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Connection slots; peers past this are shed with a `503`.
    pub max_connections: usize,
    /// Parsed-but-undispatched requests per connection; past this the
    /// connection is shed with a `429`.
    pub max_pending: usize,
    /// Requests served per connection before the engine closes it (the
    /// final response is framed `connection: close`).
    pub max_requests_per_conn: u64,
    /// Time budget from a request's first byte to its last; a
    /// connection stalled mid-frame past this gets a `408`.
    pub request_time_budget: u64,
    /// Keep-alive idle budget: a connection with no traffic and no
    /// buffered frame for this long is closed silently.
    pub idle_time_budget: u64,
    /// Total request bytes accepted per connection (`429` past it).
    pub conn_byte_budget: u64,
    /// Record decode-to-dispatch latencies (for the perfgate).
    pub record_latency: bool,
    /// Feed the process-global metrics registry (latency/depth
    /// histograms, shed counters). On by default; the perfgate's
    /// `obs/overhead` scenario turns it off for its control pass to
    /// measure the cost of instrumentation.
    pub instrument: bool,
}

impl EngineConfig {
    /// Budgets for the real daemon (milliseconds).
    pub fn daemon_default() -> Self {
        EngineConfig {
            max_connections: 1024,
            max_pending: 64,
            max_requests_per_conn: 4096,
            request_time_budget: 10_000,
            idle_time_budget: 60_000,
            conn_byte_budget: 64 * 1024 * 1024,
            record_latency: false,
            instrument: true,
        }
    }

    /// Budgets for the simulator (scheduler ticks).
    pub fn sim_default() -> Self {
        EngineConfig {
            max_connections: 4096,
            max_pending: 64,
            max_requests_per_conn: 4096,
            request_time_budget: 50,
            idle_time_budget: 1_000,
            conn_byte_budget: 64 * 1024 * 1024,
            record_latency: false,
            instrument: true,
        }
    }
}

/// An ordered unit of work on a connection: either a request awaiting
/// dispatch (stamped with when it finished decoding) or an
/// already-decided terminal response (parse error, shed). Keeping both
/// in one queue is what guarantees responses leave in request order.
#[derive(Debug)]
enum PendingItem {
    Request(Request, u64),
    Terminal(Response),
}

/// One connection's state.
#[derive(Debug)]
struct Conn {
    parser: RequestParser,
    pending: VecDeque<PendingItem>,
    out: Vec<u8>,
    /// Requests answered so far.
    served: u64,
    /// Request bytes received so far.
    bytes_in: u64,
    /// No further input is parsed (error answered, budget blown, EOF).
    input_closed: bool,
    /// Close once `pending` and `out` drain.
    close_after_flush: bool,
    /// When the currently-buffered partial frame started arriving.
    request_started: Option<u64>,
    /// Last time bytes arrived or a response was queued.
    last_activity: u64,
}

impl Conn {
    fn new(now: u64) -> Self {
        Conn {
            parser: RequestParser::new(),
            pending: VecDeque::new(),
            out: Vec::new(),
            served: 0,
            bytes_in: 0,
            input_closed: false,
            close_after_flush: false,
            request_started: None,
            last_activity: now,
        }
    }

    /// Queue a terminal response: it is answered in order, after the
    /// valid requests already pending, and then the connection closes.
    fn shed(&mut self, resp: Response) {
        self.pending.push_back(PendingItem::Terminal(resp));
        self.input_closed = true;
        self.request_started = None;
    }
}

/// The connection engine. See the module docs for the driver contract.
pub struct Engine {
    cfg: EngineConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    latencies: Vec<u64>,
    served_total: u64,
    shed_total: u64,
    timeout_total: u64,
}

impl Engine {
    /// An engine with the given budgets and no connections.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            conns: Vec::new(),
            free: Vec::new(),
            open: 0,
            latencies: Vec::new(),
            served_total: 0,
            shed_total: 0,
            timeout_total: 0,
        }
    }

    /// Registers a new connection, returning its id. When all
    /// `max_connections` slots are taken the connection is *accepted
    /// then shed*: its only output will be a structured `503` and
    /// [`Engine::wants_close`] goes true once that flushes — a visible
    /// refusal instead of a silent drop.
    pub fn connect(&mut self, now: u64) -> usize {
        let mut conn = Conn::new(now);
        if self.open >= self.cfg.max_connections {
            conn.shed(Response::error(
                503,
                "server at connection capacity; retry later",
            ));
            self.shed_total += 1;
            if self.cfg.instrument {
                engine_metrics().shed_503_capacity.inc();
            }
        }
        self.open += 1;
        match self.free.pop() {
            Some(id) => {
                self.conns[id] = Some(conn);
                id
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        }
    }

    /// Feeds received transport bytes into a connection's parser,
    /// queueing every complete request (and, on a framing error or a
    /// blown budget, the terminal error response).
    pub fn recv(&mut self, id: usize, bytes: &[u8], now: u64) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        if conn.input_closed {
            return;
        }
        conn.last_activity = now;
        conn.bytes_in += bytes.len() as u64;
        if conn.bytes_in > self.cfg.conn_byte_budget {
            conn.shed(Response::error(
                429,
                "connection byte budget exhausted; reconnect",
            ));
            self.shed_total += 1;
            if self.cfg.instrument {
                engine_metrics().shed_429_bytes.inc();
            }
            return;
        }
        conn.parser.feed(bytes);
        loop {
            match conn.parser.next_request() {
                Ok(Some(req)) => {
                    conn.request_started = None;
                    if conn.pending.len() >= self.cfg.max_pending {
                        conn.shed(Response::error(429, "pipeline depth exceeded; slow down"));
                        self.shed_total += 1;
                        if self.cfg.instrument {
                            engine_metrics().shed_429_depth.inc();
                        }
                        return;
                    }
                    conn.pending.push_back(PendingItem::Request(req, now));
                    if self.cfg.instrument {
                        engine_metrics()
                            .pipeline_depth
                            .observe(conn.pending.len() as u64);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    conn.shed(Response::of_http_error(&e));
                    return;
                }
            }
        }
        if conn.parser.mid_request() {
            conn.request_started.get_or_insert(now);
        }
    }

    /// Peer closed its write side. Mid-frame this queues the truncation
    /// error; between frames it is a clean close.
    pub fn on_eof(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        if conn.input_closed {
            conn.close_after_flush = true;
            return;
        }
        match conn.parser.eof_error() {
            Some(e) => conn.shed(Response::of_http_error(&e)),
            None => conn.input_closed = true,
        }
        conn.close_after_flush = true;
    }

    /// Dispatches every queued request (in connection-id order, then
    /// request order — deterministic) against the manager and
    /// serializes the responses into each connection's output buffer.
    /// Returns how many requests were dispatched.
    ///
    /// The driver calls this with the manager lock held; everything the
    /// engine does here is pure in-memory routing, so the lock is held
    /// only for the cheap part (cell execution happens on the worker
    /// pool, never here).
    pub fn dispatch(&mut self, mgr: &mut StudyManager, now: u64) -> usize {
        let mut dispatched = 0;
        for slot in &mut self.conns {
            let Some(conn) = slot.as_mut() else { continue };
            while let Some(item) = conn.pending.pop_front() {
                let (resp, close) = match item {
                    PendingItem::Request(req, decoded_at) => {
                        if self.cfg.record_latency {
                            self.latencies.push(now.saturating_sub(decoded_at));
                        }
                        if self.cfg.instrument {
                            let m = engine_metrics();
                            m.requests.inc();
                            m.dispatch_latency.observe(now.saturating_sub(decoded_at));
                        }
                        dispatched += 1;
                        conn.served += 1;
                        self.served_total += 1;
                        let close = req.close || conn.served >= self.cfg.max_requests_per_conn;
                        (daemon::handle(mgr, &req), close)
                    }
                    PendingItem::Terminal(resp) => {
                        if self.cfg.instrument {
                            mgr.note_shed(resp.status);
                        }
                        (resp, true)
                    }
                };
                let keep = !close && !conn.close_after_flush;
                conn.out.extend_from_slice(&resp.to_wire(keep));
                conn.last_activity = now;
                if !keep {
                    conn.close_after_flush = true;
                    conn.input_closed = true;
                    // Anything still queued behind a close is dropped:
                    // the peer asked to end the conversation.
                    conn.pending.clear();
                    break;
                }
            }
        }
        dispatched
    }

    /// Advances time: stalled mid-frame connections past their request
    /// budget are shed with a `408`; idle keep-alive connections past
    /// the idle budget are closed silently.
    pub fn on_tick(&mut self, now: u64) {
        for slot in &mut self.conns {
            let Some(conn) = slot.as_mut() else { continue };
            if conn.input_closed {
                continue;
            }
            if let Some(started) = conn.request_started {
                if now.saturating_sub(started) > self.cfg.request_time_budget {
                    conn.shed(Response::error(
                        408,
                        "request did not complete within its time budget",
                    ));
                    self.timeout_total += 1;
                    if self.cfg.instrument {
                        engine_metrics().shed_408_timeout.inc();
                    }
                }
            } else if conn.pending.is_empty()
                && conn.out.is_empty()
                && now.saturating_sub(conn.last_activity) > self.cfg.idle_time_budget
            {
                conn.input_closed = true;
                conn.close_after_flush = true;
            }
        }
    }

    /// Bytes queued for the wire on `id`.
    pub fn pending_output(&self, id: usize) -> &[u8] {
        self.conns
            .get(id)
            .and_then(Option::as_ref)
            .map_or(&[], |c| &c.out)
    }

    /// Marks `n` output bytes as written (a partial non-blocking write
    /// consumes a prefix).
    pub fn consume_output(&mut self, id: usize, n: usize) {
        if let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) {
            conn.out.drain(..n.min(conn.out.len()));
        }
    }

    /// Takes the full output buffer of `id` (the simulator's read).
    pub fn take_output(&mut self, id: usize) -> Vec<u8> {
        self.conns
            .get_mut(id)
            .and_then(Option::as_mut)
            .map(|c| std::mem::take(&mut c.out))
            .unwrap_or_default()
    }

    /// Whether the driver should close the transport: the engine has
    /// decided to end the connection and everything owed to the peer
    /// has been handed over.
    pub fn wants_close(&self, id: usize) -> bool {
        self.conns
            .get(id)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.close_after_flush && c.pending.is_empty() && c.out.is_empty())
    }

    /// Whether `id` is a live connection slot.
    pub fn is_open(&self, id: usize) -> bool {
        self.conns.get(id).and_then(Option::as_ref).is_some()
    }

    /// Whether the connection accepts further input (false once an
    /// error was answered, a budget blew, or EOF arrived).
    pub fn accepts_input(&self, id: usize) -> bool {
        self.conns
            .get(id)
            .and_then(Option::as_ref)
            .is_some_and(|c| !c.input_closed)
    }

    /// Frees a connection slot after the driver closed the transport.
    pub fn disconnect(&mut self, id: usize) {
        if let Some(slot) = self.conns.get_mut(id) {
            if slot.take().is_some() {
                self.open -= 1;
                self.free.push(id);
            }
        }
    }

    /// Open connection count.
    pub fn open_connections(&self) -> usize {
        self.open
    }

    /// Drains the recorded decode-to-dispatch latencies (clock units).
    pub fn take_latencies(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.latencies)
    }

    /// Requests dispatched over the engine's lifetime.
    pub fn served_total(&self) -> u64 {
        self.served_total
    }

    /// Connections shed (503/429) over the engine's lifetime.
    pub fn shed_total(&self) -> u64 {
        self.shed_total
    }

    /// Requests timed out (408) over the engine's lifetime.
    pub fn timeout_total(&self) -> u64 {
        self.timeout_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{request_bytes_with, split_responses};

    fn tiny_cfg() -> EngineConfig {
        EngineConfig {
            max_connections: 2,
            max_pending: 3,
            max_requests_per_conn: 16,
            request_time_budget: 10,
            idle_time_budget: 100,
            conn_byte_budget: 4096,
            record_latency: true,
            instrument: true,
        }
    }

    fn drive(engine: &mut Engine, mgr: &mut StudyManager, id: usize, bytes: &[u8], now: u64) {
        engine.recv(id, bytes, now);
        engine.dispatch(mgr, now);
    }

    #[test]
    fn keep_alive_answers_many_requests_on_one_connection() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        for t in 0..3u64 {
            drive(
                &mut engine,
                &mut mgr,
                id,
                &request_bytes_with("GET", "/healthz", "", true),
                t,
            );
        }
        let parts = split_responses(&engine.take_output(id)).unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|(s, _)| *s == 200));
        assert!(!engine.wants_close(id), "keep-alive stays open");
    }

    #[test]
    fn pipelined_requests_answered_in_order_then_close_honored() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        let mut bytes = request_bytes_with("GET", "/healthz", "", true);
        bytes.extend(request_bytes_with("GET", "/nope", "", true));
        bytes.extend(request_bytes_with("GET", "/healthz", "", false));
        drive(&mut engine, &mut mgr, id, &bytes, 1);
        let parts = split_responses(&engine.take_output(id)).unwrap();
        let statuses: Vec<u16> = parts.iter().map(|(s, _)| *s).collect();
        assert_eq!(statuses, vec![200, 404, 200]);
        assert!(engine.wants_close(id), "connection: close ends it");
    }

    #[test]
    fn malformed_frame_answers_valid_prefix_then_structured_error() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        let mut bytes = request_bytes_with("GET", "/healthz", "", true);
        bytes.extend_from_slice(b"BROKEN FRAME\r\n\r\n");
        bytes.extend(request_bytes_with("GET", "/healthz", "", true));
        drive(&mut engine, &mut mgr, id, &bytes, 1);
        let parts = split_responses(&engine.take_output(id)).unwrap();
        assert_eq!(parts.len(), 2, "valid prefix + one error, suffix dropped");
        assert_eq!(parts[0].0, 200);
        assert_eq!(parts[1].0, 400);
        assert!(parts[1].1.contains("\"error\""));
        assert!(engine.wants_close(id));
    }

    #[test]
    fn connection_capacity_sheds_with_503() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let a = engine.connect(0);
        let b = engine.connect(0);
        let c = engine.connect(0);
        engine.dispatch(&mut mgr, 0);
        assert!(!engine.wants_close(a) && !engine.wants_close(b));
        let parts = split_responses(&engine.take_output(c)).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 503);
        assert!(parts[0].1.contains("capacity"));
        assert!(engine.wants_close(c));
        assert_eq!(engine.shed_total(), 1);

        // Reaping a slot frees capacity.
        engine.disconnect(c);
        engine.disconnect(a);
        let d = engine.connect(1);
        engine.dispatch(&mut mgr, 1);
        assert!(engine.take_output(d).is_empty(), "slot freed, no shed");
    }

    #[test]
    fn pipeline_depth_sheds_with_429() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        let one = request_bytes_with("GET", "/healthz", "", true);
        let mut bytes = Vec::new();
        for _ in 0..5 {
            bytes.extend_from_slice(&one);
        }
        // No dispatch between frames: the queue must absorb all five.
        engine.recv(id, &bytes, 1);
        engine.dispatch(&mut mgr, 1);
        let parts = split_responses(&engine.take_output(id)).unwrap();
        assert_eq!(parts.len(), 4, "three served, then the 429");
        assert!(parts[..3].iter().all(|(s, _)| *s == 200));
        assert_eq!(parts[3].0, 429);
        assert!(engine.wants_close(id));
    }

    #[test]
    fn stalled_half_request_gets_408_after_budget() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        engine.recv(id, b"POST /v1/studies HTTP/1.1\r\ncontent-le", 1);
        engine.dispatch(&mut mgr, 1);
        assert!(engine.take_output(id).is_empty(), "no frame yet");
        for now in 2..=11 {
            engine.on_tick(now);
        }
        assert_eq!(engine.timeout_total(), 0, "budget not yet exceeded");
        engine.on_tick(12);
        engine.dispatch(&mut mgr, 12);
        let parts = split_responses(&engine.take_output(id)).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 408);
        assert!(engine.wants_close(id));
        assert_eq!(engine.timeout_total(), 1);
    }

    #[test]
    fn idle_keep_alive_connection_closes_silently() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        drive(
            &mut engine,
            &mut mgr,
            id,
            &request_bytes_with("GET", "/healthz", "", true),
            1,
        );
        let _ = engine.take_output(id);
        engine.on_tick(101);
        assert!(!engine.wants_close(id), "within idle budget");
        engine.on_tick(102);
        assert!(engine.wants_close(id), "past idle budget");
        assert!(engine.pending_output(id).is_empty(), "idle close is silent");
    }

    #[test]
    fn byte_budget_sheds_with_429() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        let big = vec![b'x'; 5000];
        engine.recv(id, &big, 1);
        engine.dispatch(&mut mgr, 1);
        let parts = split_responses(&engine.take_output(id)).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 429);
        assert!(parts[0].1.contains("byte budget"));
    }

    #[test]
    fn eof_mid_frame_is_truncation_between_frames_is_clean() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let a = engine.connect(0);
        engine.recv(a, b"GET /healthz HTTP/1.1\r\nhos", 1);
        engine.on_eof(a);
        engine.dispatch(&mut mgr, 1);
        let parts = split_responses(&engine.take_output(a)).unwrap();
        assert_eq!(parts[0].0, 400);
        assert!(parts[0].1.contains("mid-line"), "{}", parts[0].1);

        let b = engine.connect(0);
        drive(
            &mut engine,
            &mut mgr,
            b,
            &request_bytes_with("GET", "/healthz", "", true),
            1,
        );
        let _ = engine.take_output(b);
        engine.on_eof(b);
        assert!(engine.wants_close(b));
        assert!(engine.pending_output(b).is_empty(), "clean close is silent");
    }

    #[test]
    fn latencies_measure_decode_to_dispatch() {
        let mut mgr = StudyManager::in_memory();
        let mut engine = Engine::new(tiny_cfg());
        let id = engine.connect(0);
        engine.recv(id, &request_bytes_with("GET", "/healthz", "", true), 3);
        engine.dispatch(&mut mgr, 7);
        assert_eq!(engine.take_latencies(), vec![4]);
        assert_eq!(engine.served_total(), 1);
    }
}
