//! `tuna-ctl` — the client for a running `tunad`.
//!
//! ```text
//! tuna-ctl [--addr 127.0.0.1:4917] [--token T] submit --spec FILE
//! tuna-ctl [--addr ...] [--token T]            list
//! tuna-ctl [--addr ...] [--token T]            status  NAME
//! tuna-ctl [--addr ...] [--token T]            results NAME
//! tuna-ctl [--addr ...] [--token T]            watch   NAME [--timeout-s 600]
//! tuna-ctl [--addr ...] [--token T]            cancel  NAME
//! tuna-ctl [--addr ...] [--token T]            tenants
//! tuna-ctl [--addr ...] [--token T]            trace   NAME [--json]
//! tuna-ctl [--addr ...]                        metrics [--raw]
//! tuna-ctl                                     run-local --spec FILE
//! ```
//!
//! `--token` sends `authorization: Bearer <T>` on every request — how a
//! client authenticates against a daemon running with a tenant table
//! (`tunad --tenants`). Loopback daemons ignore it.
//!
//! A refused request prints the daemon's structured reason to stderr —
//! `tuna-ctl: refused (429 cell-budget): ...` — and exits with a
//! distinct code per refusal class (see `exit_code_for`), so scripts
//! can branch on *why* without parsing stderr.
//!
//! Every remote subcommand speaks HTTP/1.1 keep-alive over a
//! persistent connection ([`Client`]) and prints the JSON body to
//! stdout (non-2xx replies go to stderr with a non-zero exit). One-shot
//! subcommands make a single request on it; `watch` polls status on the
//! *same* connection until the study is `done` (exit 0), `cancelled`
//! (exit 3) or the timeout lapses (exit 4) — one TCP connection for the
//! whole watch, with a transparent reconnect if the daemon sheds or
//! times the connection out between polls. `run-local` runs the same
//! spec as a batch campaign in-process — no daemon — and prints the
//! canonical results document, which is byte-identical to what
//! `results` fetches from a daemon that ran the same study: that
//! equality is the serve subsystem's determinism contract, and the CI
//! smoke job diffs exactly these two outputs.
//!
//! `trace` renders the study's convergence document (best-cost-so-far
//! per arm, per cell) as one sparkline per arm — `--json` prints the
//! raw document instead. `metrics` fetches the Prometheus exposition
//! and annotates each histogram with a per-bucket sparkline — `--raw`
//! prints the exposition untouched.
//!
//! `watch` treats load sheds as transient: a `429` or `503` poll reply
//! prints the daemon's structured reason to stderr, backs off
//! (exponentially, capped), and keeps watching until the deadline —
//! only auth, validation, and routing errors abort the watch.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tuna_core::campaign::{CampaignRunner, ResultStore};
use tuna_serve::api::StudySpec;
use tuna_serve::http::{self, ResponseParser};
use tuna_stats::json;

fn usage() -> ! {
    eprintln!(
        "usage: tuna-ctl [--addr HOST:PORT] [--token TOKEN] <submit --spec FILE | list | \
         status NAME | results NAME | watch NAME [--timeout-s S] | cancel NAME | tenants | \
         trace NAME [--json] | metrics [--raw] | run-local --spec FILE>"
    );
    std::process::exit(2);
}

/// Exit code for a refused request — distinct per refusal class, so
/// scripts can branch on the kind of refusal without parsing stderr.
fn exit_code_for(status: u16) -> i32 {
    match status {
        400 => 10, // malformed request/spec
        401 => 11, // missing token
        403 => 12, // bad token / wrong tenant
        404 => 13, // unknown study or route
        405 => 14, // method not allowed
        408 => 15, // request timeout
        409 => 16, // conflicting declaration
        413 => 17, // payload too large
        429 => 18, // admission or load refusal
        s if (400..500).contains(&s) => 19,
        _ => 20, // 5xx and anything else
    }
}

/// Renders a non-2xx reply for stderr, surfacing the structured
/// `reason` slug when the body carries one.
fn describe_refusal(status: u16, body: &str) -> String {
    let v = json::parse(body).ok();
    let err = v.as_ref().and_then(|v| v.get("error"));
    let reason = err
        .and_then(|e| e.get("reason"))
        .and_then(json::Value::as_str);
    let message = err
        .and_then(|e| e.get("message"))
        .and_then(json::Value::as_str);
    match (reason, message) {
        (Some(r), Some(m)) => format!("refused ({status} {r}): {m}"),
        (None, Some(m)) => format!("daemon replied {status}: {m}"),
        _ => format!("daemon replied {status}: {}", body.trim_end()),
    }
}

fn refuse(status: u16, body: &str) -> ! {
    eprintln!("tuna-ctl: {}", describe_refusal(status, body));
    std::process::exit(exit_code_for(status));
}

/// Whether a `watch` poll reply is a transient load shed worth retrying
/// (admission/pipeline `429`, capacity `503`) rather than a hard error
/// (auth, validation, unknown study) that should abort the watch.
fn watch_should_retry(status: u16) -> bool {
    matches!(status, 429 | 503)
}

/// Backoff before the next `watch` poll after `attempt` consecutive
/// sheds: exponential from 500ms, capped at 5s. Attempt 0 (no shed)
/// is the normal 250ms poll cadence.
fn watch_backoff_ms(attempt: u32) -> u64 {
    if attempt == 0 {
        return 250;
    }
    (500u64 << (attempt - 1).min(4)).min(5_000)
}

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders values as a unicode sparkline, scaled min→max. Non-finite
/// values (quarantined NaN costs) render as `·`. Lower is better for
/// costs, so a converging series reads `█▆▃▁▁`.
fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                '·'
            } else if max > min {
                let t = (v - min) / (max - min);
                SPARKS[((t * 7.0).round() as usize).min(7)]
            } else {
                SPARKS[0]
            }
        })
        .collect()
}

/// Renders the trace document fetched from
/// `GET /v1/studies/<name>/trace` for a terminal: one line per arm per
/// cell, with the best-so-far series as a sparkline.
fn render_trace(body: &str) -> Result<String, String> {
    let v = json::parse(body).map_err(|e| format!("malformed trace document: {e}"))?;
    let study = v.get("study").and_then(json::Value::as_str).unwrap_or("?");
    let n_cells = v
        .get("n_cells")
        .and_then(json::Value::as_f64)
        .unwrap_or(0.0) as u64;
    let cells = v
        .get("cells")
        .and_then(json::Value::as_arr)
        .ok_or("trace document lacks 'cells'")?;
    let mut out = format!("study {study}: {}/{n_cells} cells traced\n", cells.len());
    for cell in cells {
        let idx = cell
            .get("cell")
            .and_then(json::Value::as_f64)
            .unwrap_or(-1.0) as i64;
        let workload = cell
            .get("workload")
            .and_then(json::Value::as_str)
            .unwrap_or("?");
        let arm = cell.get("arm").and_then(json::Value::as_str).unwrap_or("?");
        let run = cell.get("run").and_then(json::Value::as_f64).unwrap_or(0.0) as u64;
        out.push_str(&format!("cell {idx} {workload}/{arm} run {run}\n"));
        let arms = cell
            .get("arms")
            .and_then(json::Value::as_arr)
            .ok_or("cell lacks 'arms'")?;
        if arms.is_empty() {
            out.push_str("  (arm does not tune)\n");
        }
        for a in arms {
            let label = a.get("label").and_then(json::Value::as_str).unwrap_or("?");
            let series: Vec<f64> = a
                .get("series")
                .and_then(json::Value::as_arr)
                .map(|pts| {
                    pts.iter()
                        .filter_map(json::Value::as_arr)
                        .filter_map(|p| p.get(1))
                        .map(|v| v.as_f64().unwrap_or(f64::NAN))
                        .collect()
                })
                .unwrap_or_default();
            let best = series
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(f64::INFINITY, f64::min);
            let best = if best.is_finite() {
                format!("{best:.6}")
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "  {label:<8} {:>3} rounds  best {best}  {}\n",
                series.len(),
                sparkline(&series)
            ));
        }
    }
    Ok(out)
}

/// Annotates a Prometheus exposition: after each histogram's `_count`
/// line, inserts a comment carrying a per-bucket (non-cumulative)
/// sparkline, so a terminal reader sees the shape without arithmetic.
fn render_metrics(text: &str) -> String {
    let mut out = String::new();
    let mut family = String::new();
    let mut cumulative: Vec<f64> = Vec::new();
    for line in text.lines() {
        out.push_str(line);
        out.push('\n');
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            family = rest.split(' ').next().unwrap_or("").to_string();
            cumulative.clear();
            continue;
        }
        if line.starts_with('#') || family.is_empty() {
            continue;
        }
        let bucket_prefix = format!("{family}_bucket{{");
        if line.starts_with(&bucket_prefix) {
            if let Some(v) = line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()) {
                cumulative.push(v);
            }
        } else if line.starts_with(&format!("{family}_count")) && !cumulative.is_empty() {
            // De-cumulate: per-bucket counts are what the eye wants.
            let mut per_bucket = Vec::with_capacity(cumulative.len());
            let mut prev = 0.0;
            for c in &cumulative {
                per_bucket.push(c - prev);
                prev = *c;
            }
            out.push_str(&format!("# SPARK {family} {}\n", sparkline(&per_bucket)));
            cumulative.clear();
        }
    }
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("tuna-ctl: {msg}");
    std::process::exit(1);
}

/// A keep-alive HTTP client holding one persistent connection to the
/// daemon. Requests are framed `connection: keep-alive` and responses
/// are framed by `content-length`, so consecutive calls reuse the
/// socket; when the daemon closes it (idle budget, shed, restart) the
/// next call transparently reconnects once.
struct Client {
    addr: String,
    token: Option<String>,
    stream: Option<TcpStream>,
}

impl Client {
    fn new(addr: &str, token: Option<String>) -> Self {
        Client {
            addr: addr.to_string(),
            token,
            stream: None,
        }
    }

    fn connected(&mut self) -> &mut TcpStream {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .unwrap_or_else(|e| fail(&format!("cannot connect to {}: {e}", self.addr)));
            let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
            self.stream = Some(stream);
        }
        self.stream.as_mut().expect("just connected")
    }

    /// One request/response exchange on the persistent connection.
    fn call(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        // Two attempts: a stale keep-alive socket (daemon closed it
        // between calls) surfaces as a send/receive error on the first
        // try and a fresh connection handles the second.
        for attempt in 0..2 {
            let reused = self.stream.is_some();
            let token = self.token.clone();
            let stream = self.connected();
            let outcome = Self::exchange(stream, method, path, body, token.as_deref());
            match outcome {
                Ok(reply) => {
                    if !reply.keep_alive {
                        self.stream = None;
                    }
                    return (reply.status, reply.body);
                }
                Err(e) => {
                    self.stream = None;
                    // A failure on a fresh connection is real; only a
                    // reused socket earns the silent retry.
                    if attempt == 1 || !reused {
                        fail(&e);
                    }
                }
            }
        }
        unreachable!("loop returns or fails");
    }

    fn exchange(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: &str,
        token: Option<&str>,
    ) -> Result<http::WireResponse, String> {
        stream
            .write_all(&http::request_bytes_auth(method, path, body, true, token))
            .map_err(|e| format!("send failed: {e}"))?;
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(reply) = parser
                .next_response()
                .map_err(|e| format!("malformed response: {e}"))?
            {
                return Ok(reply);
            }
            let n = stream
                .read(&mut buf)
                .map_err(|e| format!("receive failed: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-response".to_string());
            }
            parser.feed(&buf[..n]);
        }
    }
}

/// Prints a 2xx body to stdout; anything else goes to stderr with the
/// structured reason and a per-class exit code.
fn expect_ok((status, body): (u16, String)) {
    if (200..300).contains(&status) {
        print!("{body}");
        if !body.ends_with('\n') {
            println!();
        }
    } else {
        refuse(status, &body);
    }
}

fn read_spec(path: &str) -> String {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read spec {path}: {e}")));
    // Client-side validation gives a better error than a 400 round-trip
    // and is required for run-local anyway.
    if let Err(e) = StudySpec::parse(&text) {
        fail(&format!("spec {path} is invalid: {e}"));
    }
    text
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let addr = match flag_value(&argv, "--addr") {
        Some(a) => {
            let i = argv.iter().position(|x| x == "--addr").expect("present");
            argv.drain(i..=i + 1);
            a
        }
        None => "127.0.0.1:4917".to_string(),
    };
    let token = flag_value(&argv, "--token").inspect(|_| {
        let i = argv.iter().position(|x| x == "--token").expect("present");
        argv.drain(i..=i + 1);
    });
    let Some(command) = argv.first().cloned() else {
        usage();
    };
    let name_arg = || -> String {
        argv.get(1)
            .filter(|n| !n.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| usage())
    };

    let mut client = Client::new(&addr, token);
    match command.as_str() {
        "tenants" => expect_ok(client.call("GET", "/v1/tenants", "")),
        "submit" => {
            let spec_path = flag_value(&argv, "--spec").unwrap_or_else(|| usage());
            expect_ok(client.call("POST", "/v1/studies", &read_spec(&spec_path)));
        }
        "list" => expect_ok(client.call("GET", "/v1/studies", "")),
        "status" => expect_ok(client.call("GET", &format!("/v1/studies/{}", name_arg()), "")),
        "results" => {
            expect_ok(client.call("GET", &format!("/v1/studies/{}/results", name_arg()), ""))
        }
        "cancel" => {
            expect_ok(client.call("POST", &format!("/v1/studies/{}/cancel", name_arg()), ""))
        }
        "trace" => {
            let name = name_arg();
            let (status, body) = client.call("GET", &format!("/v1/studies/{name}/trace"), "");
            if !(200..300).contains(&status) {
                refuse(status, &body);
            }
            if argv.iter().any(|a| a == "--json") {
                print!("{body}");
            } else {
                match render_trace(&body) {
                    Ok(rendered) => print!("{rendered}"),
                    Err(e) => fail(&e),
                }
            }
        }
        "metrics" => {
            let (status, body) = client.call("GET", "/metrics", "");
            if !(200..300).contains(&status) {
                refuse(status, &body);
            }
            if argv.iter().any(|a| a == "--raw") {
                print!("{body}");
            } else {
                print!("{}", render_metrics(&body));
            }
        }
        "watch" => {
            let name = name_arg();
            let timeout_s: u64 = flag_value(&argv, "--timeout-s")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(600);
            let deadline = Instant::now() + Duration::from_secs(timeout_s);
            let mut sheds: u32 = 0;
            // The whole watch loop rides one keep-alive connection.
            loop {
                let (status, body) = client.call("GET", &format!("/v1/studies/{name}"), "");
                if status != 200 {
                    // Load sheds are transient: say why, back off, and
                    // keep watching. Everything else aborts the watch.
                    if !watch_should_retry(status) {
                        refuse(status, &body);
                    }
                    sheds += 1;
                    eprintln!(
                        "tuna-ctl: {name}: {} (retrying)",
                        describe_refusal(status, &body)
                    );
                    if Instant::now() >= deadline {
                        eprintln!("tuna-ctl: watch timed out after {timeout_s}s");
                        std::process::exit(4);
                    }
                    std::thread::sleep(Duration::from_millis(watch_backoff_ms(sheds)));
                    continue;
                }
                sheds = 0;
                let state = json::parse(&body)
                    .ok()
                    .and_then(|v| {
                        v.get("state")
                            .and_then(json::Value::as_str)
                            .map(String::from)
                    })
                    .unwrap_or_else(|| fail("status reply lacks a state"));
                eprintln!("tuna-ctl: {name}: {}", body.trim_end());
                match state.as_str() {
                    "done" => {
                        print!("{body}");
                        return;
                    }
                    "cancelled" => std::process::exit(3),
                    _ => {}
                }
                if Instant::now() >= deadline {
                    eprintln!("tuna-ctl: watch timed out after {timeout_s}s");
                    std::process::exit(4);
                }
                std::thread::sleep(Duration::from_millis(250));
            }
        }
        "run-local" => {
            let spec_path = flag_value(&argv, "--spec").unwrap_or_else(|| usage());
            let spec = StudySpec::parse(&read_spec(&spec_path)).expect("validated by read_spec");
            let campaign = spec.to_campaign();
            let mut store = ResultStore::in_memory(&campaign);
            CampaignRunner::from_env().run(&campaign, &mut store);
            print!("{}", store.to_json(&campaign));
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_refusal_class() {
        let mapped = [
            (400, 10),
            (401, 11),
            (403, 12),
            (404, 13),
            (405, 14),
            (408, 15),
            (409, 16),
            (413, 17),
            (429, 18),
        ];
        for (status, code) in mapped {
            assert_eq!(exit_code_for(status), code, "status {status}");
        }
        // Every mapped class is distinct, and none collides with the
        // generic 4xx/5xx buckets or the usage/transport codes (1-4).
        let mut codes: Vec<i32> = mapped.iter().map(|(_, c)| *c).collect();
        codes.extend([exit_code_for(418), exit_code_for(500)]);
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "exit codes must be distinct");
        assert_eq!(exit_code_for(418), 19);
        assert_eq!(exit_code_for(500), 20);
        assert_eq!(exit_code_for(503), 20);
        assert!(codes.iter().all(|c| *c >= 10));
    }

    #[test]
    fn watch_retries_sheds_and_aborts_hard_errors() {
        // Load sheds (admission 429, capacity 503) are transient.
        assert!(watch_should_retry(429));
        assert!(watch_should_retry(503));
        // Auth, validation, routing, and method errors abort the watch.
        for status in [400, 401, 403, 404, 405, 408, 409, 413, 500] {
            assert!(!watch_should_retry(status), "status {status}");
        }
    }

    #[test]
    fn watch_backoff_is_exponential_and_capped() {
        assert_eq!(watch_backoff_ms(0), 250, "normal poll cadence");
        assert_eq!(watch_backoff_ms(1), 500);
        assert_eq!(watch_backoff_ms(2), 1_000);
        assert_eq!(watch_backoff_ms(3), 2_000);
        assert_eq!(watch_backoff_ms(4), 4_000);
        for attempt in 5..40 {
            assert_eq!(watch_backoff_ms(attempt), 5_000, "cap from attempt 5 on");
        }
    }

    #[test]
    fn sparkline_scales_min_to_max() {
        assert_eq!(sparkline(&[0.0, 1.0, 2.0, 3.0, 7.0]), "▁▂▃▄█");
        // A flat series is all-low, not all-high: nothing to rank.
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        // Quarantined NaN costs render as a placeholder dot.
        assert_eq!(sparkline(&[1.0, f64::NAN, 0.0]), "█·▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn trace_rendering_shows_one_sparkline_per_arm() {
        let body = concat!(
            "{\"study\":\"s1\",\"digest\":\"abc\",\"n_cells\":2,\"cells\":[",
            "{\"cell\":0,\"workload\":\"tpcc\",\"arm\":\"pair\",\"run\":0,\"arms\":[",
            "{\"label\":\"TUNA\",\"series\":[[0,4],[1,2],[2,1]]},",
            "{\"label\":\"naive\",\"series\":[[0,4],[1,4],[2,3.5]]}]}]}\n"
        );
        let out = render_trace(body).unwrap();
        assert!(out.contains("study s1: 1/2 cells traced"), "{out}");
        assert!(out.contains("cell 0 tpcc/pair run 0"), "{out}");
        assert!(out.contains("TUNA"), "{out}");
        assert!(out.contains("best 1.000000"), "{out}");
        assert!(out.contains('█'), "{out}");
        // Malformed documents are an error, not a panic.
        assert!(render_trace("{}").is_err());
        assert!(render_trace("not json").is_err());
    }

    #[test]
    fn metrics_rendering_annotates_histograms() {
        let text = concat!(
            "# HELP tuna_serve_requests_total requests dispatched\n",
            "# TYPE tuna_serve_requests_total counter\n",
            "tuna_serve_requests_total 12\n",
            "# HELP tuna_serve_pipeline_depth per-connection queue depth\n",
            "# TYPE tuna_serve_pipeline_depth histogram\n",
            "tuna_serve_pipeline_depth_bucket{le=\"1\"} 4\n",
            "tuna_serve_pipeline_depth_bucket{le=\"2\"} 10\n",
            "tuna_serve_pipeline_depth_bucket{le=\"+Inf\"} 12\n",
            "tuna_serve_pipeline_depth_sum 20\n",
            "tuna_serve_pipeline_depth_count 12\n",
        );
        let out = render_metrics(text);
        // Counters pass through untouched; histograms gain a sparkline.
        assert!(out.contains("tuna_serve_requests_total 12\n"), "{out}");
        assert!(out.contains("# SPARK tuna_serve_pipeline_depth "), "{out}");
        // Buckets de-cumulate to 4,6,2 → mid bucket is the tallest.
        let spark = out
            .lines()
            .find(|l| l.starts_with("# SPARK"))
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap();
        assert_eq!(spark.chars().count(), 3, "{spark}");
        assert_eq!(spark.chars().nth(1), Some('█'), "{spark}");
        // `--raw` path: input comes back out unchanged up to the spark.
        assert_eq!(
            out.replace(&format!("# SPARK tuna_serve_pipeline_depth {spark}\n"), ""),
            text
        );
    }

    #[test]
    fn refusals_render_the_structured_reason() {
        let body =
            "{\"error\": {\"status\": 429, \"reason\": \"cell-budget\", \"message\": \"too many cells\"}}\n";
        assert_eq!(
            describe_refusal(429, body),
            "refused (429 cell-budget): too many cells"
        );
        // Reason-less structured errors (404s, validation) fall back to
        // the message; non-JSON bodies fall back to the raw text.
        let plain = "{\"error\": {\"status\": 404, \"message\": \"unknown study 'x'\"}}\n";
        assert_eq!(
            describe_refusal(404, plain),
            "daemon replied 404: unknown study 'x'"
        );
        assert_eq!(
            describe_refusal(500, "garbage"),
            "daemon replied 500: garbage"
        );
    }
}
