//! `tuna-ctl` — the client for a running `tunad`.
//!
//! ```text
//! tuna-ctl [--addr 127.0.0.1:4917] [--token T] submit --spec FILE
//! tuna-ctl [--addr ...] [--token T]            list
//! tuna-ctl [--addr ...] [--token T]            status  NAME
//! tuna-ctl [--addr ...] [--token T]            results NAME
//! tuna-ctl [--addr ...] [--token T]            watch   NAME [--timeout-s 600]
//! tuna-ctl [--addr ...] [--token T]            cancel  NAME
//! tuna-ctl [--addr ...] [--token T]            tenants
//! tuna-ctl                                     run-local --spec FILE
//! ```
//!
//! `--token` sends `authorization: Bearer <T>` on every request — how a
//! client authenticates against a daemon running with a tenant table
//! (`tunad --tenants`). Loopback daemons ignore it.
//!
//! A refused request prints the daemon's structured reason to stderr —
//! `tuna-ctl: refused (429 cell-budget): ...` — and exits with a
//! distinct code per refusal class (see `exit_code_for`), so scripts
//! can branch on *why* without parsing stderr.
//!
//! Every remote subcommand speaks HTTP/1.1 keep-alive over a
//! persistent connection ([`Client`]) and prints the JSON body to
//! stdout (non-2xx replies go to stderr with a non-zero exit). One-shot
//! subcommands make a single request on it; `watch` polls status on the
//! *same* connection until the study is `done` (exit 0), `cancelled`
//! (exit 3) or the timeout lapses (exit 4) — one TCP connection for the
//! whole watch, with a transparent reconnect if the daemon sheds or
//! times the connection out between polls. `run-local` runs the same
//! spec as a batch campaign in-process — no daemon — and prints the
//! canonical results document, which is byte-identical to what
//! `results` fetches from a daemon that ran the same study: that
//! equality is the serve subsystem's determinism contract, and the CI
//! smoke job diffs exactly these two outputs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tuna_core::campaign::{CampaignRunner, ResultStore};
use tuna_serve::api::StudySpec;
use tuna_serve::http::{self, ResponseParser};
use tuna_stats::json;

fn usage() -> ! {
    eprintln!(
        "usage: tuna-ctl [--addr HOST:PORT] [--token TOKEN] <submit --spec FILE | list | \
         status NAME | results NAME | watch NAME [--timeout-s S] | cancel NAME | tenants | \
         run-local --spec FILE>"
    );
    std::process::exit(2);
}

/// Exit code for a refused request — distinct per refusal class, so
/// scripts can branch on the kind of refusal without parsing stderr.
fn exit_code_for(status: u16) -> i32 {
    match status {
        400 => 10, // malformed request/spec
        401 => 11, // missing token
        403 => 12, // bad token / wrong tenant
        404 => 13, // unknown study or route
        405 => 14, // method not allowed
        408 => 15, // request timeout
        409 => 16, // conflicting declaration
        413 => 17, // payload too large
        429 => 18, // admission or load refusal
        s if (400..500).contains(&s) => 19,
        _ => 20, // 5xx and anything else
    }
}

/// Renders a non-2xx reply for stderr, surfacing the structured
/// `reason` slug when the body carries one.
fn describe_refusal(status: u16, body: &str) -> String {
    let v = json::parse(body).ok();
    let err = v.as_ref().and_then(|v| v.get("error"));
    let reason = err
        .and_then(|e| e.get("reason"))
        .and_then(json::Value::as_str);
    let message = err
        .and_then(|e| e.get("message"))
        .and_then(json::Value::as_str);
    match (reason, message) {
        (Some(r), Some(m)) => format!("refused ({status} {r}): {m}"),
        (None, Some(m)) => format!("daemon replied {status}: {m}"),
        _ => format!("daemon replied {status}: {}", body.trim_end()),
    }
}

fn refuse(status: u16, body: &str) -> ! {
    eprintln!("tuna-ctl: {}", describe_refusal(status, body));
    std::process::exit(exit_code_for(status));
}

fn fail(msg: &str) -> ! {
    eprintln!("tuna-ctl: {msg}");
    std::process::exit(1);
}

/// A keep-alive HTTP client holding one persistent connection to the
/// daemon. Requests are framed `connection: keep-alive` and responses
/// are framed by `content-length`, so consecutive calls reuse the
/// socket; when the daemon closes it (idle budget, shed, restart) the
/// next call transparently reconnects once.
struct Client {
    addr: String,
    token: Option<String>,
    stream: Option<TcpStream>,
}

impl Client {
    fn new(addr: &str, token: Option<String>) -> Self {
        Client {
            addr: addr.to_string(),
            token,
            stream: None,
        }
    }

    fn connected(&mut self) -> &mut TcpStream {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .unwrap_or_else(|e| fail(&format!("cannot connect to {}: {e}", self.addr)));
            let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
            self.stream = Some(stream);
        }
        self.stream.as_mut().expect("just connected")
    }

    /// One request/response exchange on the persistent connection.
    fn call(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        // Two attempts: a stale keep-alive socket (daemon closed it
        // between calls) surfaces as a send/receive error on the first
        // try and a fresh connection handles the second.
        for attempt in 0..2 {
            let reused = self.stream.is_some();
            let token = self.token.clone();
            let stream = self.connected();
            let outcome = Self::exchange(stream, method, path, body, token.as_deref());
            match outcome {
                Ok(reply) => {
                    if !reply.keep_alive {
                        self.stream = None;
                    }
                    return (reply.status, reply.body);
                }
                Err(e) => {
                    self.stream = None;
                    // A failure on a fresh connection is real; only a
                    // reused socket earns the silent retry.
                    if attempt == 1 || !reused {
                        fail(&e);
                    }
                }
            }
        }
        unreachable!("loop returns or fails");
    }

    fn exchange(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: &str,
        token: Option<&str>,
    ) -> Result<http::WireResponse, String> {
        stream
            .write_all(&http::request_bytes_auth(method, path, body, true, token))
            .map_err(|e| format!("send failed: {e}"))?;
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(reply) = parser
                .next_response()
                .map_err(|e| format!("malformed response: {e}"))?
            {
                return Ok(reply);
            }
            let n = stream
                .read(&mut buf)
                .map_err(|e| format!("receive failed: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-response".to_string());
            }
            parser.feed(&buf[..n]);
        }
    }
}

/// Prints a 2xx body to stdout; anything else goes to stderr with the
/// structured reason and a per-class exit code.
fn expect_ok((status, body): (u16, String)) {
    if (200..300).contains(&status) {
        print!("{body}");
        if !body.ends_with('\n') {
            println!();
        }
    } else {
        refuse(status, &body);
    }
}

fn read_spec(path: &str) -> String {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read spec {path}: {e}")));
    // Client-side validation gives a better error than a 400 round-trip
    // and is required for run-local anyway.
    if let Err(e) = StudySpec::parse(&text) {
        fail(&format!("spec {path} is invalid: {e}"));
    }
    text
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let addr = match flag_value(&argv, "--addr") {
        Some(a) => {
            let i = argv.iter().position(|x| x == "--addr").expect("present");
            argv.drain(i..=i + 1);
            a
        }
        None => "127.0.0.1:4917".to_string(),
    };
    let token = flag_value(&argv, "--token").inspect(|_| {
        let i = argv.iter().position(|x| x == "--token").expect("present");
        argv.drain(i..=i + 1);
    });
    let Some(command) = argv.first().cloned() else {
        usage();
    };
    let name_arg = || -> String {
        argv.get(1)
            .filter(|n| !n.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| usage())
    };

    let mut client = Client::new(&addr, token);
    match command.as_str() {
        "tenants" => expect_ok(client.call("GET", "/v1/tenants", "")),
        "submit" => {
            let spec_path = flag_value(&argv, "--spec").unwrap_or_else(|| usage());
            expect_ok(client.call("POST", "/v1/studies", &read_spec(&spec_path)));
        }
        "list" => expect_ok(client.call("GET", "/v1/studies", "")),
        "status" => expect_ok(client.call("GET", &format!("/v1/studies/{}", name_arg()), "")),
        "results" => {
            expect_ok(client.call("GET", &format!("/v1/studies/{}/results", name_arg()), ""))
        }
        "cancel" => {
            expect_ok(client.call("POST", &format!("/v1/studies/{}/cancel", name_arg()), ""))
        }
        "watch" => {
            let name = name_arg();
            let timeout_s: u64 = flag_value(&argv, "--timeout-s")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(600);
            let deadline = Instant::now() + Duration::from_secs(timeout_s);
            // The whole watch loop rides one keep-alive connection.
            loop {
                let (status, body) = client.call("GET", &format!("/v1/studies/{name}"), "");
                if status != 200 {
                    refuse(status, &body);
                }
                let state = json::parse(&body)
                    .ok()
                    .and_then(|v| {
                        v.get("state")
                            .and_then(json::Value::as_str)
                            .map(String::from)
                    })
                    .unwrap_or_else(|| fail("status reply lacks a state"));
                eprintln!("tuna-ctl: {name}: {}", body.trim_end());
                match state.as_str() {
                    "done" => {
                        print!("{body}");
                        return;
                    }
                    "cancelled" => std::process::exit(3),
                    _ => {}
                }
                if Instant::now() >= deadline {
                    eprintln!("tuna-ctl: watch timed out after {timeout_s}s");
                    std::process::exit(4);
                }
                std::thread::sleep(Duration::from_millis(250));
            }
        }
        "run-local" => {
            let spec_path = flag_value(&argv, "--spec").unwrap_or_else(|| usage());
            let spec = StudySpec::parse(&read_spec(&spec_path)).expect("validated by read_spec");
            let campaign = spec.to_campaign();
            let mut store = ResultStore::in_memory(&campaign);
            CampaignRunner::from_env().run(&campaign, &mut store);
            print!("{}", store.to_json(&campaign));
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_refusal_class() {
        let mapped = [
            (400, 10),
            (401, 11),
            (403, 12),
            (404, 13),
            (405, 14),
            (408, 15),
            (409, 16),
            (413, 17),
            (429, 18),
        ];
        for (status, code) in mapped {
            assert_eq!(exit_code_for(status), code, "status {status}");
        }
        // Every mapped class is distinct, and none collides with the
        // generic 4xx/5xx buckets or the usage/transport codes (1-4).
        let mut codes: Vec<i32> = mapped.iter().map(|(_, c)| *c).collect();
        codes.extend([exit_code_for(418), exit_code_for(500)]);
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "exit codes must be distinct");
        assert_eq!(exit_code_for(418), 19);
        assert_eq!(exit_code_for(500), 20);
        assert_eq!(exit_code_for(503), 20);
        assert!(codes.iter().all(|c| *c >= 10));
    }

    #[test]
    fn refusals_render_the_structured_reason() {
        let body =
            "{\"error\": {\"status\": 429, \"reason\": \"cell-budget\", \"message\": \"too many cells\"}}\n";
        assert_eq!(
            describe_refusal(429, body),
            "refused (429 cell-budget): too many cells"
        );
        // Reason-less structured errors (404s, validation) fall back to
        // the message; non-JSON bodies fall back to the raw text.
        let plain = "{\"error\": {\"status\": 404, \"message\": \"unknown study 'x'\"}}\n";
        assert_eq!(
            describe_refusal(404, plain),
            "daemon replied 404: unknown study 'x'"
        );
        assert_eq!(
            describe_refusal(500, "garbage"),
            "daemon replied 500: garbage"
        );
    }
}
