//! `tuna-ctl` — the client for a running `tunad`.
//!
//! ```text
//! tuna-ctl [--addr 127.0.0.1:4917] submit --spec FILE
//! tuna-ctl [--addr ...]            list
//! tuna-ctl [--addr ...]            status  NAME
//! tuna-ctl [--addr ...]            results NAME
//! tuna-ctl [--addr ...]            watch   NAME [--timeout-s 600]
//! tuna-ctl [--addr ...]            cancel  NAME
//! tuna-ctl                         run-local --spec FILE
//! ```
//!
//! Every remote subcommand performs one HTTP request and prints the
//! JSON body to stdout (non-2xx replies go to stderr with a non-zero
//! exit). `watch` polls status until the study is `done` (exit 0),
//! `cancelled` (exit 3) or the timeout lapses (exit 4). `run-local`
//! runs the same spec as a batch campaign in-process — no daemon — and
//! prints the canonical results document, which is byte-identical to
//! what `results` fetches from a daemon that ran the same study: that
//! equality is the serve subsystem's determinism contract, and the CI
//! smoke job diffs exactly these two outputs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tuna_core::campaign::{CampaignRunner, ResultStore};
use tuna_serve::api::StudySpec;
use tuna_serve::http;
use tuna_stats::json;

fn usage() -> ! {
    eprintln!(
        "usage: tuna-ctl [--addr HOST:PORT] <submit --spec FILE | list | status NAME | \
         results NAME | watch NAME [--timeout-s S] | cancel NAME | run-local --spec FILE>"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("tuna-ctl: {msg}");
    std::process::exit(1);
}

/// One request against the daemon; returns `(status, body)`.
fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    stream
        .write_all(&http::request_bytes(method, path, body))
        .unwrap_or_else(|e| fail(&format!("send failed: {e}")));
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .unwrap_or_else(|e| fail(&format!("receive failed: {e}")));
    http::parse_response(&raw).unwrap_or_else(|e| fail(&format!("malformed response: {e}")))
}

/// Prints a 2xx body to stdout; anything else to stderr with exit 1.
fn expect_ok((status, body): (u16, String)) {
    if (200..300).contains(&status) {
        print!("{body}");
        if !body.ends_with('\n') {
            println!();
        }
    } else {
        fail(&format!("daemon replied {status}: {}", body.trim_end()));
    }
}

fn read_spec(path: &str) -> String {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read spec {path}: {e}")));
    // Client-side validation gives a better error than a 400 round-trip
    // and is required for run-local anyway.
    if let Err(e) = StudySpec::parse(&text) {
        fail(&format!("spec {path} is invalid: {e}"));
    }
    text
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let addr = match flag_value(&argv, "--addr") {
        Some(a) => {
            let i = argv.iter().position(|x| x == "--addr").expect("present");
            argv.drain(i..=i + 1);
            a
        }
        None => "127.0.0.1:4917".to_string(),
    };
    let Some(command) = argv.first().cloned() else {
        usage();
    };
    let name_arg = || -> String {
        argv.get(1)
            .filter(|n| !n.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| usage())
    };

    match command.as_str() {
        "submit" => {
            let spec_path = flag_value(&argv, "--spec").unwrap_or_else(|| usage());
            expect_ok(call(&addr, "POST", "/v1/studies", &read_spec(&spec_path)));
        }
        "list" => expect_ok(call(&addr, "GET", "/v1/studies", "")),
        "status" => expect_ok(call(
            &addr,
            "GET",
            &format!("/v1/studies/{}", name_arg()),
            "",
        )),
        "results" => expect_ok(call(
            &addr,
            "GET",
            &format!("/v1/studies/{}/results", name_arg()),
            "",
        )),
        "cancel" => expect_ok(call(
            &addr,
            "POST",
            &format!("/v1/studies/{}/cancel", name_arg()),
            "",
        )),
        "watch" => {
            let name = name_arg();
            let timeout_s: u64 = flag_value(&argv, "--timeout-s")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(600);
            let deadline = Instant::now() + Duration::from_secs(timeout_s);
            loop {
                let (status, body) = call(&addr, "GET", &format!("/v1/studies/{name}"), "");
                if status != 200 {
                    fail(&format!("daemon replied {status}: {}", body.trim_end()));
                }
                let state = json::parse(&body)
                    .ok()
                    .and_then(|v| {
                        v.get("state")
                            .and_then(json::Value::as_str)
                            .map(String::from)
                    })
                    .unwrap_or_else(|| fail("status reply lacks a state"));
                eprintln!("tuna-ctl: {name}: {}", body.trim_end());
                match state.as_str() {
                    "done" => {
                        print!("{body}");
                        return;
                    }
                    "cancelled" => std::process::exit(3),
                    _ => {}
                }
                if Instant::now() >= deadline {
                    eprintln!("tuna-ctl: watch timed out after {timeout_s}s");
                    std::process::exit(4);
                }
                std::thread::sleep(Duration::from_millis(250));
            }
        }
        "run-local" => {
            let spec_path = flag_value(&argv, "--spec").unwrap_or_else(|| usage());
            let spec = StudySpec::parse(&read_spec(&spec_path)).expect("validated by read_spec");
            let campaign = spec.to_campaign();
            let mut store = ResultStore::in_memory(&campaign);
            CampaignRunner::from_env().run(&campaign, &mut store);
            print!("{}", store.to_json(&campaign));
        }
        _ => usage(),
    }
}
