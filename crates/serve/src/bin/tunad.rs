//! `tunad` — the tuning-as-a-service daemon.
//!
//! ```text
//! tunad [--addr 127.0.0.1:4917] [--data DIR] [--workers N] [--tenants FILE]
//! ```
//!
//! Accepts studies over the HTTP/1.1+JSON wire protocol (see
//! `tuna_serve::daemon` for the endpoint table), multiplexes them
//! across `N` worker threads under weighted fair-share scheduling, and
//! persists every study under `--data` so a killed daemon resumes
//! exactly where the journal left off. `--workers` defaults to the
//! `TUNA_WORKERS` environment variable (the workspace-wide knob), then
//! to 1. Binding port 0 picks an ephemeral port; the chosen address is
//! printed on stderr either way (`tunad: listening on ...`), so
//! harnesses can scrape it.
//!
//! `--tenants FILE` loads a tenant table (see `tuna_serve::tenant` for
//! the format): bearer tokens, fair-share weights and admission
//! budgets. With a table, every request must authenticate. Without
//! one, the daemon runs a single anonymous default tenant — and it
//! refuses to bind any non-loopback address, because an unauthenticated
//! daemon must not be reachable off-host.
//!
//! # Architecture
//!
//! All connection IO happens on **one** thread: a readiness loop over
//! non-blocking sockets (`poll(2)` on Linux, a short-sleep fallback
//! elsewhere) drives the shared `tuna_serve::engine::Engine` state
//! machine — accept → read → parse → dispatch → write — with HTTP/1.1
//! keep-alive and pipelining, per-connection byte/time budgets, and
//! bounded queues that shed load with structured `408`/`429`/`503`
//! responses. A stalled or hostile client can therefore pin at most its
//! own connection slot, and only until its time budget expires. Cell
//! *execution* — the expensive, pure part — stays on the `N`-thread
//! worker pool, which shares the `StudyManager` with the loop through
//! one mutex; the loop holds that lock only for in-memory routing.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use tuna_core::campaign::execute_cell;
use tuna_core::executor::ExecutionMode;
use tuna_serve::engine::{Engine, EngineConfig};
use tuna_serve::manager::StudyManager;
use tuna_serve::tenant::TenantRegistry;

/// How long the loop sleeps waiting for socket readiness before it
/// wakes anyway to advance time budgets.
const POLL_TIMEOUT_MS: i32 = 100;

struct Shared {
    mgr: Mutex<StudyManager>,
    /// Signalled whenever new work may exist (a submit landed).
    work: Condvar,
}

fn usage() -> ! {
    eprintln!("usage: tunad [--addr HOST:PORT] [--data DIR] [--workers N] [--tenants FILE]");
    std::process::exit(2);
}

/// Whether every address `addr` resolves to is loopback — the only kind
/// an unauthenticated (no `--tenants`) daemon may bind.
fn addr_is_loopback(addr: &str) -> bool {
    use std::net::ToSocketAddrs;
    match addr.to_socket_addrs() {
        Ok(mut addrs) => {
            let mut any = false;
            let all = addrs.all(|a| {
                any = true;
                a.ip().is_loopback()
            });
            any && all
        }
        // Unresolvable: let bind() report the real error later.
        Err(_) => true,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:4917".to_string();
    let mut data = "tuna-serve-data".to_string();
    let mut workers = ExecutionMode::from_env().workers();
    let mut tenants: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => addr = value(&mut i),
            "--data" => data = value(&mut i),
            "--workers" => workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--tenants" => tenants = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    let workers = workers.max(1);

    let registry = match &tenants {
        Some(path) => TenantRegistry::load(path).unwrap_or_else(|e| {
            eprintln!("tunad: {e}");
            std::process::exit(1);
        }),
        None => {
            if !addr_is_loopback(&addr) {
                eprintln!(
                    "tunad: refusing to bind non-loopback address {addr} without --tenants: \
                     an unauthenticated daemon must not be reachable off-host"
                );
                std::process::exit(1);
            }
            TenantRegistry::loopback()
        }
    };

    let mgr = StudyManager::open_with(&data, registry).unwrap_or_else(|e| {
        eprintln!("tunad: {e}");
        std::process::exit(1);
    });
    let resumed = mgr.studies().count();
    let shared = Arc::new(Shared {
        mgr: Mutex::new(mgr),
        work: Condvar::new(),
    });

    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("tunad: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    eprintln!(
        "tunad: listening on {local} (data {data}, {workers} workers, {resumed} studies resumed)"
    );

    for w in 0..workers {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("tunad-worker-{w}"))
            .spawn(move || worker_loop(&shared))
            .expect("spawn worker");
    }
    // Resumed studies may already have pending cells.
    shared.work.notify_all();

    event_loop(&shared, &listener);
}

/// The single-threaded readiness loop: every connection's bytes flow
/// through the shared [`Engine`] state machine; the loop never blocks
/// on any one peer.
fn event_loop(shared: &Shared, listener: &TcpListener) -> ! {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let mut engine = Engine::new(EngineConfig::daemon_default());
    let mut streams: BTreeMap<usize, TcpStream> = BTreeMap::new();
    let started = Instant::now();
    let mut buf = [0u8; 16 * 1024];

    loop {
        wait_ready(listener, &streams, &engine);
        let now = started.elapsed().as_millis() as u64;

        // Accept every pending connection. Past capacity the engine
        // queues a structured 503 and the slot closes after the flush —
        // a visible refusal, never a silent drop.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = engine.connect(now);
                    streams.insert(id, stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => {
                    eprintln!("tunad: accept failed: {e}");
                    break;
                }
            }
        }

        // Read whatever every readable peer sent.
        let mut broken: Vec<usize> = Vec::new();
        for (&id, stream) in &mut streams {
            if !engine.accepts_input(id) {
                continue;
            }
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => {
                        engine.on_eof(id);
                        break;
                    }
                    Ok(n) => engine.recv(id, &buf[..n], now),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken.push(id);
                        break;
                    }
                }
            }
        }

        // Dispatch queued requests under the manager lock (cheap,
        // in-memory routing only) and wake the pool if submits landed.
        {
            let mut mgr = shared.mgr.lock().expect("manager lock");
            if engine.dispatch(&mut mgr, now) > 0 {
                shared.work.notify_all();
            }
        }
        engine.on_tick(now);

        // Flush response bytes; tolerate partial writes.
        for (&id, stream) in &mut streams {
            let pending = engine.pending_output(id).to_vec();
            if pending.is_empty() {
                continue;
            }
            match stream.write(&pending) {
                Ok(n) => {
                    engine.consume_output(id, n);
                    let _ = stream.flush();
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {}
                Err(_) => broken.push(id),
            }
        }

        // Reap: transport failures and engine-decided closes.
        for id in broken {
            streams.remove(&id);
            engine.disconnect(id);
        }
        let closing: Vec<usize> = streams
            .keys()
            .copied()
            .filter(|&id| engine.wants_close(id))
            .collect();
        for id in closing {
            streams.remove(&id);
            engine.disconnect(id);
        }
    }
}

/// Blocks until the listener or any connection is ready (or the timeout
/// elapses, so time budgets still advance on an idle daemon).
#[cfg(target_os = "linux")]
fn wait_ready(listener: &TcpListener, streams: &BTreeMap<usize, TcpStream>, engine: &Engine) {
    use std::os::fd::{AsRawFd, RawFd};

    #[repr(C)]
    struct PollFd {
        fd: RawFd,
        events: i16,
        revents: i16,
    }
    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    let mut fds = Vec::with_capacity(streams.len() + 1);
    fds.push(PollFd {
        fd: listener.as_raw_fd(),
        events: POLLIN,
        revents: 0,
    });
    for (&id, stream) in streams {
        let mut events = POLLIN;
        if !engine.pending_output(id).is_empty() {
            events |= POLLOUT;
        }
        fds.push(PollFd {
            fd: stream.as_raw_fd(),
            events,
            revents: 0,
        });
    }
    // A failed poll degrades to the timeout path: the loop's reads are
    // non-blocking either way, so readiness is an optimization, never a
    // correctness requirement.
    //
    // SAFETY: `fds` outlives the call and `fds.len()` is its exact
    // element count, so the kernel reads/writes only within the
    // allocation; `PollFd` is `#[repr(C)]` field-for-field identical to
    // `struct pollfd`, and every fd comes from a live `TcpListener`/
    // `TcpStream` borrowed for the duration of the call. poll(2) has no
    // other preconditions, and its only side effect is filling
    // `revents`.
    unsafe {
        poll(fds.as_mut_ptr(), fds.len() as u64, POLL_TIMEOUT_MS);
    }
}

#[cfg(not(target_os = "linux"))]
fn wait_ready(_listener: &TcpListener, _streams: &BTreeMap<usize, TcpStream>, _engine: &Engine) {
    std::thread::sleep(std::time::Duration::from_millis(
        POLL_TIMEOUT_MS as u64 / 10,
    ));
}

fn worker_loop(shared: &Shared) {
    loop {
        let assignment = {
            let mut mgr = shared.mgr.lock().expect("manager lock");
            loop {
                if let Some(a) = mgr.next_assignment() {
                    break a;
                }
                mgr = shared.work.wait(mgr).expect("manager lock");
            }
        };
        // Execute outside the lock: this is the expensive part, and the
        // cell is a pure function of the declaration. A panicking cell
        // (a declaration bug the validation missed) must not kill the
        // worker or leave the cell in flight forever — catch it and
        // cancel the study instead of wedging the pool.
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_cell(&assignment.campaign, assignment.cell, ExecutionMode::Serial)
        }));
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut mgr = shared.mgr.lock().expect("manager lock");
        let result = match outcome {
            Ok((record, payload)) => {
                let trace = tuna_core::campaign::cell_trace(
                    &assignment.campaign,
                    assignment.cell,
                    &payload,
                );
                mgr.complete_traced(
                    &assignment.tenant,
                    &assignment.study,
                    record,
                    wall_ns,
                    Some(trace),
                )
            }
            Err(_) => {
                eprintln!(
                    "tunad: study '{}' cell {} panicked during execution; cancelling the study",
                    assignment.study, assignment.cell
                );
                mgr.abandon(&assignment.tenant, &assignment.study, assignment.cell)
            }
        };
        if let Err(e) = result {
            eprintln!("tunad: {e}");
        }
    }
}
