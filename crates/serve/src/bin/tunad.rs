//! `tunad` — the tuning-as-a-service daemon.
//!
//! ```text
//! tunad [--addr 127.0.0.1:4917] [--data DIR] [--workers N]
//! ```
//!
//! Accepts studies over the HTTP/1.1+JSON wire protocol (see
//! `tuna_serve::daemon` for the endpoint table), multiplexes them
//! across `N` worker threads under fair-share scheduling, and persists
//! every study under `--data` so a killed daemon resumes exactly where
//! the journal left off. `--workers` defaults to the `TUNA_WORKERS`
//! environment variable (the workspace-wide knob), then to 1. Binding
//! port 0 picks an ephemeral port; the chosen address is printed on
//! stderr either way (`tunad: listening on ...`), so harnesses can
//! scrape it.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tuna_core::campaign::execute_cell;
use tuna_core::executor::ExecutionMode;
use tuna_serve::daemon::handle;
use tuna_serve::http::{parse_request, Response};
use tuna_serve::manager::StudyManager;

struct Shared {
    mgr: Mutex<StudyManager>,
    /// Signalled whenever new work may exist (a submit landed).
    work: Condvar,
}

fn usage() -> ! {
    eprintln!("usage: tunad [--addr HOST:PORT] [--data DIR] [--workers N]");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:4917".to_string();
    let mut data = "tuna-serve-data".to_string();
    let mut workers = ExecutionMode::from_env().workers();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => addr = value(&mut i),
            "--data" => data = value(&mut i),
            "--workers" => workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    let workers = workers.max(1);

    let mgr = StudyManager::open(&data).unwrap_or_else(|e| {
        eprintln!("tunad: {e}");
        std::process::exit(1);
    });
    let resumed = mgr.studies().count();
    let shared = Arc::new(Shared {
        mgr: Mutex::new(mgr),
        work: Condvar::new(),
    });

    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("tunad: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    eprintln!(
        "tunad: listening on {local} (data {data}, {workers} workers, {resumed} studies resumed)"
    );

    for w in 0..workers {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("tunad-worker-{w}"))
            .spawn(move || worker_loop(&shared))
            .expect("spawn worker");
    }
    // Resumed studies may already have pending cells.
    shared.work.notify_all();

    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                // One thread per connection: the control plane is light,
                // and a stalled client must not wedge the listener.
                std::thread::spawn(move || serve_one(&shared, stream));
            }
            Err(e) => eprintln!("tunad: accept failed: {e}"),
        }
    }
}

fn serve_one(shared: &Shared, mut stream: TcpStream) {
    // A silent peer must not pin the connection thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // Parse *before* taking the manager lock: a slow (or slow-loris)
    // client may stall its own connection thread, never the scheduler
    // or other clients.
    let response = match parse_request(&mut BufReader::new(&mut stream)) {
        Err(e) => Response::of_http_error(&e),
        Ok(req) => {
            let mut mgr = shared.mgr.lock().expect("manager lock");
            handle(&mut mgr, &req)
        }
    };
    // New studies mean new work for the pool.
    shared.work.notify_all();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

fn worker_loop(shared: &Shared) {
    loop {
        let assignment = {
            let mut mgr = shared.mgr.lock().expect("manager lock");
            loop {
                if let Some(a) = mgr.next_assignment() {
                    break a;
                }
                mgr = shared.work.wait(mgr).expect("manager lock");
            }
        };
        // Execute outside the lock: this is the expensive part, and the
        // cell is a pure function of the declaration. A panicking cell
        // (a declaration bug the validation missed) must not kill the
        // worker or leave the cell in flight forever — catch it and
        // cancel the study instead of wedging the pool.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_cell(&assignment.campaign, assignment.cell, ExecutionMode::Serial)
        }));
        let mut mgr = shared.mgr.lock().expect("manager lock");
        let result = match outcome {
            Ok((record, _payload)) => mgr.complete(&assignment.study, record),
            Err(_) => {
                eprintln!(
                    "tunad: study '{}' cell {} panicked during execution; cancelling the study",
                    assignment.study, assignment.cell
                );
                mgr.abandon(&assignment.study, assignment.cell)
            }
        };
        if let Err(e) = result {
            eprintln!("tunad: {e}");
        }
    }
}
