//! Request routing — everything `tunad` and the loopback simulator
//! have in common.
//!
//! # Endpoints
//!
//! | Method | Path                         | Reply |
//! |--------|------------------------------|-------|
//! | GET    | `/healthz`                   | `{"ok": true, "studies": N}` (never requires auth) |
//! | GET    | `/metrics`                   | Prometheus text exposition (never requires auth) |
//! | POST   | `/v1/studies`                | accepted study status (201), idempotent on identical re-submit (200) |
//! | GET    | `/v1/studies`                | `{"studies": [status, ...]}` — the caller's tenant only |
//! | GET    | `/v1/studies/<name>`         | study status |
//! | GET    | `/v1/studies/<name>/results` | the study's canonical results document (partial while running) |
//! | GET    | `/v1/studies/<name>/trace`   | per-cell convergence trace (best-cost-so-far series per arm) |
//! | POST   | `/v1/studies/<name>/cancel`  | status after cancelling |
//! | GET    | `/v1/tenants`                | every tenant's weight, budgets and usage meter |
//!
//! # Authentication
//!
//! Every route except `/healthz` authenticates first. Against a
//! loopback registry (no `--tenants` table) every request resolves to
//! the default tenant and tokens are ignored — the pre-tenant behavior,
//! unchanged. Against a configured table, requests must carry
//! `authorization: Bearer <token>`: missing token → `401
//! missing-token`, unknown token → `403 bad-token`. Study routes are
//! namespaced to the authenticated tenant: listing shows only its
//! studies, and `<name>` lookups cannot reach another tenant's study
//! (they 404, indistinguishable from "no such study").
//!
//! Every error — framing, JSON, auth, admission, validation, routing —
//! is a structured JSON body (`{"error": {"status": S, "message":
//! "..."}}`, plus a machine-readable `"reason"` slug for auth and
//! admission refusals); the daemon loop never panics on client input.
//!
//! Connection-level behavior (keep-alive, pipelining, budgets, load
//! shedding) lives in [`crate::engine`]; this module is the pure
//! request→response function the engine dispatches through.

use crate::api::{self, StudySpec};
use crate::http::{parse_request_bytes, Request, Response};
use crate::manager::{Refusal, Study, StudyManager};

/// Routes one parsed request against the manager.
pub fn handle(mgr: &mut StudyManager, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    // Health stays unauthenticated: probes and load balancers carry no
    // tenant tokens, and the reply leaks only a global count.
    if let ("GET", ["healthz"]) = (req.method.as_str(), segments.as_slice()) {
        return Response::json(
            200,
            format!("{{\"ok\": true, \"studies\": {}}}\n", mgr.studies().count()),
        );
    }
    // Metrics stay unauthenticated for the same reason: Prometheus
    // scrapers carry no tenant tokens. The exposition labels tenants
    // (fair-share lag gauges) but carries no study payloads or costs;
    // operators who consider tenant names sensitive should firewall the
    // port, as they would for any exporter.
    if let ("GET", ["metrics"]) = (req.method.as_str(), segments.as_slice()) {
        return Response::text(200, mgr.metrics_text());
    }
    let tenant = match mgr.authenticate(req.bearer.as_deref()) {
        Ok(t) => t,
        Err(r) => return refusal_response(&r),
    };
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "studies"]) => match StudySpec::parse(&req.body) {
            Err(e) => Response::error(400, &e),
            // Attach-or-report-existing is a single manager call under
            // whatever lock the caller holds: two racing identical
            // submissions cannot both observe "absent", so exactly one
            // reply is a 201 and the rest are idempotent 200s.
            Ok(mut spec) => {
                // A spec may declare its tenant, but only the one the
                // token proves.
                if let Some(declared) = spec.tenant.as_deref() {
                    if declared != tenant {
                        return Response::refusal(
                            403,
                            "tenant-mismatch",
                            &format!(
                                "spec declares tenant '{declared}' but the token \
                                 authenticates '{tenant}'"
                            ),
                        );
                    }
                }
                spec.tenant = Some(tenant.clone());
                match mgr.submit(spec) {
                    Ok((study, created)) => status_response(if created { 201 } else { 200 }, study),
                    Err(r) => refusal_response(&r),
                }
            }
        },
        ("GET", ["v1", "studies"]) => {
            let statuses: Vec<String> = mgr.studies_of(&tenant).map(Study::status_json).collect();
            Response::json(200, format!("{{\"studies\": [{}]}}\n", statuses.join(", ")))
        }
        ("GET", ["v1", "tenants"]) => Response::json(200, mgr.tenants_json()),
        ("GET", ["v1", "studies", name]) => match mgr.get(&tenant, name) {
            Some(study) => status_response(200, study),
            None => unknown_study(name),
        },
        ("GET", ["v1", "studies", name, "results"]) => match mgr.results_json(&tenant, name) {
            Some(doc) => Response::json(200, doc),
            None => unknown_study(name),
        },
        ("GET", ["v1", "studies", name, "trace"]) => match mgr.trace_json(&tenant, name) {
            Some(doc) => Response::json(200, doc),
            None => unknown_study(name),
        },
        ("POST", ["v1", "studies", name, "cancel"]) => match mgr.cancel(&tenant, name) {
            Ok(study) => status_response(200, study),
            Err(_) => unknown_study(name),
        },
        ("GET" | "POST", _) => Response::error(404, &format!("no route for {}", req.path)),
        (method, _) => Response::error(405, &format!("method {method} not allowed")),
    }
}

fn refusal_response(r: &Refusal) -> Response {
    Response::refusal(r.status, r.reason, &r.message)
}

fn status_response(status: u16, study: &Study) -> Response {
    Response::json(status, format!("{}\n", study.status_json()))
}

fn unknown_study(name: &str) -> Response {
    // The name is echoed through the JSON quoter, so a hostile path
    // segment cannot break the error document's structure.
    Response::error(404, &format!("unknown study '{name}'"))
}

/// Routes one complete request frame: parse → route, with framing
/// errors becoming structured JSON error responses. The one-shot
/// (single request, `connection: close`) counterpart of the engine's
/// streaming path — both sit on the same [`crate::http::RequestParser`]
/// byte-level code.
pub fn route_bytes(mgr: &mut StudyManager, raw: &[u8]) -> Response {
    match parse_request_bytes(raw) {
        Ok(req) => handle(mgr, &req),
        Err(e) => Response::of_http_error(&e),
    }
}

/// Convenience used by the fuzz tests and the perf gate: feed raw
/// request bytes through the full parse→route→serialize path and return
/// raw response bytes.
pub fn handle_bytes(mgr: &mut StudyManager, raw: &[u8]) -> Vec<u8> {
    route_bytes(mgr, raw).to_bytes()
}

/// Validates a study-spec body the way `POST /v1/studies` will, without
/// touching a manager — used by `tuna-ctl` for client-side feedback.
///
/// # Errors
///
/// Returns the validation message.
pub fn validate_spec(body: &str) -> Result<StudySpec, String> {
    api::StudySpec::parse(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{request_bytes, request_bytes_auth};
    use crate::tenant::TenantRegistry;

    fn spec_body(name: &str) -> String {
        format!(
            r#"{{"name": "{name}", "seed": 3, "runs": 1, "rounds": 2,
                "workloads": ["tpcc"],
                "arms": [{{"label": "Default", "method": "default"}}]}}"#
        )
    }

    fn call(mgr: &mut StudyManager, method: &str, path: &str, body: &str) -> (u16, String) {
        let raw = handle_bytes(mgr, &request_bytes(method, path, body));
        crate::http::parse_response(&raw).unwrap()
    }

    fn call_as(
        mgr: &mut StudyManager,
        method: &str,
        path: &str,
        body: &str,
        token: Option<&str>,
    ) -> (u16, String) {
        let raw = handle_bytes(mgr, &request_bytes_auth(method, path, body, false, token));
        crate::http::parse_response(&raw).unwrap()
    }

    fn authed_manager() -> StudyManager {
        StudyManager::in_memory_with(
            TenantRegistry::parse(
                r#"{"tenants": [
                    {"name": "alice", "token": "alice-secret", "weight": 3},
                    {"name": "bob", "token": "bob-secret"}
                ]}"#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn submit_status_results_cancel_flow() {
        let mut mgr = StudyManager::in_memory();
        let (status, body) = call(&mut mgr, "POST", "/v1/studies", &spec_body("s1"));
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"state\": \"running\""), "{body}");

        // Idempotent re-submit.
        let (status, _) = call(&mut mgr, "POST", "/v1/studies", &spec_body("s1"));
        assert_eq!(status, 200);

        let (status, body) = call(&mut mgr, "GET", "/v1/studies/s1", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"cells\": 1"), "{body}");

        let (status, body) = call(&mut mgr, "GET", "/v1/studies", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"s1\""), "{body}");

        let (status, body) = call(&mut mgr, "GET", "/v1/studies/s1/results", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"completed\": 0"), "{body}");

        let (status, body) = call(&mut mgr, "POST", "/v1/studies/s1/cancel", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\": \"cancelled\""), "{body}");
    }

    #[test]
    fn routing_errors_are_structured() {
        let mut mgr = StudyManager::in_memory();
        let (status, body) = call(&mut mgr, "GET", "/v1/studies/nope", "");
        assert_eq!(status, 404);
        assert!(body.contains("\"error\""), "{body}");

        let (status, _) = call(&mut mgr, "GET", "/v1/frobnicate", "");
        assert_eq!(status, 404);

        let (status, _) = call(&mut mgr, "DELETE", "/v1/studies/s1", "");
        assert_eq!(status, 405);

        let (status, body) = call(&mut mgr, "POST", "/v1/studies", "{\"broken\"");
        assert_eq!(status, 400);
        assert!(body.contains("invalid JSON"), "{body}");
    }

    #[test]
    fn healthz_counts_studies() {
        let mut mgr = StudyManager::in_memory();
        let (_, body) = call(&mut mgr, "GET", "/healthz", "");
        assert!(body.contains("\"studies\": 0"), "{body}");
        call(&mut mgr, "POST", "/v1/studies", &spec_body("a"));
        let (_, body) = call(&mut mgr, "GET", "/healthz", "");
        assert!(body.contains("\"studies\": 1"), "{body}");
    }

    #[test]
    fn metrics_endpoint_is_unauthenticated_text() {
        let mut mgr = authed_manager();
        // No token required, unlike every /v1 route.
        let raw = handle_bytes(&mut mgr, &request_bytes("GET", "/metrics", ""));
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("content-type: text/plain"), "{text}");
        assert!(text.contains("# TYPE tuna_studies gauge"), "{text}");
    }

    #[test]
    fn trace_endpoint_serves_convergence_document() {
        let mut mgr = StudyManager::in_memory();
        call(&mut mgr, "POST", "/v1/studies", &spec_body("s1"));
        // Run the study's single cell through the manager.
        let a = mgr.next_assignment().unwrap();
        let (record, payload) = tuna_core::campaign::execute_cell(
            &a.campaign,
            a.cell,
            tuna_core::executor::ExecutionMode::Serial,
        );
        let trace = tuna_core::campaign::cell_trace(&a.campaign, a.cell, &payload);
        mgr.complete_traced(&a.tenant, &a.study, record, 0, Some(trace))
            .unwrap();
        let (status, body) = call(&mut mgr, "GET", "/v1/studies/s1/trace", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"study\":\"s1\""), "{body}");
        assert!(body.contains("\"n_cells\":1"), "{body}");
        assert!(body.contains("\"cell\":0"), "{body}");
        // Unknown studies 404 like every other study route.
        let (status, _) = call(&mut mgr, "GET", "/v1/studies/nope/trace", "");
        assert_eq!(status, 404);
    }

    #[test]
    fn auth_gates_every_route_but_healthz() {
        let mut mgr = authed_manager();
        // No token: 401 with the structured reason slug.
        let (status, body) = call(&mut mgr, "POST", "/v1/studies", &spec_body("s"));
        assert_eq!(status, 401, "{body}");
        assert!(body.contains("\"reason\": \"missing-token\""), "{body}");
        // Wrong token: 403.
        let (status, body) = call_as(&mut mgr, "GET", "/v1/studies", "", Some("nope"));
        assert_eq!(status, 403, "{body}");
        assert!(body.contains("\"reason\": \"bad-token\""), "{body}");
        // Health needs none.
        let (status, _) = call(&mut mgr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        // A good token submits.
        let (status, body) = call_as(
            &mut mgr,
            "POST",
            "/v1/studies",
            &spec_body("s"),
            Some("alice-secret"),
        );
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"tenant\": \"alice\""), "{body}");
    }

    #[test]
    fn tenants_are_namespaced_on_the_wire() {
        let mut mgr = authed_manager();
        let alice = Some("alice-secret");
        let bob = Some("bob-secret");
        call_as(&mut mgr, "POST", "/v1/studies", &spec_body("job"), alice);
        // Bob's listing is empty and alice's study 404s for him.
        let (_, body) = call_as(&mut mgr, "GET", "/v1/studies", "", bob);
        assert_eq!(body, "{\"studies\": []}\n");
        let (status, _) = call_as(&mut mgr, "GET", "/v1/studies/job", "", bob);
        assert_eq!(status, 404);
        let (status, _) = call_as(&mut mgr, "POST", "/v1/studies/job/cancel", "", bob);
        assert_eq!(status, 404);
        // Bob can reuse the name; declaring someone else's tenant is refused.
        let (status, _) = call_as(&mut mgr, "POST", "/v1/studies", &spec_body("job"), bob);
        assert_eq!(status, 201);
        let mismatched =
            spec_body("other").replace("{\"name\"", "{\"tenant\": \"alice\", \"name\"");
        let (status, body) = call_as(&mut mgr, "POST", "/v1/studies", &mismatched, bob);
        assert_eq!(status, 403, "{body}");
        assert!(body.contains("\"reason\": \"tenant-mismatch\""), "{body}");
    }

    #[test]
    fn tenants_endpoint_reports_weights_and_usage() {
        let mut mgr = authed_manager();
        call_as(
            &mut mgr,
            "POST",
            "/v1/studies",
            &spec_body("job"),
            Some("alice-secret"),
        );
        let (status, body) = call_as(&mut mgr, "GET", "/v1/tenants", "", Some("bob-secret"));
        assert_eq!(status, 200);
        assert!(
            body.contains("\"name\": \"alice\", \"weight\": 3, \"running\": 1"),
            "{body}"
        );
        assert!(body.contains("\"studies\": 1"), "{body}");
        assert!(
            body.contains("\"name\": \"bob\", \"weight\": 1, \"running\": 0"),
            "{body}"
        );
    }
}
