//! Request routing — everything `tunad` and the loopback simulator
//! have in common.
//!
//! # Endpoints
//!
//! | Method | Path                         | Reply |
//! |--------|------------------------------|-------|
//! | GET    | `/healthz`                   | `{"ok": true, "studies": N}` |
//! | POST   | `/v1/studies`                | accepted study status (201), idempotent on identical re-submit (200) |
//! | GET    | `/v1/studies`                | `{"studies": [status, ...]}` |
//! | GET    | `/v1/studies/<name>`         | study status |
//! | GET    | `/v1/studies/<name>/results` | the study's canonical results document (partial while running) |
//! | POST   | `/v1/studies/<name>/cancel`  | status after cancelling |
//!
//! Every error — framing, JSON, validation, routing — is a structured
//! JSON body (`{"error": {"status": S, "message": "..."}}`); the daemon
//! loop never panics on client input.
//!
//! Connection-level behavior (keep-alive, pipelining, budgets, load
//! shedding) lives in [`crate::engine`]; this module is the pure
//! request→response function the engine dispatches through.

use crate::api::{self, StudySpec};
use crate::http::{parse_request_bytes, Request, Response};
use crate::manager::{Study, StudyManager};

/// Routes one parsed request against the manager.
pub fn handle(mgr: &mut StudyManager, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            format!("{{\"ok\": true, \"studies\": {}}}\n", mgr.studies().count()),
        ),
        ("POST", ["v1", "studies"]) => match StudySpec::parse(&req.body) {
            Err(e) => Response::error(400, &e),
            // Attach-or-report-existing is a single manager call under
            // whatever lock the caller holds: two racing identical
            // submissions cannot both observe "absent", so exactly one
            // reply is a 201 and the rest are idempotent 200s.
            Ok(spec) => match mgr.submit(spec) {
                Ok((study, created)) => status_response(if created { 201 } else { 200 }, study),
                Err((status, e)) => Response::error(status, &e),
            },
        },
        ("GET", ["v1", "studies"]) => {
            let statuses: Vec<String> = mgr.studies().map(Study::status_json).collect();
            Response::json(200, format!("{{\"studies\": [{}]}}\n", statuses.join(", ")))
        }
        ("GET", ["v1", "studies", name]) => match mgr.get(name) {
            Some(study) => status_response(200, study),
            None => unknown_study(name),
        },
        ("GET", ["v1", "studies", name, "results"]) => match mgr.results_json(name) {
            Some(doc) => Response::json(200, doc),
            None => unknown_study(name),
        },
        ("POST", ["v1", "studies", name, "cancel"]) => match mgr.cancel(name) {
            Ok(study) => status_response(200, study),
            Err(_) => unknown_study(name),
        },
        ("GET" | "POST", _) => Response::error(404, &format!("no route for {}", req.path)),
        (method, _) => Response::error(405, &format!("method {method} not allowed")),
    }
}

fn status_response(status: u16, study: &Study) -> Response {
    Response::json(status, format!("{}\n", study.status_json()))
}

fn unknown_study(name: &str) -> Response {
    // The name is echoed through the JSON quoter, so a hostile path
    // segment cannot break the error document's structure.
    Response::error(404, &format!("unknown study '{name}'"))
}

/// Routes one complete request frame: parse → route, with framing
/// errors becoming structured JSON error responses. The one-shot
/// (single request, `connection: close`) counterpart of the engine's
/// streaming path — both sit on the same [`crate::http::RequestParser`]
/// byte-level code.
pub fn route_bytes(mgr: &mut StudyManager, raw: &[u8]) -> Response {
    match parse_request_bytes(raw) {
        Ok(req) => handle(mgr, &req),
        Err(e) => Response::of_http_error(&e),
    }
}

/// Convenience used by the fuzz tests and the perf gate: feed raw
/// request bytes through the full parse→route→serialize path and return
/// raw response bytes.
pub fn handle_bytes(mgr: &mut StudyManager, raw: &[u8]) -> Vec<u8> {
    route_bytes(mgr, raw).to_bytes()
}

/// Validates a study-spec body the way `POST /v1/studies` will, without
/// touching a manager — used by `tuna-ctl` for client-side feedback.
///
/// # Errors
///
/// Returns the validation message.
pub fn validate_spec(body: &str) -> Result<StudySpec, String> {
    api::StudySpec::parse(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::request_bytes;

    fn spec_body(name: &str) -> String {
        format!(
            r#"{{"name": "{name}", "seed": 3, "runs": 1, "rounds": 2,
                "workloads": ["tpcc"],
                "arms": [{{"label": "Default", "method": "default"}}]}}"#
        )
    }

    fn call(mgr: &mut StudyManager, method: &str, path: &str, body: &str) -> (u16, String) {
        let raw = handle_bytes(mgr, &request_bytes(method, path, body));
        crate::http::parse_response(&raw).unwrap()
    }

    #[test]
    fn submit_status_results_cancel_flow() {
        let mut mgr = StudyManager::in_memory();
        let (status, body) = call(&mut mgr, "POST", "/v1/studies", &spec_body("s1"));
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"state\": \"running\""), "{body}");

        // Idempotent re-submit.
        let (status, _) = call(&mut mgr, "POST", "/v1/studies", &spec_body("s1"));
        assert_eq!(status, 200);

        let (status, body) = call(&mut mgr, "GET", "/v1/studies/s1", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"cells\": 1"), "{body}");

        let (status, body) = call(&mut mgr, "GET", "/v1/studies", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"s1\""), "{body}");

        let (status, body) = call(&mut mgr, "GET", "/v1/studies/s1/results", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"completed\": 0"), "{body}");

        let (status, body) = call(&mut mgr, "POST", "/v1/studies/s1/cancel", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\": \"cancelled\""), "{body}");
    }

    #[test]
    fn routing_errors_are_structured() {
        let mut mgr = StudyManager::in_memory();
        let (status, body) = call(&mut mgr, "GET", "/v1/studies/nope", "");
        assert_eq!(status, 404);
        assert!(body.contains("\"error\""), "{body}");

        let (status, _) = call(&mut mgr, "GET", "/v1/frobnicate", "");
        assert_eq!(status, 404);

        let (status, _) = call(&mut mgr, "DELETE", "/v1/studies/s1", "");
        assert_eq!(status, 405);

        let (status, body) = call(&mut mgr, "POST", "/v1/studies", "{\"broken\"");
        assert_eq!(status, 400);
        assert!(body.contains("invalid JSON"), "{body}");
    }

    #[test]
    fn healthz_counts_studies() {
        let mut mgr = StudyManager::in_memory();
        let (_, body) = call(&mut mgr, "GET", "/healthz", "");
        assert!(body.contains("\"studies\": 0"), "{body}");
        call(&mut mgr, "POST", "/v1/studies", &spec_body("a"));
        let (_, body) = call(&mut mgr, "GET", "/healthz", "");
        assert!(body.contains("\"studies\": 1"), "{body}");
    }
}
