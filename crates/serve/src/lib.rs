//! Tuning-as-a-service: the TUNA §6 tune-then-deploy loop behind a
//! long-lived daemon instead of one-shot batch binaries.
//!
//! The crate has six layers, leaf first:
//!
//! - [`http`]: a hand-rolled, hardened HTTP/1.1 subset (keep-alive and
//!   pipelining, `Content-Length` framing, explicit limits). The parser
//!   is incremental and sans-IO, so sockets, in-memory buffers and fuzz
//!   inputs share one byte-level code path.
//! - [`api`]: the JSON study schema — a validated [`api::StudySpec`]
//!   maps 1:1 onto a [`tuna_core::campaign::Campaign`], and its
//!   canonical serialization is the durable identity the daemon
//!   persists and resumes from.
//! - [`tenant`]: the multi-tenant layer — the tenant table (bearer
//!   tokens, fair-share weights, admission budgets) and the per-tenant
//!   usage meter. Loopback daemons run a single implicit default
//!   tenant with no auth; non-loopback binds require a configured
//!   table.
//! - [`manager`]: the multi-tenant, multi-study scheduler. Weighted
//!   fair share across tenants (with an `interactive` lane preempting
//!   batch work at cell boundaries), then fair-share capacity
//!   accounting within a tenant, hands campaign *cells* to workers so
//!   many concurrent studies share the trial pool; every study streams
//!   through a checksummed [`tuna_core::campaign::ResultStore`], which
//!   is what makes a killed daemon resume byte-identically.
//! - [`engine`]: the per-connection state machine (read-header →
//!   read-body → dispatch → write-response) with keep-alive,
//!   pipelining, per-connection byte/time budgets, and bounded
//!   connection/pipeline queues that shed load with structured
//!   `408`/`429`/`503` responses.
//! - [`daemon`] / [`sim`]: request routing shared by the real `tunad`
//!   binary (a single-threaded readiness loop over non-blocking
//!   sockets, plus worker threads for cell execution) and the
//!   deterministic loopback [`sim::SimServer`] (virtual listener, clock
//!   and worker pool) that integration tests and the perf gate drive —
//!   both driving the *same* [`engine::Engine`].
//!
//! # Determinism contract
//!
//! A study's results depend only on its declaration: cells are pure
//! functions of `(campaign digest, cell index)`, the scheduler decides
//! only *when* a cell runs, and the results document is serialized from
//! the cell-ordered store. Therefore the document fetched from a
//! daemon that was killed and restarted mid-study is byte-identical to
//! an uninterrupted run *and* to the `.json` mirror of the equivalent
//! batch campaign — at any worker count. The loopback tests and the CI
//! smoke job pin all three equalities.

pub mod api;
pub mod daemon;
pub mod engine;
pub mod http;
pub mod manager;
pub mod sim;
pub mod tenant;

#[cfg(test)]
mod robustness {
    //! Fuzz-style hardening tests: the daemon loop must answer every
    //! malformed, truncated or corrupted frame with a structured JSON
    //! error — and never panic.

    use crate::daemon::handle_bytes;
    use crate::http::{parse_response, request_bytes};
    use crate::manager::StudyManager;
    use tuna_stats::json;
    use tuna_stats::rng::Rng;

    /// Feeds raw bytes to a fresh manager; asserts the reply is valid
    /// HTTP with a JSON body, and that an error status carries the
    /// structured error object.
    fn assert_structured(raw: &[u8]) {
        let mut mgr = StudyManager::in_memory();
        let reply = handle_bytes(&mut mgr, raw);
        let (status, body) = parse_response(&reply).expect("reply is well-formed HTTP");
        let v = json::parse(&body).expect("reply body is valid JSON");
        if status >= 400 {
            let err = v.get("error").expect("error replies carry an error object");
            assert_eq!(
                err.get("status").and_then(json::Value::as_f64),
                Some(status as f64)
            );
            assert!(err
                .get("message")
                .and_then(json::Value::as_str)
                .is_some_and(|m| !m.is_empty()));
        }
    }

    #[test]
    fn hand_written_malformed_frames() {
        let cases: &[&[u8]] = &[
            b"",
            b"\r\n",
            b"GET\r\n\r\n",
            b"GET /healthz\r\n\r\n",
            b"GET /healthz SPDY/9\r\n\r\n",
            b"GET healthz HTTP/1.1\r\n\r\n",
            b"G\xffT /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: -5\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 10\r\ncontent-length: 20\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 999999999999999999999\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
            // Truncated frames: body shorter than declared.
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 400\r\n\r\n{\"name\":",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 4\r\n\r\n",
            // Header block cut off before the blank line.
            b"GET /healthz HTTP/1.1\r\nhost: x",
            // Valid framing, hostile bodies.
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot json!",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 4\r\n\r\nnull",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 8\r\n\r\n[1,2,3,]",
            // Body bytes that are not UTF-8.
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 3\r\n\r\n\xff\xfe\xfd",
        ];
        for raw in cases {
            assert_structured(raw);
        }
    }

    #[test]
    fn deep_nesting_and_huge_lines_are_bounded() {
        let deep = format!("{}{}", "[".repeat(4096), "]".repeat(4096));
        assert_structured(&request_bytes("POST", "/v1/studies", &deep));
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100_000));
        assert_structured(long_path.as_bytes());
        let many_headers = format!("GET /healthz HTTP/1.1\r\n{}\r\n", "x-h: y\r\n".repeat(500));
        assert_structured(many_headers.as_bytes());
    }

    #[test]
    fn truncations_of_a_valid_request_never_panic() {
        let valid = request_bytes(
            "POST",
            "/v1/studies",
            r#"{"name": "t", "runs": 1, "rounds": 2, "workloads": ["tpcc"],
               "arms": [{"label": "Default", "method": "default"}]}"#,
        );
        // Every prefix of a valid request is either truncated or (once
        // the body start fits the declared length... it never does) bad.
        for cut in 0..valid.len() {
            assert_structured(&valid[..cut]);
        }
    }

    #[test]
    fn random_byte_corruptions_never_panic() {
        let valid = request_bytes(
            "POST",
            "/v1/studies",
            r#"{"name": "t", "runs": 1, "rounds": 2, "workloads": ["tpcc"],
               "arms": [{"label": "Default", "method": "default"}]}"#,
        );
        let mut rng = Rng::seed_from(0xF422);
        for _ in 0..300 {
            let mut corrupted = valid.clone();
            let flips = 1 + (rng.next_u64() % 4) as usize;
            for _ in 0..flips {
                let at = (rng.next_u64() as usize) % corrupted.len();
                corrupted[at] ^= (rng.next_u64() % 255) as u8 + 1;
            }
            assert_structured(&corrupted);
        }
    }

    #[test]
    fn random_garbage_never_panics() {
        let mut rng = Rng::seed_from(0x6A4B);
        for _ in 0..200 {
            let len = (rng.next_u64() % 600) as usize;
            let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            assert_structured(&garbage);
        }
    }

    /// Pipelined variant of the frame fuzzing: N valid keep-alive
    /// requests with a malformed frame spliced in at every position.
    /// The engine must answer the valid prefix in order, answer the
    /// malformed frame with a structured error, drop the unanswerable
    /// suffix, and close — never panic — at 1 and 4 workers.
    #[test]
    fn pipelined_malformed_frame_at_every_position() {
        use crate::http::request_bytes_with;
        use crate::sim::SimServer;

        // Frames whose head is malformed outright, so they fail the
        // same way at any pipeline position (a *truncated* frame, by
        // contrast, would swallow the next frame's bytes as body — that
        // is correct framing behavior, not an error case).
        let malformed: &[&[u8]] = &[
            b"BROKEN\r\n\r\n",
            b"GET /healthz SPDY/9\r\n\r\n",
            b"GET healthz HTTP/1.1\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ncontent-length: 10\r\ncontent-length: 20\r\n\r\n",
            b"POST /v1/studies HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ];
        let spec = r#"{"name": "p", "seed": 5, "runs": 1, "rounds": 2,
                       "workloads": ["tpcc"],
                       "arms": [{"label": "Default", "method": "default"}]}"#;
        let valid: Vec<Vec<u8>> = vec![
            request_bytes_with("GET", "/healthz", "", true),
            request_bytes_with("POST", "/v1/studies", spec, true),
            request_bytes_with("GET", "/v1/studies/p", "", true),
            request_bytes_with("GET", "/v1/studies", "", true),
        ];
        for workers in [1usize, 4] {
            for bad in malformed {
                for pos in 0..=valid.len() {
                    // A fresh server per splice keeps the expected
                    // statuses independent of submission history.
                    let mut sim = SimServer::new(None, workers).unwrap();
                    let conn = sim.connect();
                    let mut bytes = Vec::new();
                    for frame in &valid[..pos] {
                        bytes.extend_from_slice(frame);
                    }
                    bytes.extend_from_slice(bad);
                    for frame in &valid[pos..] {
                        bytes.extend_from_slice(frame);
                    }
                    sim.send(conn, &bytes);
                    let raw = sim.recv(conn);
                    let replies = crate::http::split_responses(&raw)
                        .expect("every reply is well-formed HTTP");
                    assert_eq!(
                        replies.len(),
                        pos + 1,
                        "valid prefix + one error (workers={workers}, pos={pos})"
                    );
                    for (status, body) in &replies[..pos] {
                        assert!(
                            *status == 200 || *status == 201,
                            "prefix reply {status}: {body}"
                        );
                        json::parse(body).expect("prefix reply body is valid JSON");
                    }
                    let (status, body) = replies.last().expect("error reply");
                    assert_eq!(*status, 400, "{body}");
                    let err = json::parse(body)
                        .expect("error body is valid JSON")
                        .get("error")
                        .cloned()
                        .expect("structured error object");
                    assert!(err
                        .get("message")
                        .and_then(json::Value::as_str)
                        .is_some_and(|m| !m.is_empty()));
                    assert!(sim.wants_close(conn), "connection closes after the error");
                }
            }
        }
    }
}
