//! The multi-study scheduler: many concurrent noisy studies competing
//! for shared trial capacity.
//!
//! A [`StudyManager`] owns every study the daemon has accepted. Each
//! study is a [`Campaign`] (rebuilt from its persisted [`StudySpec`])
//! plus a [`ResultStore`]; the manager hands out *cells* — the
//! campaign grid's unit of work — to whatever worker pool drives it
//! (the daemon's threads, or the loopback simulator's deterministic
//! step loop).
//!
//! # Fair share
//!
//! [`StudyManager::next_assignment`] implements fair-share capacity
//! accounting: among the studies that still have pending cells, it
//! picks the one with the fewest cells currently in flight, breaking
//! ties by least-recently-scheduled (and then by name, so the policy is
//! a total order and therefore deterministic). With `W` workers and `S`
//! active studies each study holds ~`W/S` workers, a late-arriving
//! study immediately gets its share as cells drain, and one huge study
//! cannot starve a small one — the DarwinGame-style multiplexing
//! problem a tuning daemon must solve.
//!
//! # Durability
//!
//! Every accepted study persists two files under the data directory:
//! `<name>.spec.json` (the canonical submission, written first, atomic)
//! and `<name>.csv` (the streaming result store plus its JSON mirror on
//! finalize). A killed daemon reloads both on start: finished cells are
//! skipped, in-flight-at-kill cells simply run again — cells are pure
//! functions of the declaration, so the resumed study's results are
//! byte-identical to an uninterrupted run.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

use crate::api::StudySpec;
use tuna_core::campaign::{write_atomic, Campaign, CellRecord, ResultStore};

/// Lifecycle state of a study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyPhase {
    /// Accepted; cells remain to schedule or finish.
    Running,
    /// Every cell has a record and the store is finalized.
    Done,
    /// Cancelled by a client; pending cells will not be scheduled.
    Cancelled,
}

impl StudyPhase {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            StudyPhase::Running => "running",
            StudyPhase::Done => "done",
            StudyPhase::Cancelled => "cancelled",
        }
    }
}

/// One study under management.
#[derive(Debug)]
pub struct Study {
    /// The validated, persisted submission.
    pub spec: StudySpec,
    /// The campaign the spec declares (shared with in-flight
    /// [`Assignment`]s, so handing out work never deep-copies the
    /// declaration).
    pub campaign: Arc<Campaign>,
    store: ResultStore,
    /// Cells not yet scheduled, ascending.
    pending: VecDeque<usize>,
    /// Cells handed to a worker and not yet completed.
    in_flight: Vec<usize>,
    cancelled: bool,
    /// Scheduler clock value of the last assignment from this study.
    last_scheduled: u64,
}

impl Study {
    fn new(spec: StudySpec, campaign: Arc<Campaign>, store: ResultStore, cancelled: bool) -> Self {
        let pending = if cancelled {
            VecDeque::new()
        } else {
            (0..campaign.n_cells())
                .filter(|i| store.get(*i).is_none())
                .collect()
        };
        Study {
            spec,
            campaign,
            store,
            pending,
            in_flight: Vec::new(),
            cancelled,
            last_scheduled: 0,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> StudyPhase {
        if self.cancelled {
            StudyPhase::Cancelled
        } else if self.store.len() == self.campaign.n_cells() {
            StudyPhase::Done
        } else {
            StudyPhase::Running
        }
    }

    /// Completed cells.
    pub fn completed(&self) -> usize {
        self.store.len()
    }

    /// Cells currently executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Status document (one line of `GET /v1/studies`, the whole body of
    /// `GET /v1/studies/<name>`).
    pub fn status_json(&self) -> String {
        format!(
            "{{\"name\": {}, \"state\": \"{}\", \"cells\": {}, \"completed\": {}, \
             \"in_flight\": {}, \"digest\": \"{}\"}}",
            tuna_stats::json::quote(&self.spec.name),
            self.phase().label(),
            self.campaign.n_cells(),
            self.completed(),
            self.in_flight(),
            self.campaign.digest(),
        )
    }
}

/// The study registry plus the fair-share scheduler.
#[derive(Debug)]
pub struct StudyManager {
    data_dir: Option<PathBuf>,
    studies: BTreeMap<String, Study>,
    /// Monotonic scheduling clock for least-recently-scheduled ties.
    clock: u64,
}

/// An assignment handed to a worker: which study, which cell, and the
/// declaration to execute it against (an `Arc` share, so execution runs
/// outside the manager's lock without copying the declaration).
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Study name.
    pub study: String,
    /// Cell index within the study's campaign grid.
    pub cell: usize,
    /// The study's campaign declaration.
    pub campaign: Arc<Campaign>,
}

impl StudyManager {
    /// An in-memory manager (no persistence; the perf gate and unit
    /// tests).
    pub fn in_memory() -> Self {
        StudyManager {
            data_dir: None,
            studies: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Opens (or creates) a persistent manager rooted at `data_dir`,
    /// reloading every `<name>.spec.json` study found there; their
    /// stores resume, so finished cells are not re-run.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be created or a
    /// persisted spec/store pair fails to load or verify — a daemon
    /// must not silently drop or recompute studies it accepted.
    pub fn open(data_dir: impl Into<PathBuf>) -> Result<Self, String> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| format!("cannot create data dir {}: {e}", data_dir.display()))?;
        let mut mgr = StudyManager {
            data_dir: Some(data_dir.clone()),
            studies: BTreeMap::new(),
            clock: 0,
        };
        let mut spec_paths: Vec<PathBuf> = std::fs::read_dir(&data_dir)
            .map_err(|e| format!("cannot read data dir {}: {e}", data_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".spec.json"))
            })
            .collect();
        spec_paths.sort();
        for path in spec_paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let spec = StudySpec::parse(&text)
                .map_err(|e| format!("persisted spec {} is invalid: {e}", path.display()))?;
            mgr.attach(spec)?;
        }
        Ok(mgr)
    }

    fn spec_path(&self, name: &str) -> Option<PathBuf> {
        self.data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.spec.json")))
    }

    fn store_path(&self, name: &str) -> Option<PathBuf> {
        self.data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.csv")))
    }

    fn cancel_marker_path(&self, name: &str) -> Option<PathBuf> {
        self.data_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.cancelled")))
    }

    /// Loads a study into the registry (store resumed from disk when
    /// persistent). Does not write the spec file.
    fn attach(&mut self, spec: StudySpec) -> Result<&Study, String> {
        let campaign = Arc::new(spec.to_campaign());
        let store = match self.store_path(&spec.name) {
            None => ResultStore::in_memory(&campaign),
            Some(path) => ResultStore::open(path, &campaign)
                .map_err(|e| format!("study '{}': {e}", spec.name))?,
        };
        // A persisted cancellation survives restarts: the cancelled
        // study must not silently resume consuming the pool.
        let cancelled = self
            .cancel_marker_path(&spec.name)
            .is_some_and(|p| p.exists());
        // A kill can land between the final cell's journal append and
        // finalize; re-finalize complete stores here (idempotent) so
        // the on-disk mirror always exists for a `done` study.
        if store.len() == campaign.n_cells() {
            store
                .finalize(&campaign)
                .map_err(|e| format!("study '{}': finalize on attach failed: {e}", spec.name))?;
        }
        let name = spec.name.clone();
        let study = Study::new(spec, campaign, store, cancelled);
        self.studies.insert(name.clone(), study);
        Ok(self.studies.get(&name).expect("just inserted"))
    }

    /// Accepts a submission: attach-or-report-existing as one atomic
    /// step under the manager (and therefore the caller's lock).
    /// Re-submitting a byte-identical declaration is idempotent — the
    /// existing study comes back with `created = false`; a different
    /// declaration under an existing name is refused. Because the
    /// existence check and the attach happen inside this single
    /// `&mut self` call, two racing identical submissions get exactly
    /// one `created = true` between them.
    ///
    /// # Errors
    ///
    /// Returns `(status, message)`: `409` on a name collision with a
    /// different declaration, `500` on persistence failures.
    pub fn submit(&mut self, spec: StudySpec) -> Result<(&Study, bool), (u16, String)> {
        if let Some(existing) = self.studies.get(&spec.name) {
            return if existing.spec == spec {
                Ok((self.studies.get(&spec.name).expect("present"), false))
            } else {
                Err((
                    409,
                    format!(
                        "study '{}' already exists with a different declaration",
                        spec.name
                    ),
                ))
            };
        }
        // Attach (and therefore validate against any pre-existing store)
        // *before* persisting the spec: a spec file without a loadable
        // study would make every future daemon start fail.
        let name = spec.name.clone();
        let spec_json = spec.to_json();
        self.attach(spec).map_err(|e| (500, e))?;
        if let Some(path) = self.spec_path(&name) {
            if let Err(e) = write_atomic(&path, &spec_json) {
                self.studies.remove(&name);
                return Err((500, e));
            }
        }
        Ok((self.studies.get(&name).expect("just attached"), true))
    }

    /// Looks up a study.
    pub fn get(&self, name: &str) -> Option<&Study> {
        self.studies.get(name)
    }

    /// All studies, name-ordered.
    pub fn studies(&self) -> impl Iterator<Item = &Study> {
        self.studies.values()
    }

    /// Whether any study has pending cells to hand out.
    pub fn has_pending(&self) -> bool {
        self.studies
            .values()
            .any(|s| !s.cancelled && !s.pending.is_empty())
    }

    /// Whether any cell is currently executing.
    pub fn has_in_flight(&self) -> bool {
        self.studies.values().any(|s| !s.in_flight.is_empty())
    }

    /// Fair-share scheduling: hands out the next cell from the eligible
    /// study with the fewest in-flight cells (ties: least recently
    /// scheduled, then name). Returns `None` when no study has pending
    /// work.
    pub fn next_assignment(&mut self) -> Option<Assignment> {
        let name = self
            .studies
            .values()
            .filter(|s| !s.cancelled && !s.pending.is_empty())
            .min_by(|a, b| {
                (a.in_flight.len(), a.last_scheduled, a.spec.name.as_str()).cmp(&(
                    b.in_flight.len(),
                    b.last_scheduled,
                    b.spec.name.as_str(),
                ))
            })
            .map(|s| s.spec.name.clone())?;
        self.clock += 1;
        let clock = self.clock;
        let study = self.studies.get_mut(&name).expect("selected study");
        let cell = study.pending.pop_front().expect("selected study has work");
        study.in_flight.push(cell);
        study.last_scheduled = clock;
        Some(Assignment {
            study: name,
            cell,
            campaign: Arc::clone(&study.campaign),
        })
    }

    /// Records a finished cell. When the study's grid is complete its
    /// store is finalized (canonical CSV + JSON mirror on disk).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown studies or cells that were never
    /// assigned (double completion).
    pub fn complete(&mut self, study: &str, record: CellRecord) -> Result<(), String> {
        let s = self
            .studies
            .get_mut(study)
            .ok_or_else(|| format!("unknown study '{study}'"))?;
        let Some(slot) = s.in_flight.iter().position(|&c| c == record.cell) else {
            return Err(format!(
                "study '{study}': cell {} was not in flight",
                record.cell
            ));
        };
        s.in_flight.remove(slot);
        s.store.record(&s.campaign, record);
        if s.store.len() == s.campaign.n_cells() {
            s.store
                .finalize(&s.campaign)
                .map_err(|e| format!("study '{study}': finalize failed: {e}"))?;
        }
        Ok(())
    }

    /// Cancels a study: pending cells are dropped (in-flight cells
    /// finish and are still recorded), and the cancellation is
    /// persisted (a marker file next to the store) so a restarted
    /// daemon does not resume it. Cancelling a `Done` study is a no-op.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown studies.
    pub fn cancel(&mut self, study: &str) -> Result<&Study, String> {
        let marker = self.cancel_marker_path(study);
        let s = self
            .studies
            .get_mut(study)
            .ok_or_else(|| format!("unknown study '{study}'"))?;
        if s.phase() != StudyPhase::Done {
            s.cancelled = true;
            s.pending.clear();
            if let Some(path) = marker {
                write_atomic(&path, "cancelled\n")?;
            }
        }
        Ok(self.studies.get(study).expect("present"))
    }

    /// Abandons an in-flight cell whose execution failed (a worker
    /// caught a panic): the cell is taken out of flight and the study
    /// is cancelled — a panicking declaration is a bug, and retrying it
    /// forever would wedge the pool instead.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown studies; unknown cells are ignored.
    pub fn abandon(&mut self, study: &str, cell: usize) -> Result<(), String> {
        {
            let s = self
                .studies
                .get_mut(study)
                .ok_or_else(|| format!("unknown study '{study}'"))?;
            s.in_flight.retain(|&c| c != cell);
        }
        self.cancel(study).map(|_| ())
    }

    /// The study's results document — exactly the store's canonical
    /// JSON ([`ResultStore::to_json`]), which is also byte-identical to
    /// the `.json` mirror a batch [`tuna_core::campaign::CampaignRunner`]
    /// run of the same declaration finalizes to.
    pub fn results_json(&self, study: &str) -> Option<String> {
        let s = self.studies.get(study)?;
        Some(s.store.to_json(&s.campaign))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_core::campaign::execute_cell;
    use tuna_core::executor::ExecutionMode;

    fn spec(name: &str, runs: usize) -> StudySpec {
        StudySpec::parse(&format!(
            r#"{{"name": "{name}", "seed": 5, "runs": {runs}, "rounds": 2,
                "workloads": ["tpcc"],
                "arms": [{{"label": "Default", "method": "default"}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn fair_share_interleaves_studies() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("aaa", 4)).unwrap();
        mgr.submit(spec("bbb", 4)).unwrap();
        // With nothing in flight, assignments alternate between the two
        // studies instead of draining one first.
        let order: Vec<String> = (0..4)
            .map(|_| mgr.next_assignment().unwrap().study)
            .collect();
        assert_eq!(order, ["aaa", "bbb", "aaa", "bbb"]);
    }

    #[test]
    fn late_study_gets_its_share() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("big", 8)).unwrap();
        let _a = mgr.next_assignment().unwrap();
        let _b = mgr.next_assignment().unwrap();
        // A second study arrives while 'big' holds two workers: the next
        // two grants go to the newcomer (0 in flight vs 2).
        mgr.submit(spec("late", 4)).unwrap();
        assert_eq!(mgr.next_assignment().unwrap().study, "late");
        assert_eq!(mgr.next_assignment().unwrap().study, "late");
    }

    #[test]
    fn complete_records_and_finalizes() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 2)).unwrap();
        assert_eq!(mgr.get("s").unwrap().phase(), StudyPhase::Running);
        while let Some(a) = mgr.next_assignment() {
            let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            mgr.complete(&a.study, record).unwrap();
        }
        let s = mgr.get("s").unwrap();
        assert_eq!(s.phase(), StudyPhase::Done);
        assert_eq!(s.completed(), 2);
        assert!(mgr.results_json("s").unwrap().contains("\"completed\": 2"));
    }

    #[test]
    fn duplicate_submissions_are_idempotent_conflicts_refused() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 2)).unwrap();
        assert!(mgr.submit(spec("s", 2)).is_ok());
        let (status, msg) = mgr.submit(spec("s", 3)).unwrap_err();
        assert_eq!(status, 409);
        assert!(msg.contains("different declaration"), "{msg}");
    }

    #[test]
    fn cancel_drops_pending_work() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 4)).unwrap();
        let a = mgr.next_assignment().unwrap();
        mgr.cancel("s").unwrap();
        assert_eq!(mgr.get("s").unwrap().phase(), StudyPhase::Cancelled);
        assert!(mgr.next_assignment().is_none());
        // The in-flight cell still lands.
        let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
        mgr.complete(&a.study, record).unwrap();
        assert_eq!(mgr.get("s").unwrap().completed(), 1);
        assert!(mgr.cancel("nope").is_err());
    }

    #[test]
    fn cancel_survives_restart() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut mgr = StudyManager::open(&dir).unwrap();
        mgr.submit(spec("s", 4)).unwrap();
        mgr.cancel("s").unwrap();
        drop(mgr);

        let mut mgr = StudyManager::open(&dir).unwrap();
        assert_eq!(mgr.get("s").unwrap().phase(), StudyPhase::Cancelled);
        assert!(
            mgr.next_assignment().is_none(),
            "a cancelled study must not resume after restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandon_cancels_instead_of_wedging() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 3)).unwrap();
        let a = mgr.next_assignment().unwrap();
        mgr.abandon(&a.study, a.cell).unwrap();
        let s = mgr.get("s").unwrap();
        assert_eq!(s.phase(), StudyPhase::Cancelled);
        assert_eq!(s.in_flight(), 0);
        assert!(mgr.next_assignment().is_none());
    }

    #[test]
    fn failed_submit_leaves_no_spec_behind() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-badsub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-existing store under the study's name with a *different*
        // declaration: attach must refuse, and the refused submission
        // must not persist a spec that would brick the next open().
        let other = spec("s", 4).to_campaign();
        let mut store = ResultStore::open(dir.join("s.csv"), &other).unwrap();
        while let Some(cell) = (0..other.n_cells()).find(|c| store.get(*c).is_none()) {
            let (record, _) = execute_cell(&other, cell, ExecutionMode::Serial);
            store.record(&other, record);
        }
        drop(store);

        let mut mgr = StudyManager::open(&dir).unwrap();
        let (status, msg) = mgr.submit(spec("s", 2)).unwrap_err();
        assert_eq!(status, 500);
        assert!(msg.contains("digest"), "{msg}");
        assert!(mgr.get("s").is_none());
        assert!(!dir.join("s.spec.json").exists(), "spec must not persist");
        // The daemon still starts over this data dir.
        assert!(StudyManager::open(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_store_is_finalized_on_attach() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-finalize-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut mgr = StudyManager::open(&dir).unwrap();
        mgr.submit(spec("s", 2)).unwrap();
        while let Some(a) = mgr.next_assignment() {
            let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            mgr.complete(&a.study, record).unwrap();
        }
        let results = mgr.results_json("s").unwrap();
        drop(mgr);

        // Simulate a kill that landed after the last journal append but
        // before finalize: delete the mirror the finalize wrote.
        let mirror = dir.join("s.json");
        std::fs::remove_file(&mirror).unwrap();
        let mgr = StudyManager::open(&dir).unwrap();
        assert_eq!(mgr.get("s").unwrap().phase(), StudyPhase::Done);
        assert_eq!(std::fs::read_to_string(&mirror).unwrap(), results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_completion_is_refused() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 2)).unwrap();
        let a = mgr.next_assignment().unwrap();
        let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
        mgr.complete(&a.study, record.clone()).unwrap();
        let err = mgr.complete(&a.study, record).unwrap_err();
        assert!(err.contains("not in flight"), "{err}");
    }
}
