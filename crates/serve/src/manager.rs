//! The multi-tenant, multi-study scheduler: many tenants' noisy
//! studies competing for shared trial capacity.
//!
//! A [`StudyManager`] owns every study the daemon has accepted, keyed
//! by `(tenant, name)` — tenant namespaces are real: two tenants can
//! both run a study called `nightly` without colliding on the wire or
//! on disk. Each study is a [`Campaign`] (rebuilt from its persisted
//! [`StudySpec`]) plus a [`ResultStore`]; the manager hands out *cells*
//! — the campaign grid's unit of work — to whatever worker pool drives
//! it (the daemon's threads, or the loopback simulator's deterministic
//! step loop).
//!
//! # Weighted fair share
//!
//! [`StudyManager::next_assignment`] schedules in two deterministic
//! stages:
//!
//! 1. **Across tenants** — weighted deficit sharing. Each active tenant
//!    carries a `scheduled` counter (cells granted since it last went
//!    idle); the tenant minimizing the virtual time `scheduled/weight`
//!    is served next (compared exactly by cross-multiplication, ties by
//!    least-recently-scheduled then name). A weight-3 tenant therefore
//!    receives 3 cells for every 1 a weight-1 tenant gets, at cell
//!    granularity. A tenant entering the active set starts at the
//!    current minimum virtual time (scaled to its weight), so a
//!    latecomer gets its fair share *from now on* without starving
//!    everyone to "catch up".
//! 2. **Within a tenant** — the pre-tenant policy: fewest in-flight
//!    cells, then least recently scheduled, then name. A manager with
//!    only the default tenant (loopback mode) therefore schedules
//!    exactly like the pre-tenant fair-share manager.
//!
//! Two refinements sit on top: a per-study worker cap
//! ([`StudySpec::max_workers`]) bounds one study's concurrency, and the
//! `interactive` lane ([`Lane::Interactive`]) preempts batch work at
//! cell boundaries — while any interactive study has schedulable cells,
//! no batch cell is handed out (running batch cells always finish; a
//! cell is never aborted).
//!
//! The whole policy is a pure function of manager state under a total
//! order, so a fixed submission sequence schedules bit-identically at
//! any worker count — the determinism bar every serve suite pins.
//!
//! # Admission control and accounting
//!
//! [`StudyManager::submit`] enforces the tenant's budgets from the
//! [`TenantRegistry`] — max concurrently running studies and max
//! outstanding cells — refusing with a structured `429` [`Refusal`].
//! Per-tenant [`TenantUsage`] counters (studies accepted, cells
//! executed, wall-ns charged) persist atomically to
//! `tenant_usage.json` in the data directory and survive kill/restart
//! byte-identically.
//!
//! # Durability
//!
//! Every accepted study persists two files: `<name>.spec.json` (the
//! canonical submission, written first, atomic) and `<name>.csv` (the
//! streaming result store plus its JSON mirror on finalize) — at the
//! top level for the default tenant (unchanged from the pre-tenant
//! layout), under `<data_dir>/<tenant>/` for named tenants. A killed
//! daemon reloads everything on start: finished cells are skipped,
//! in-flight-at-kill cells simply run again — cells are pure functions
//! of the declaration, so the resumed study's results are
//! byte-identical to an uninterrupted run.
//!
//! # Examples
//!
//! ```
//! use tuna_serve::api::StudySpec;
//! use tuna_serve::manager::StudyManager;
//! use tuna_serve::tenant::DEFAULT_TENANT;
//! use tuna_core::campaign::execute_cell;
//! use tuna_core::executor::ExecutionMode;
//!
//! let mut mgr = StudyManager::in_memory();
//! let spec = StudySpec::parse(
//!     r#"{"name": "demo", "runs": 2, "rounds": 2, "workloads": ["tpcc"],
//!         "arms": [{"label": "Default", "method": "default"}]}"#,
//! ).unwrap();
//! mgr.submit(spec).unwrap();
//! while let Some(a) = mgr.next_assignment() {
//!     let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
//!     mgr.complete(&a.tenant, &a.study, record).unwrap();
//! }
//! let study = mgr.get(DEFAULT_TENANT, "demo").unwrap();
//! assert_eq!(study.completed(), 2);
//! assert_eq!(mgr.usage(DEFAULT_TENANT).unwrap().cells, 2);
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::api::{Lane, StudySpec};
use crate::tenant::{self, TenantRegistry, TenantUsage, DEFAULT_TENANT};
use tuna_core::campaign::{write_atomic, Campaign, CellRecord, ResultStore};
use tuna_obs::trace::{load_sidecar, render_sidecar};
use tuna_obs::{
    CellTrace, Clock, EventKind, Journal, MetricsRegistry, SpanId, StudyTrace, TickClock,
};

/// File (under the data dir) holding the persisted per-tenant usage
/// counters.
pub const USAGE_FILE: &str = "tenant_usage.json";

/// Lifecycle state of a study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyPhase {
    /// Accepted; cells remain to schedule or finish.
    Running,
    /// Every cell has a record and the store is finalized.
    Done,
    /// Cancelled by a client; pending cells will not be scheduled.
    Cancelled,
}

impl StudyPhase {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            StudyPhase::Running => "running",
            StudyPhase::Done => "done",
            StudyPhase::Cancelled => "cancelled",
        }
    }
}

/// A structured scheduler refusal: HTTP status, machine-readable
/// reason slug, human-readable message — what `POST /v1/studies`
/// serializes as `{"error": {"status", "reason", "message"}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refusal {
    /// HTTP status (403, 409, 429, 500).
    pub status: u16,
    /// Stable reason slug clients branch on: `unknown-tenant`,
    /// `conflict`, `study-budget`, `cell-budget`, `persistence`.
    pub reason: &'static str,
    /// Client-facing detail.
    pub message: String,
}

impl Refusal {
    fn new(status: u16, reason: &'static str, message: impl Into<String>) -> Self {
        Refusal {
            status,
            reason,
            message: message.into(),
        }
    }
}

/// One study under management.
#[derive(Debug)]
pub struct Study {
    /// The validated, persisted submission (its `tenant` is always
    /// `Some` once under management).
    pub spec: StudySpec,
    /// The campaign the spec declares (shared with in-flight
    /// [`Assignment`]s, so handing out work never deep-copies the
    /// declaration).
    pub campaign: Arc<Campaign>,
    store: ResultStore,
    /// Cells not yet scheduled, ascending.
    pending: VecDeque<usize>,
    /// Cells handed to a worker and not yet completed.
    in_flight: Vec<usize>,
    cancelled: bool,
    /// Scheduler clock value of the last assignment from this study.
    last_scheduled: u64,
    /// The study's span in the manager's journal.
    span: SpanId,
    /// Open spans of in-flight cells, by cell index.
    cell_spans: BTreeMap<usize, SpanId>,
    /// Convergence traces of completed cells, sorted by cell index —
    /// the in-memory mirror of the `<name>.trace` sidecar.
    traces: Vec<CellTrace>,
}

impl Study {
    fn new(
        spec: StudySpec,
        campaign: Arc<Campaign>,
        store: ResultStore,
        cancelled: bool,
        span: SpanId,
        traces: Vec<CellTrace>,
    ) -> Self {
        let pending = if cancelled {
            VecDeque::new()
        } else {
            (0..campaign.n_cells())
                .filter(|i| store.get(*i).is_none())
                .collect()
        };
        Study {
            spec,
            campaign,
            store,
            pending,
            in_flight: Vec::new(),
            cancelled,
            last_scheduled: 0,
            span,
            cell_spans: BTreeMap::new(),
            traces,
        }
    }

    /// The tenant namespace this study belongs to.
    pub fn tenant(&self) -> &str {
        self.spec.tenant.as_deref().unwrap_or(DEFAULT_TENANT)
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> StudyPhase {
        if self.cancelled {
            StudyPhase::Cancelled
        } else if self.store.len() == self.campaign.n_cells() {
            StudyPhase::Done
        } else {
            StudyPhase::Running
        }
    }

    /// Completed cells.
    pub fn completed(&self) -> usize {
        self.store.len()
    }

    /// Cells currently executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether this study can take another worker right now.
    fn schedulable(&self) -> bool {
        !self.cancelled
            && !self.pending.is_empty()
            && (self.spec.max_workers == 0 || self.in_flight.len() < self.spec.max_workers)
    }

    /// Status document (one line of `GET /v1/studies`, the whole body of
    /// `GET /v1/studies/<name>`). Default-tenant batch studies keep the
    /// exact pre-tenant bytes; non-default fields are additive.
    pub fn status_json(&self) -> String {
        let mut extra = String::new();
        if self.tenant() != DEFAULT_TENANT {
            extra.push_str(&format!(
                "\"tenant\": {}, ",
                tuna_stats::json::quote(self.tenant())
            ));
        }
        if self.spec.lane != Lane::Batch {
            extra.push_str(&format!("\"lane\": \"{}\", ", self.spec.lane.label()));
        }
        format!(
            "{{\"name\": {}, {extra}\"state\": \"{}\", \"cells\": {}, \"completed\": {}, \
             \"in_flight\": {}, \"digest\": \"{}\"}}",
            tuna_stats::json::quote(&self.spec.name),
            self.phase().label(),
            self.campaign.n_cells(),
            self.completed(),
            self.in_flight(),
            self.campaign.digest(),
        )
    }
}

/// Per-tenant scheduler state: the weighted-deficit counters plus the
/// usage meter.
#[derive(Debug)]
struct TenantSched {
    weight: u64,
    /// Cells granted since the tenant last became active — the
    /// numerator of its virtual time `scheduled/weight`.
    scheduled: u64,
    /// Scheduler clock value of the tenant's last grant.
    last_scheduled: u64,
    /// In the active set (has schedulable or in-flight work).
    active: bool,
    usage: TenantUsage,
}

impl TenantSched {
    fn new(weight: u64) -> Self {
        TenantSched {
            weight: weight.max(1),
            scheduled: 0,
            last_scheduled: 0,
            active: false,
            usage: TenantUsage::default(),
        }
    }
}

/// Exact comparison of two virtual times `sched/weight` by
/// cross-multiplication (u128: cannot overflow for u64 operands).
fn vtime_cmp(a: (u64, u64), b: (u64, u64)) -> Ordering {
    (a.0 as u128 * b.1 as u128).cmp(&(b.0 as u128 * a.1 as u128))
}

/// Appends one `\n`-terminated line to `path`, creating the file if
/// needed. Unlike [`write_atomic`] this is a plain append — the trace
/// sidecar's torn-tail load discipline makes a mid-append kill safe.
fn append_line(path: &Path, line: &str) -> Result<(), String> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    f.write_all(line.as_bytes())
        .and_then(|()| f.write_all(b"\n"))
        .map_err(|e| format!("cannot append to {}: {e}", path.display()))
}

/// The manager's observability rig: a deterministic tick clock (kept
/// in lockstep with the scheduler clock), the span/event journal, the
/// manager-owned metrics registry, and cached handles for the hot
/// paths. Purely a side channel — nothing here feeds back into
/// scheduling decisions.
struct Obs {
    registry: MetricsRegistry,
    tick: Arc<TickClock>,
    journal: Journal,
    assigned: tuna_obs::Counter,
    completed: tuna_obs::Counter,
    preempted: tuna_obs::Counter,
    studies_gauge: tuna_obs::Gauge,
}

impl Obs {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let tick = TickClock::shared();
        let journal = Journal::new(tick.clone() as Arc<dyn Clock>);
        let assigned = registry.counter("tuna_cells_assigned_total", "cells handed to workers");
        let completed = registry.counter("tuna_cells_completed_total", "cell results recorded");
        let preempted = registry.counter(
            "tuna_preempted_total",
            "batch candidates deferred at a cell boundary by interactive work",
        );
        let studies_gauge = registry.gauge("tuna_studies", "studies under management");
        Obs {
            registry,
            tick,
            journal,
            assigned,
            completed,
            preempted,
            studies_gauge,
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").finish_non_exhaustive()
    }
}

/// The study registry plus the weighted fair-share scheduler.
#[derive(Debug)]
pub struct StudyManager {
    data_dir: Option<PathBuf>,
    registry: TenantRegistry,
    studies: BTreeMap<(String, String), Study>,
    tenants: BTreeMap<String, TenantSched>,
    /// Monotonic scheduling clock for least-recently-scheduled ties.
    clock: u64,
    obs: Obs,
}

/// An assignment handed to a worker: which tenant's study, which cell,
/// and the declaration to execute it against (an `Arc` share, so
/// execution runs outside the manager's lock without copying the
/// declaration).
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Tenant namespace.
    pub tenant: String,
    /// Study name within the tenant.
    pub study: String,
    /// Cell index within the study's campaign grid.
    pub cell: usize,
    /// The study's campaign declaration.
    pub campaign: Arc<Campaign>,
}

impl StudyManager {
    /// An in-memory loopback manager (no persistence, default tenant
    /// only; the perf gate and unit tests).
    pub fn in_memory() -> Self {
        Self::in_memory_with(TenantRegistry::loopback())
    }

    /// An in-memory manager over an explicit tenant table.
    pub fn in_memory_with(registry: TenantRegistry) -> Self {
        let mut mgr = StudyManager {
            data_dir: None,
            registry,
            studies: BTreeMap::new(),
            tenants: BTreeMap::new(),
            clock: 0,
            obs: Obs::new(),
        };
        mgr.seed_registry_tenants();
        mgr
    }

    /// Opens (or creates) a persistent loopback manager rooted at
    /// `data_dir`.
    ///
    /// # Errors
    ///
    /// See [`StudyManager::open_with`].
    pub fn open(data_dir: impl Into<PathBuf>) -> Result<Self, String> {
        Self::open_with(data_dir, TenantRegistry::loopback())
    }

    /// Opens (or creates) a persistent manager rooted at `data_dir`
    /// over an explicit tenant table, reloading every persisted study:
    /// top-level `<name>.spec.json` files are the default tenant's,
    /// each `<tenant>/` subdirectory holds that tenant's. Stores
    /// resume, so finished cells are not re-run; persisted usage
    /// counters reload from [`USAGE_FILE`]. A tenant found on disk but
    /// absent from the table keeps its studies (at weight 1) — a
    /// daemon must not silently drop studies it accepted.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be created or a
    /// persisted spec/store/usage file fails to load or verify.
    pub fn open_with(
        data_dir: impl Into<PathBuf>,
        registry: TenantRegistry,
    ) -> Result<Self, String> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| format!("cannot create data dir {}: {e}", data_dir.display()))?;
        let mut mgr = StudyManager {
            data_dir: Some(data_dir.clone()),
            registry,
            studies: BTreeMap::new(),
            tenants: BTreeMap::new(),
            clock: 0,
            obs: Obs::new(),
        };
        mgr.seed_registry_tenants();

        let usage_path = data_dir.join(USAGE_FILE);
        if usage_path.exists() {
            let text = std::fs::read_to_string(&usage_path)
                .map_err(|e| format!("cannot read {}: {e}", usage_path.display()))?;
            let table =
                tenant::parse_usage(&text).map_err(|e| format!("{}: {e}", usage_path.display()))?;
            for (name, usage) in table {
                mgr.ensure_tenant(&name);
                mgr.tenants.get_mut(&name).expect("just ensured").usage = usage;
            }
        }

        let entries: Vec<PathBuf> = std::fs::read_dir(&data_dir)
            .map_err(|e| format!("cannot read data dir {}: {e}", data_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();

        // Top-level specs: the default tenant's namespace (the
        // pre-tenant on-disk layout, loaded unchanged).
        let mut spec_paths: Vec<&PathBuf> = entries
            .iter()
            .filter(|p| p.is_file() && is_spec_path(p))
            .collect();
        spec_paths.sort();
        for path in spec_paths {
            let spec = read_spec(path)?;
            if let Some(t) = spec.tenant.as_deref() {
                if t != DEFAULT_TENANT {
                    return Err(format!(
                        "persisted spec {} declares tenant '{t}' but lives in the default namespace",
                        path.display()
                    ));
                }
            }
            mgr.attach(spec)?;
        }

        // Tenant subdirectories.
        let mut tenant_dirs: Vec<&PathBuf> = entries
            .iter()
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(crate::api::valid_name)
            })
            .collect();
        tenant_dirs.sort();
        for dir in tenant_dirs {
            let tenant = dir
                .file_name()
                .and_then(|n| n.to_str())
                .expect("validated above")
                .to_string();
            let mut spec_paths: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| format!("cannot read tenant dir {}: {e}", dir.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.is_file() && is_spec_path(p))
                .collect();
            spec_paths.sort();
            for path in spec_paths {
                let mut spec = read_spec(&path)?;
                match spec.tenant.as_deref() {
                    None => spec.tenant = Some(tenant.clone()),
                    Some(t) if t == tenant => {}
                    Some(t) => {
                        return Err(format!(
                            "persisted spec {} declares tenant '{t}' but lives under '{tenant}/'",
                            path.display()
                        ))
                    }
                }
                mgr.attach(spec)?;
            }
        }
        Ok(mgr)
    }

    fn seed_registry_tenants(&mut self) {
        let seeds: Vec<(String, u64)> = self
            .registry
            .tenants()
            .map(|t| (t.name.clone(), t.weight))
            .collect();
        for (name, weight) in seeds {
            self.tenants.insert(name.clone(), TenantSched::new(weight));
        }
    }

    /// Registers scheduler state for a tenant if absent (weight from
    /// the registry, or 1 for disk-discovered tenants).
    fn ensure_tenant(&mut self, tenant: &str) {
        if !self.tenants.contains_key(tenant) {
            let weight = self.registry.get(tenant).map(|t| t.weight).unwrap_or(1);
            self.tenants
                .insert(tenant.to_string(), TenantSched::new(weight));
        }
    }

    /// The directory a tenant's files live in: the data dir itself for
    /// the default tenant (pre-tenant layout), a subdirectory otherwise.
    fn tenant_dir(&self, tenant: &str) -> Option<PathBuf> {
        self.data_dir.as_ref().map(|d| {
            if tenant == DEFAULT_TENANT {
                d.clone()
            } else {
                d.join(tenant)
            }
        })
    }

    fn spec_path(&self, tenant: &str, name: &str) -> Option<PathBuf> {
        self.tenant_dir(tenant)
            .map(|d| d.join(format!("{name}.spec.json")))
    }

    fn store_path(&self, tenant: &str, name: &str) -> Option<PathBuf> {
        self.tenant_dir(tenant)
            .map(|d| d.join(format!("{name}.csv")))
    }

    fn cancel_marker_path(&self, tenant: &str, name: &str) -> Option<PathBuf> {
        self.tenant_dir(tenant)
            .map(|d| d.join(format!("{name}.cancelled")))
    }

    fn trace_path(&self, tenant: &str, name: &str) -> Option<PathBuf> {
        self.tenant_dir(tenant)
            .map(|d| d.join(format!("{name}.trace")))
    }

    /// Writes the usage table atomically (no-op in memory; the file is
    /// not created until some counter is nonzero, and an unchanged
    /// table rewrites byte-identically — canonical serialization).
    fn persist_usage(&self) -> Result<(), String> {
        let Some(dir) = &self.data_dir else {
            return Ok(());
        };
        let table: BTreeMap<String, TenantUsage> = self
            .tenants
            .iter()
            .map(|(n, t)| (n.clone(), t.usage))
            .collect();
        if table.values().all(TenantUsage::is_zero) {
            return Ok(());
        }
        write_atomic(&dir.join(USAGE_FILE), &tenant::usage_to_json(&table))
    }

    /// Loads a study into the registry (store resumed from disk when
    /// persistent). Does not write the spec file.
    fn attach(&mut self, mut spec: StudySpec) -> Result<&Study, String> {
        // The default tenant stays implicit (`None`) so a loopback
        // spec's canonical bytes are exactly the pre-tenant ones.
        if spec.tenant.as_deref() == Some(DEFAULT_TENANT) {
            spec.tenant = None;
        }
        let tenant = spec
            .tenant
            .clone()
            .unwrap_or_else(|| DEFAULT_TENANT.to_string());
        self.ensure_tenant(&tenant);
        let campaign = Arc::new(spec.to_campaign());
        let store = match self.store_path(&tenant, &spec.name) {
            None => ResultStore::in_memory(&campaign),
            Some(path) => ResultStore::open(path, &campaign)
                .map_err(|e| format!("study '{}': {e}", spec.name))?,
        };
        // A persisted cancellation survives restarts: the cancelled
        // study must not silently resume consuming the pool.
        let cancelled = self
            .cancel_marker_path(&tenant, &spec.name)
            .is_some_and(|p| p.exists());
        // A kill can land between the final cell's journal append and
        // finalize; re-finalize complete stores here (idempotent) so
        // the on-disk mirror always exists for a `done` study.
        if store.len() == campaign.n_cells() {
            store
                .finalize(&campaign)
                .map_err(|e| format!("study '{}': finalize on attach failed: {e}", spec.name))?;
        }

        // Resume the convergence-trace sidecar, tolerating a torn tail
        // (a kill mid-append): damaged lines drop — the cell re-runs,
        // because the sidecar append always precedes the store record —
        // and a dirty file is rewritten canonically so later appends
        // land on a clean one.
        let mut traces = Vec::new();
        if let Some(path) = self.trace_path(&tenant, &spec.name) {
            if path.exists() {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let loaded = load_sidecar(&text);
                if loaded.dirty {
                    write_atomic(&path, &render_sidecar(&loaded.cells))
                        .map_err(|e| format!("study '{}': {e}", spec.name))?;
                    self.obs.journal.event(
                        None,
                        EventKind::JournalRepaired,
                        &format!("{}: trace sidecar tail dropped", spec.name),
                    );
                }
                // Entries beyond the grid cannot belong to this
                // declaration; drop them rather than serve them.
                traces = loaded
                    .cells
                    .into_iter()
                    .filter(|c| (c.cell as usize) < campaign.n_cells())
                    .collect();
            }
        }
        if store.repaired() {
            self.obs.journal.event(
                None,
                EventKind::JournalRepaired,
                &format!("{}: result journal tail dropped", spec.name),
            );
        }

        let span = self
            .obs
            .journal
            .begin_span(None, &format!("study:{}", spec.name));
        let key = (tenant, spec.name.clone());
        let study = Study::new(spec, campaign, store, cancelled, span, traces);
        self.studies.insert(key.clone(), study);
        self.obs.studies_gauge.set(self.studies.len() as u64);
        Ok(self.studies.get(&key).expect("just inserted"))
    }

    /// Accepts a submission: admission control, then
    /// attach-or-report-existing as one atomic step under the manager
    /// (and therefore the caller's lock). The spec's tenant must be the
    /// authenticated tenant (the router fills it in; `None` means the
    /// default tenant). Re-submitting a byte-identical declaration is
    /// idempotent — the existing study comes back with
    /// `created = false`; a different declaration under an existing
    /// `(tenant, name)` is refused. Because the existence check and
    /// the attach happen inside this single `&mut self` call, two
    /// racing identical submissions get exactly one `created = true`
    /// between them.
    ///
    /// # Errors
    ///
    /// A structured [`Refusal`]: `403 unknown-tenant`, `409 conflict`,
    /// `429 study-budget` / `429 cell-budget` (admission), `500
    /// persistence`.
    pub fn submit(&mut self, mut spec: StudySpec) -> Result<(&Study, bool), Refusal> {
        // The default tenant stays implicit (`None`) so a loopback
        // spec's canonical bytes are exactly the pre-tenant ones.
        if spec.tenant.as_deref() == Some(DEFAULT_TENANT) {
            spec.tenant = None;
        }
        let tenant = spec
            .tenant
            .clone()
            .unwrap_or_else(|| DEFAULT_TENANT.to_string());
        if !self.tenants.contains_key(&tenant) && self.registry.get(&tenant).is_none() {
            return Err(self.refused(Refusal::new(
                403,
                "unknown-tenant",
                format!("unknown tenant '{tenant}'"),
            )));
        }

        let key = (tenant.clone(), spec.name.clone());
        if let Some(existing) = self.studies.get(&key) {
            return if existing.spec == spec {
                Ok((self.studies.get(&key).expect("present"), false))
            } else {
                Err(self.refused(Refusal::new(
                    409,
                    "conflict",
                    format!(
                        "study '{}' already exists with a different declaration",
                        spec.name
                    ),
                )))
            };
        }

        // Admission control against the tenant table's budgets.
        if let Some(t) = self.registry.get(&tenant) {
            if let Some(max) = t.max_studies {
                let running = self.running_studies(&tenant) as u64;
                if running >= max {
                    return Err(self.refused(Refusal::new(
                        429,
                        "study-budget",
                        format!(
                            "tenant '{tenant}' already runs {running} of {max} allowed concurrent studies"
                        ),
                    )));
                }
            }
            if let Some(max) = t.max_cells {
                let outstanding = self.outstanding_cells(&tenant);
                let declared = spec.n_cells() as u64;
                if outstanding + declared > max {
                    return Err(self.refused(Refusal::new(
                        429,
                        "cell-budget",
                        format!(
                            "study declares {declared} cells but tenant '{tenant}' has \
                             {outstanding} outstanding of a {max}-cell budget"
                        ),
                    )));
                }
            }
        }

        // Attach (and therefore validate against any pre-existing store)
        // *before* persisting the spec: a spec file without a loadable
        // study would make every future daemon start fail.
        if tenant != DEFAULT_TENANT {
            if let Some(dir) = self.tenant_dir(&tenant) {
                std::fs::create_dir_all(&dir).map_err(|e| {
                    Refusal::new(
                        500,
                        "persistence",
                        format!("cannot create tenant dir {}: {e}", dir.display()),
                    )
                })?;
            }
        }
        let name = spec.name.clone();
        let spec_json = spec.to_json();
        self.attach(spec)
            .map_err(|e| Refusal::new(500, "persistence", e))?;
        if let Some(path) = self.spec_path(&tenant, &name) {
            if let Err(e) = write_atomic(&path, &spec_json) {
                self.studies.remove(&key);
                return Err(Refusal::new(500, "persistence", e));
            }
        }
        // Accounting: a created study charges the tenant's meter.
        self.tenants
            .get_mut(&tenant)
            .expect("ensured by attach")
            .usage
            .studies += 1;
        self.persist_usage()
            .map_err(|e| Refusal::new(500, "persistence", e))?;
        Ok((self.studies.get(&key).expect("just attached"), true))
    }

    /// Records a refusal in the journal and the per-reason counter,
    /// then hands it back unchanged (used as `Err(self.refused(..))`).
    fn refused(&self, r: Refusal) -> Refusal {
        self.obs.journal.event(
            None,
            EventKind::AdmissionRefused,
            &format!("{} {}", r.status, r.reason),
        );
        self.obs
            .registry
            .counter(
                &format!("tuna_admission_refused_total{{reason=\"{}\"}}", r.reason),
                "submissions refused by admission control, by reason",
            )
            .inc();
        r
    }

    /// Records a connection-engine shed (408/429/503) in the journal.
    /// Other statuses (framing errors) are not shed events and are
    /// ignored. The per-class counters live in the engine itself; this
    /// hook exists so the discrete events land in the same journal as
    /// scheduling, with the same clock.
    pub fn note_shed(&self, status: u16) {
        let kind = match status {
            408 => EventKind::Shed408,
            429 => EventKind::Shed429,
            503 => EventKind::Shed503,
            _ => return,
        };
        self.obs
            .journal
            .event(None, kind, &format!("status={status}"));
    }

    /// Running studies of a tenant.
    fn running_studies(&self, tenant: &str) -> usize {
        self.studies
            .iter()
            .filter(|((t, _), s)| t == tenant && s.phase() == StudyPhase::Running)
            .count()
    }

    /// Outstanding (declared minus completed) cells across a tenant's
    /// running studies — what the cell budget meters.
    fn outstanding_cells(&self, tenant: &str) -> u64 {
        self.studies
            .iter()
            .filter(|((t, _), s)| t == tenant && s.phase() == StudyPhase::Running)
            .map(|(_, s)| (s.campaign.n_cells() - s.store.len()) as u64)
            .sum()
    }

    /// Looks up a study in a tenant's namespace.
    pub fn get(&self, tenant: &str, name: &str) -> Option<&Study> {
        self.studies.get(&(tenant.to_string(), name.to_string()))
    }

    /// All studies, (tenant, name)-ordered.
    pub fn studies(&self) -> impl Iterator<Item = &Study> {
        self.studies.values()
    }

    /// One tenant's studies, name-ordered.
    pub fn studies_of<'a>(&'a self, tenant: &'a str) -> impl Iterator<Item = &'a Study> {
        self.studies
            .iter()
            .filter(move |((t, _), _)| t == tenant)
            .map(|(_, s)| s)
    }

    /// The tenant table this manager authenticates against.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Resolves a request's bearer token to a tenant name.
    ///
    /// # Errors
    ///
    /// A structured [`Refusal`]: `401 missing-token` or `403
    /// bad-token`.
    pub fn authenticate(&self, bearer: Option<&str>) -> Result<String, Refusal> {
        match self.registry.authenticate(bearer) {
            Ok(t) => Ok(t.name.clone()),
            Err(e) => Err(Refusal {
                status: e.status(),
                reason: e.reason(),
                message: e.message().to_string(),
            }),
        }
    }

    /// A tenant's usage meter.
    pub fn usage(&self, tenant: &str) -> Option<TenantUsage> {
        self.tenants.get(tenant).map(|t| t.usage)
    }

    /// The `GET /v1/tenants` document: every known tenant with its
    /// weight, running-study count, budgets and usage meter.
    pub fn tenants_json(&self) -> String {
        let rows: Vec<String> = self
            .tenants
            .iter()
            .map(|(name, ts)| {
                let budgets = self
                    .registry
                    .get(name)
                    .map(|t| {
                        let mut b = String::new();
                        if let Some(m) = t.max_cells {
                            b.push_str(&format!(", \"max_cells\": {m}"));
                        }
                        if let Some(m) = t.max_studies {
                            b.push_str(&format!(", \"max_studies\": {m}"));
                        }
                        b
                    })
                    .unwrap_or_default();
                format!(
                    "{{\"name\": {}, \"weight\": {}, \"running\": {}{budgets}, \
                     \"usage\": {{\"studies\": {}, \"cells\": {}, \"wall_ns\": {}}}}}",
                    tuna_stats::json::quote(name),
                    ts.weight,
                    self.running_studies(name),
                    ts.usage.studies,
                    ts.usage.cells,
                    ts.usage.wall_ns,
                )
            })
            .collect();
        format!("{{\"tenants\": [{}]}}\n", rows.join(", "))
    }

    /// Whether any study has pending cells to hand out.
    pub fn has_pending(&self) -> bool {
        self.studies
            .values()
            .any(|s| !s.cancelled && !s.pending.is_empty())
    }

    /// Whether any cell is currently executing.
    pub fn has_in_flight(&self) -> bool {
        self.studies.values().any(|s| !s.in_flight.is_empty())
    }

    /// Weighted fair-share scheduling (see the module docs): picks the
    /// candidate tenant with the least virtual time, then that tenant's
    /// study by the pre-tenant policy, respecting per-study worker caps
    /// and interactive-lane preemption. Returns `None` when no study
    /// has schedulable work.
    pub fn next_assignment(&mut self) -> Option<Assignment> {
        // Candidate studies under their per-study caps.
        let mut any_interactive = false;
        let mut cands: Vec<(String, String, Lane)> = Vec::new();
        for ((tenant, name), s) in &self.studies {
            if !s.schedulable() {
                continue;
            }
            if s.spec.lane == Lane::Interactive {
                any_interactive = true;
            }
            cands.push((tenant.clone(), name.clone(), s.spec.lane));
        }

        // Tenants with no work at all (pending or in flight) leave the
        // active set and their deficit resets. Judged on the unfiltered
        // study state, so a lane-suppressed or cap-limited tenant keeps
        // its deficit while it waits.
        let mut busy: BTreeSet<&str> = BTreeSet::new();
        for ((tenant, _), s) in &self.studies {
            if (!s.cancelled && !s.pending.is_empty()) || !s.in_flight.is_empty() {
                busy.insert(tenant.as_str());
            }
        }
        for (name, ts) in self.tenants.iter_mut() {
            if ts.active && !busy.contains(name.as_str()) {
                ts.active = false;
                ts.scheduled = 0;
            }
        }

        if cands.is_empty() {
            return None;
        }
        // Interactive preemption at cell boundaries: while any
        // interactive study can take a worker, batch cells wait.
        if any_interactive {
            let before = cands.len();
            cands.retain(|(_, _, lane)| *lane == Lane::Interactive);
            let deferred = (before - cands.len()) as u64;
            if deferred > 0 {
                self.obs.preempted.add(deferred);
                self.obs.journal.event(
                    None,
                    EventKind::Preempted,
                    &format!("{deferred} batch candidates deferred"),
                );
            }
        }

        // Activate candidate tenants. A newcomer starts at the current
        // active minimum virtual time scaled to its weight, so it gets
        // its share from now on instead of a monopolizing back-pay.
        let cand_tenants: BTreeSet<String> = cands.iter().map(|(t, _, _)| t.clone()).collect();
        let min_active: Option<(u64, u64)> = cand_tenants
            .iter()
            .filter_map(|t| self.tenants.get(t))
            .filter(|ts| ts.active)
            .map(|ts| (ts.scheduled, ts.weight))
            .min_by(|a, b| vtime_cmp(*a, *b));
        for t in &cand_tenants {
            let ts = self
                .tenants
                .get_mut(t)
                .expect("candidate tenants are registered");
            if !ts.active {
                ts.active = true;
                ts.scheduled = match min_active {
                    Some((sched, weight)) => {
                        ((sched as u128 * ts.weight as u128) / weight as u128) as u64
                    }
                    None => 0,
                };
            }
        }

        // Stage 1: the tenant minimizing scheduled/weight (ties:
        // least-recently-scheduled, then name).
        let tenant = cand_tenants
            .iter()
            .min_by(|a, b| {
                let ta = &self.tenants[a.as_str()];
                let tb = &self.tenants[b.as_str()];
                vtime_cmp((ta.scheduled, ta.weight), (tb.scheduled, tb.weight))
                    .then_with(|| ta.last_scheduled.cmp(&tb.last_scheduled))
                    .then_with(|| a.cmp(b))
            })?
            .clone();

        // Stage 2: within the tenant, the pre-tenant fair-share policy
        // (fewest in flight, least recently scheduled, name).
        let name = cands
            .iter()
            .filter(|(t, _, _)| *t == tenant)
            .min_by_key(|(t, n, _)| {
                let s = &self.studies[&(t.clone(), n.clone())];
                (s.in_flight.len(), s.last_scheduled, n.clone())
            })
            .map(|(_, n, _)| n.clone())
            .expect("selected tenant has a candidate");

        self.clock += 1;
        let clock = self.clock;
        // The journal's tick clock shadows the scheduler clock: one
        // tick per grant, deterministic at any worker count.
        self.obs.tick.set_at_least(clock);
        let ts = self.tenants.get_mut(&tenant).expect("selected tenant");
        ts.scheduled += 1;
        ts.last_scheduled = clock;
        let study = self
            .studies
            .get_mut(&(tenant.clone(), name.clone()))
            .expect("selected study");
        let cell = study.pending.pop_front().expect("selected study has work");
        study.in_flight.push(cell);
        study.last_scheduled = clock;
        let span = self
            .obs
            .journal
            .begin_span(Some(study.span), &format!("cell:{cell}"));
        study.cell_spans.insert(cell, span);
        let campaign = Arc::clone(&study.campaign);
        self.obs.journal.event(
            Some(span),
            EventKind::Scheduled,
            &format!("{tenant}/{name}"),
        );
        self.obs.assigned.inc();
        self.update_vtime_lag();
        Some(Assignment {
            tenant,
            study: name,
            cell,
            campaign,
        })
    }

    /// Refreshes the per-tenant fair-share lag gauges: each active
    /// tenant's virtual time (scheduled/weight, scaled ×1000 to keep
    /// integer gauges meaningful) minus the active minimum. A tenant
    /// at 0 is at the front of the fair-share queue; a large lag means
    /// it is owed service.
    fn update_vtime_lag(&self) {
        let scaled: Vec<(&String, u64)> = self
            .tenants
            .iter()
            .filter(|(_, ts)| ts.active)
            .map(|(name, ts)| (name, ts.scheduled.saturating_mul(1000) / ts.weight))
            .collect();
        let Some(min) = scaled.iter().map(|(_, v)| *v).min() else {
            return;
        };
        for (name, v) in scaled {
            self.obs
                .registry
                .gauge(
                    &format!("tuna_tenant_vtime_lag{{tenant=\"{name}\"}}"),
                    "fair-share virtual-time lag behind the active minimum, x1000",
                )
                .set(v - min);
        }
    }

    /// Records a finished cell, charging no wall time (tests and
    /// synthetic completions) — see [`StudyManager::complete_timed`].
    ///
    /// # Errors
    ///
    /// See [`StudyManager::complete_timed`].
    pub fn complete(
        &mut self,
        tenant: &str,
        study: &str,
        record: CellRecord,
    ) -> Result<(), String> {
        self.complete_timed(tenant, study, record, 0)
    }

    /// Records a finished cell and charges `wall_ns` to the tenant's
    /// meter. When the study's grid is complete its store is finalized
    /// (canonical CSV + JSON mirror on disk). The updated usage table
    /// persists atomically.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown studies or cells that were never
    /// assigned (double completion).
    pub fn complete_timed(
        &mut self,
        tenant: &str,
        study: &str,
        record: CellRecord,
        wall_ns: u64,
    ) -> Result<(), String> {
        self.complete_traced(tenant, study, record, wall_ns, None)
    }

    /// Records a finished cell together with its convergence trace.
    /// The trace line is appended to the study's `<name>.trace` sidecar
    /// *before* the result store records the cell: a kill between the
    /// two re-executes the cell (cells are pure), and the duplicate
    /// sidecar line is dropped first-wins on reload — so the assembled
    /// trace document is byte-identical across kill/restart and worker
    /// counts. Completions without a trace (synthetic perf records,
    /// untuned arms) are legal and simply leave no sidecar line.
    ///
    /// # Errors
    ///
    /// See [`StudyManager::complete_timed`]; additionally a sidecar
    /// append failure is reported before the result is recorded.
    pub fn complete_traced(
        &mut self,
        tenant: &str,
        study: &str,
        record: CellRecord,
        wall_ns: u64,
        trace: Option<CellTrace>,
    ) -> Result<(), String> {
        let trace_path = self.trace_path(tenant, study);
        let key = (tenant.to_string(), study.to_string());
        let s = self
            .studies
            .get_mut(&key)
            .ok_or_else(|| format!("unknown study '{study}' for tenant '{tenant}'"))?;
        let Some(slot) = s.in_flight.iter().position(|&c| c == record.cell) else {
            return Err(format!(
                "study '{study}': cell {} was not in flight",
                record.cell
            ));
        };

        if let Some(trace) = trace {
            match s.traces.binary_search_by_key(&trace.cell, |c| c.cell) {
                // Already traced: a resumed cell re-ran after a kill
                // that landed between sidecar append and store record.
                // First wins (re-execution is bit-identical anyway).
                Ok(_) => {}
                Err(at) => {
                    if let Some(path) = &trace_path {
                        append_line(path, &trace.render_line())
                            .map_err(|e| format!("study '{study}': {e}"))?;
                    }
                    s.traces.insert(at, trace);
                }
            }
        }

        s.in_flight.remove(slot);
        let cell_idx = record.cell;
        s.store.record(&s.campaign, record);
        if s.store.len() == s.campaign.n_cells() {
            s.store
                .finalize(&s.campaign)
                .map_err(|e| format!("study '{study}': finalize failed: {e}"))?;
        }
        if let Some(span) = s.cell_spans.remove(&cell_idx) {
            self.obs.journal.end_span(span);
        }
        self.obs.journal.event(
            None,
            EventKind::Completed,
            &format!("{tenant}/{study} cell {cell_idx}"),
        );
        if s.store.len() == s.campaign.n_cells() {
            self.obs.journal.end_span(s.span);
        }
        self.obs.completed.inc();
        let ts = self
            .tenants
            .get_mut(tenant)
            .expect("study tenants are registered");
        ts.usage.cells += 1;
        ts.usage.wall_ns += wall_ns;
        self.persist_usage()
    }

    /// Cancels a study: pending cells are dropped (in-flight cells
    /// finish and are still recorded), and the cancellation is
    /// persisted (a marker file next to the store) so a restarted
    /// daemon does not resume it. Cancelling a `Done` study is a no-op.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown studies.
    pub fn cancel(&mut self, tenant: &str, study: &str) -> Result<&Study, String> {
        let marker = self.cancel_marker_path(tenant, study);
        let key = (tenant.to_string(), study.to_string());
        let s = self
            .studies
            .get_mut(&key)
            .ok_or_else(|| format!("unknown study '{study}' for tenant '{tenant}'"))?;
        if s.phase() != StudyPhase::Done {
            s.cancelled = true;
            s.pending.clear();
            if let Some(path) = marker {
                write_atomic(&path, "cancelled\n")?;
            }
        }
        Ok(self.studies.get(&key).expect("present"))
    }

    /// Abandons an in-flight cell whose execution failed (a worker
    /// caught a panic): the cell is taken out of flight and the study
    /// is cancelled — a panicking declaration is a bug, and retrying it
    /// forever would wedge the pool instead.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown studies; unknown cells are ignored.
    pub fn abandon(&mut self, tenant: &str, study: &str, cell: usize) -> Result<(), String> {
        {
            let key = (tenant.to_string(), study.to_string());
            let s = self
                .studies
                .get_mut(&key)
                .ok_or_else(|| format!("unknown study '{study}' for tenant '{tenant}'"))?;
            s.in_flight.retain(|&c| c != cell);
        }
        self.cancel(tenant, study).map(|_| ())
    }

    /// The study's results document — exactly the store's canonical
    /// JSON ([`ResultStore::to_json`]), which is also byte-identical to
    /// the `.json` mirror a batch [`tuna_core::campaign::CampaignRunner`]
    /// run of the same declaration finalizes to.
    pub fn results_json(&self, tenant: &str, study: &str) -> Option<String> {
        let s = self.get(tenant, study)?;
        Some(s.store.to_json(&s.campaign))
    }

    /// The study's convergence-trace document
    /// (`GET /v1/studies/<name>/trace`): best-cost-so-far series per
    /// arm, per completed cell, assembled from the trace sidecar's
    /// in-memory mirror — never from the row store. Cells are sorted by
    /// index and the document carries no clock values, so it is
    /// byte-identical across worker counts and kill/restart.
    pub fn trace_json(&self, tenant: &str, study: &str) -> Option<String> {
        let s = self.get(tenant, study)?;
        Some(
            StudyTrace {
                study: s.spec.name.clone(),
                digest: s.campaign.digest(),
                n_cells: s.campaign.n_cells() as u64,
                cells: s.traces.clone(),
            }
            .to_json(),
        )
    }

    /// The Prometheus text exposition document (`GET /metrics`): the
    /// manager's own registry (scheduler, admission, fair-share)
    /// merged with the process-global one (executor, pipeline,
    /// quarantine, engine, store repair).
    pub fn metrics_text(&self) -> String {
        MetricsRegistry::render_many(&[&self.obs.registry, tuna_obs::global()])
    }

    /// The span/event journal's deterministic plain-text rendering
    /// (tests and diagnostics; not a wire surface).
    pub fn journal_render(&self) -> String {
        self.obs.journal.render()
    }

    /// The manager's journal (assertions on counts/events).
    pub fn journal(&self) -> &Journal {
        &self.obs.journal
    }
}

fn is_spec_path(p: &std::path::Path) -> bool {
    p.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".spec.json"))
}

fn read_spec(path: &std::path::Path) -> Result<StudySpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    StudySpec::parse(&text)
        .map_err(|e| format!("persisted spec {} is invalid: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_core::campaign::execute_cell;
    use tuna_core::executor::ExecutionMode;

    fn spec(name: &str, runs: usize) -> StudySpec {
        StudySpec::parse(&format!(
            r#"{{"name": "{name}", "seed": 5, "runs": {runs}, "rounds": 2,
                "workloads": ["tpcc"],
                "arms": [{{"label": "Default", "method": "default"}}]}}"#
        ))
        .unwrap()
    }

    fn tenant_spec(tenant: &str, name: &str, runs: usize, extra: &str) -> StudySpec {
        StudySpec::parse(&format!(
            r#"{{"name": "{name}", "tenant": "{tenant}", "seed": 5, "runs": {runs},
                "rounds": 2, {extra} "workloads": ["tpcc"],
                "arms": [{{"label": "Default", "method": "default"}}]}}"#
        ))
        .unwrap()
    }

    fn two_tenant_registry() -> TenantRegistry {
        TenantRegistry::parse(
            r#"{"tenants": [
                {"name": "alice", "token": "alice-secret", "weight": 3},
                {"name": "bob", "token": "bob-secret", "weight": 1}
            ]}"#,
        )
        .unwrap()
    }

    fn drain(mgr: &mut StudyManager) {
        while let Some(a) = mgr.next_assignment() {
            let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            mgr.complete(&a.tenant, &a.study, record).unwrap();
        }
    }

    #[test]
    fn fair_share_interleaves_studies() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("aaa", 4)).unwrap();
        mgr.submit(spec("bbb", 4)).unwrap();
        // With nothing in flight, assignments alternate between the two
        // studies instead of draining one first.
        let order: Vec<String> = (0..4)
            .map(|_| mgr.next_assignment().unwrap().study)
            .collect();
        assert_eq!(order, ["aaa", "bbb", "aaa", "bbb"]);
    }

    #[test]
    fn late_study_gets_its_share() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("big", 8)).unwrap();
        let _a = mgr.next_assignment().unwrap();
        let _b = mgr.next_assignment().unwrap();
        // A second study arrives while 'big' holds two workers: the next
        // two grants go to the newcomer (0 in flight vs 2).
        mgr.submit(spec("late", 4)).unwrap();
        assert_eq!(mgr.next_assignment().unwrap().study, "late");
        assert_eq!(mgr.next_assignment().unwrap().study, "late");
    }

    #[test]
    fn weighted_share_respects_tenant_weights() {
        let mut mgr = StudyManager::in_memory_with(two_tenant_registry());
        mgr.submit(tenant_spec("alice", "job", 8, "")).unwrap();
        mgr.submit(tenant_spec("bob", "job", 8, "")).unwrap();
        // Weight 3 vs 1: alice gets 3 of every 4 grants while both
        // compete; completions do not perturb the grant order.
        let mut order = Vec::new();
        while let Some(a) = mgr.next_assignment() {
            order.push(a.tenant.clone());
            let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            mgr.complete(&a.tenant, &a.study, record).unwrap();
        }
        let expect = [
            "alice", "bob", "alice", "alice", "bob", "alice", "alice", "alice", "bob", "alice",
            "alice", "bob", "bob", "bob", "bob", "bob",
        ];
        assert_eq!(order, expect);
    }

    #[test]
    fn late_tenant_joins_at_the_active_minimum() {
        let mut mgr = StudyManager::in_memory_with(two_tenant_registry());
        mgr.submit(tenant_spec("alice", "job", 8, "")).unwrap();
        // Alice alone takes 6 grants (virtual time 2.0)...
        for _ in 0..6 {
            let a = mgr.next_assignment().unwrap();
            let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            mgr.complete(&a.tenant, &a.study, record).unwrap();
        }
        // ...then bob arrives. He starts at alice's virtual time (not
        // zero), so he gets his weighted share from now on instead of a
        // monopolizing back-pay burst: one grant (tie on virtual time,
        // broken by least-recently-scheduled), then alice's weight-3
        // share resumes until she drains, then bob has the pool.
        mgr.submit(tenant_spec("bob", "job", 4, "")).unwrap();
        let mut order = Vec::new();
        for _ in 0..4 {
            let a = mgr.next_assignment().unwrap();
            order.push(a.tenant.clone());
            let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
            mgr.complete(&a.tenant, &a.study, record).unwrap();
        }
        assert_eq!(order, ["bob", "alice", "alice", "bob"]);
    }

    #[test]
    fn interactive_lane_preempts_batch_at_cell_boundaries() {
        let mut mgr = StudyManager::in_memory_with(two_tenant_registry());
        mgr.submit(tenant_spec("alice", "campaign", 6, "")).unwrap();
        let a = mgr.next_assignment().unwrap();
        assert_eq!(a.study, "campaign");
        // An interactive probe arrives: every grant goes to it until it
        // drains; the running batch cell still completes and records.
        mgr.submit(tenant_spec("bob", "probe", 2, r#""lane": "interactive","#))
            .unwrap();
        let p1 = mgr.next_assignment().unwrap();
        let p2 = mgr.next_assignment().unwrap();
        assert_eq!((p1.study.as_str(), p2.study.as_str()), ("probe", "probe"));
        let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
        mgr.complete(&a.tenant, &a.study, record).unwrap();
        // Probe exhausted (both cells in flight): batch resumes.
        assert_eq!(mgr.next_assignment().unwrap().study, "campaign");
    }

    #[test]
    fn per_study_worker_cap_bounds_concurrency() {
        let mut mgr = StudyManager::in_memory();
        let mut capped = spec("capped", 6);
        capped.max_workers = 2;
        mgr.submit(capped).unwrap();
        let a1 = mgr.next_assignment().unwrap();
        let _a2 = mgr.next_assignment().unwrap();
        assert!(
            mgr.next_assignment().is_none(),
            "cap of 2 holds the third grant back"
        );
        let (record, _) = execute_cell(&a1.campaign, a1.cell, ExecutionMode::Serial);
        mgr.complete(&a1.tenant, &a1.study, record).unwrap();
        assert!(mgr.next_assignment().is_some(), "a completion frees a slot");
    }

    #[test]
    fn admission_budgets_refuse_with_structured_reasons() {
        let registry = TenantRegistry::parse(
            r#"{"tenants": [
                {"name": "alice", "token": "t", "max_cells": 6, "max_studies": 2}
            ]}"#,
        )
        .unwrap();
        let mut mgr = StudyManager::in_memory_with(registry);
        mgr.submit(tenant_spec("alice", "one", 2, "")).unwrap();
        mgr.submit(tenant_spec("alice", "two", 2, "")).unwrap();
        let r = mgr
            .submit(tenant_spec("alice", "three", 1, ""))
            .unwrap_err();
        assert_eq!((r.status, r.reason), (429, "study-budget"));
        // Finish a study: the concurrent-study budget frees up, but the
        // cell budget still meters outstanding work.
        drain(&mut mgr);
        mgr.submit(tenant_spec("alice", "three", 2, "")).unwrap();
        let r = mgr.submit(tenant_spec("alice", "four", 8, "")).unwrap_err();
        assert_eq!((r.status, r.reason), (429, "cell-budget"));
        assert!(r.message.contains("8 cells"), "{}", r.message);
        mgr.submit(tenant_spec("alice", "four", 4, "")).unwrap();
    }

    #[test]
    fn unknown_tenant_is_refused() {
        let mut mgr = StudyManager::in_memory();
        let r = mgr.submit(tenant_spec("mallory", "x", 1, "")).unwrap_err();
        assert_eq!((r.status, r.reason), (403, "unknown-tenant"));
    }

    #[test]
    fn namespaces_isolate_same_named_studies() {
        let mut mgr = StudyManager::in_memory_with(two_tenant_registry());
        mgr.submit(tenant_spec("alice", "nightly", 2, "")).unwrap();
        // Same name, different tenant, different declaration: no clash.
        mgr.submit(tenant_spec("bob", "nightly", 4, "")).unwrap();
        assert_eq!(mgr.get("alice", "nightly").unwrap().campaign.n_cells(), 2);
        assert_eq!(mgr.get("bob", "nightly").unwrap().campaign.n_cells(), 4);
        assert!(mgr.get("default", "nightly").is_none());
        assert_eq!(mgr.studies_of("alice").count(), 1);
        // Within a namespace the conflict rule still holds.
        let r = mgr
            .submit(tenant_spec("alice", "nightly", 3, ""))
            .unwrap_err();
        assert_eq!(r.status, 409);
    }

    #[test]
    fn usage_accounting_persists_and_restores() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-usage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = two_tenant_registry();
        let mut mgr = StudyManager::open_with(&dir, registry.clone()).unwrap();
        mgr.submit(tenant_spec("alice", "job", 2, "")).unwrap();
        let a = mgr.next_assignment().unwrap();
        let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
        mgr.complete_timed(&a.tenant, &a.study, record, 5_000)
            .unwrap();
        let before = std::fs::read(dir.join(USAGE_FILE)).unwrap();
        drop(mgr);

        // Restart: counters reload and the file is untouched until the
        // next mutation (kill/restart preserves it byte-identically).
        let mgr = StudyManager::open_with(&dir, registry).unwrap();
        assert_eq!(std::fs::read(dir.join(USAGE_FILE)).unwrap(), before);
        let u = mgr.usage("alice").unwrap();
        assert_eq!((u.studies, u.cells, u.wall_ns), (1, 1, 5_000));
        assert_eq!(mgr.usage("bob").unwrap(), TenantUsage::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn named_tenant_studies_live_in_subdirectories() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-ns-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A loopback daemon writes a pre-tenant, top-level study...
        let mut mgr = StudyManager::open(&dir).unwrap();
        mgr.submit(spec("plain", 2)).unwrap();
        drain(&mut mgr);
        drop(mgr);

        // ...then the daemon is reconfigured with a tenant table: the
        // top-level study reloads as the default tenant's, and a named
        // tenant's files land in its subdirectory.
        let mut mgr = StudyManager::open_with(&dir, two_tenant_registry()).unwrap();
        assert_eq!(
            mgr.get(DEFAULT_TENANT, "plain").unwrap().phase(),
            StudyPhase::Done
        );
        mgr.submit(tenant_spec("alice", "job", 2, "")).unwrap();
        drain(&mut mgr);
        assert!(dir.join("alice/job.spec.json").exists());
        assert!(dir.join("alice/job.json").exists());
        // Default tenant keeps the pre-tenant top-level layout.
        assert!(dir.join("plain.spec.json").exists());
        drop(mgr);

        // A restart reloads both namespaces — even if the tenant table
        // shrank, disk studies are not dropped (implicit weight-1).
        let mgr = StudyManager::open_with(&dir, TenantRegistry::loopback()).unwrap();
        assert_eq!(mgr.get("alice", "job").unwrap().phase(), StudyPhase::Done);
        assert_eq!(
            mgr.get(DEFAULT_TENANT, "plain").unwrap().phase(),
            StudyPhase::Done
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_records_and_finalizes() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 2)).unwrap();
        assert_eq!(
            mgr.get(DEFAULT_TENANT, "s").unwrap().phase(),
            StudyPhase::Running
        );
        drain(&mut mgr);
        let s = mgr.get(DEFAULT_TENANT, "s").unwrap();
        assert_eq!(s.phase(), StudyPhase::Done);
        assert_eq!(s.completed(), 2);
        assert!(mgr
            .results_json(DEFAULT_TENANT, "s")
            .unwrap()
            .contains("\"completed\": 2"));
    }

    #[test]
    fn duplicate_submissions_are_idempotent_conflicts_refused() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 2)).unwrap();
        assert!(mgr.submit(spec("s", 2)).is_ok());
        let r = mgr.submit(spec("s", 3)).unwrap_err();
        assert_eq!((r.status, r.reason), (409, "conflict"));
        assert!(r.message.contains("different declaration"), "{}", r.message);
    }

    #[test]
    fn cancel_drops_pending_work() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 4)).unwrap();
        let a = mgr.next_assignment().unwrap();
        mgr.cancel(DEFAULT_TENANT, "s").unwrap();
        assert_eq!(
            mgr.get(DEFAULT_TENANT, "s").unwrap().phase(),
            StudyPhase::Cancelled
        );
        assert!(mgr.next_assignment().is_none());
        // The in-flight cell still lands.
        let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
        mgr.complete(&a.tenant, &a.study, record).unwrap();
        assert_eq!(mgr.get(DEFAULT_TENANT, "s").unwrap().completed(), 1);
        assert!(mgr.cancel(DEFAULT_TENANT, "nope").is_err());
    }

    #[test]
    fn cancel_survives_restart() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut mgr = StudyManager::open(&dir).unwrap();
        mgr.submit(spec("s", 4)).unwrap();
        mgr.cancel(DEFAULT_TENANT, "s").unwrap();
        drop(mgr);

        let mut mgr = StudyManager::open(&dir).unwrap();
        assert_eq!(
            mgr.get(DEFAULT_TENANT, "s").unwrap().phase(),
            StudyPhase::Cancelled
        );
        assert!(
            mgr.next_assignment().is_none(),
            "a cancelled study must not resume after restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandon_cancels_instead_of_wedging() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 3)).unwrap();
        let a = mgr.next_assignment().unwrap();
        mgr.abandon(&a.tenant, &a.study, a.cell).unwrap();
        let s = mgr.get(DEFAULT_TENANT, "s").unwrap();
        assert_eq!(s.phase(), StudyPhase::Cancelled);
        assert_eq!(s.in_flight(), 0);
        assert!(mgr.next_assignment().is_none());
    }

    #[test]
    fn failed_submit_leaves_no_spec_behind() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-badsub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-existing store under the study's name with a *different*
        // declaration: attach must refuse, and the refused submission
        // must not persist a spec that would brick the next open().
        let other = spec("s", 4).to_campaign();
        let mut store = ResultStore::open(dir.join("s.csv"), &other).unwrap();
        while let Some(cell) = (0..other.n_cells()).find(|c| store.get(*c).is_none()) {
            let (record, _) = execute_cell(&other, cell, ExecutionMode::Serial);
            store.record(&other, record);
        }
        drop(store);

        let mut mgr = StudyManager::open(&dir).unwrap();
        let r = mgr.submit(spec("s", 2)).unwrap_err();
        assert_eq!(r.status, 500);
        assert!(r.message.contains("digest"), "{}", r.message);
        assert!(mgr.get(DEFAULT_TENANT, "s").is_none());
        assert!(!dir.join("s.spec.json").exists(), "spec must not persist");
        // The daemon still starts over this data dir.
        assert!(StudyManager::open(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_store_is_finalized_on_attach() {
        let dir = std::env::temp_dir().join(format!("tuna-mgr-finalize-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut mgr = StudyManager::open(&dir).unwrap();
        mgr.submit(spec("s", 2)).unwrap();
        drain(&mut mgr);
        let results = mgr.results_json(DEFAULT_TENANT, "s").unwrap();
        drop(mgr);

        // Simulate a kill that landed after the last journal append but
        // before finalize: delete the mirror the finalize wrote.
        let mirror = dir.join("s.json");
        std::fs::remove_file(&mirror).unwrap();
        let mgr = StudyManager::open(&dir).unwrap();
        assert_eq!(
            mgr.get(DEFAULT_TENANT, "s").unwrap().phase(),
            StudyPhase::Done
        );
        assert_eq!(std::fs::read_to_string(&mirror).unwrap(), results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_completion_is_refused() {
        let mut mgr = StudyManager::in_memory();
        mgr.submit(spec("s", 2)).unwrap();
        let a = mgr.next_assignment().unwrap();
        let (record, _) = execute_cell(&a.campaign, a.cell, ExecutionMode::Serial);
        mgr.complete(&a.tenant, &a.study, record.clone()).unwrap();
        let err = mgr.complete(&a.tenant, &a.study, record).unwrap_err();
        assert!(err.contains("not in flight"), "{err}");
    }
}
