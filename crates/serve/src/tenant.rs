//! Tenant identity, authentication and usage accounting — the
//! multi-tenant half of the daemon.
//!
//! A [`TenantRegistry`] is the daemon's tenant table: who may talk to
//! it, with what bearer token, at what fair-share weight, and under
//! which admission budgets. Two modes exist:
//!
//! - **Loopback** ([`TenantRegistry::loopback`]): a single implicit
//!   [`DEFAULT_TENANT`] with weight 1 and no budgets. No token is
//!   required (or checked) — this is the only mode in which `tunad`
//!   may bind a loopback address, and the mode every pre-tenant test
//!   and tool keeps using unchanged.
//! - **Configured** ([`TenantRegistry::load`]): a JSON tenant table.
//!   Every request must carry `authorization: Bearer <token>`; a
//!   missing token is a `401`, an unknown one a `403` (both as
//!   structured JSON through the normal engine path). `tunad` refuses
//!   to bind a non-loopback address without a configured table.
//!
//! The config file is one JSON document:
//!
//! ```json
//! {
//!   "tenants": [
//!     {"name": "alice", "token": "alice-secret", "weight": 3,
//!      "max_cells": 10000, "max_studies": 4},
//!     {"name": "bob", "token": "bob-secret"}
//!   ]
//! }
//! ```
//!
//! `weight` defaults to 1; `max_cells` (outstanding-cell budget) and
//! `max_studies` (concurrent running studies) default to unlimited.
//!
//! [`TenantUsage`] is the per-tenant meter the scheduler maintains —
//! studies accepted, cells executed, wall nanoseconds charged — and
//! persists next to the stores (`tenant_usage.json`, canonical and
//! atomically written, so a kill/restart preserves it byte-identically).

use std::collections::BTreeMap;
use std::path::Path;

use crate::api::valid_name;
use tuna_stats::json::{self, Value};

/// The implicit tenant of loopback mode and of studies predating the
/// tenant table.
pub const DEFAULT_TENANT: &str = "default";

/// Largest accepted fair-share weight.
pub const MAX_WEIGHT: u64 = 1_000_000;

/// One row of the tenant table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tenant {
    /// Tenant name — the namespace studies live in (same charset rules
    /// as study names; doubles as the on-disk subdirectory name).
    pub name: String,
    /// Bearer token (`None` only for the loopback default tenant).
    token: Option<String>,
    /// Fair-share weight: a tenant with weight 3 gets 3x the cells of a
    /// weight-1 tenant under contention.
    pub weight: u64,
    /// Admission budget: max outstanding (declared minus completed)
    /// cells across the tenant's running studies.
    pub max_cells: Option<u64>,
    /// Admission budget: max concurrently running studies.
    pub max_studies: Option<u64>,
}

/// Why a request failed authentication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// No usable `authorization: Bearer <token>` header — HTTP 401.
    Missing(String),
    /// A token was presented but matches no tenant — HTTP 403.
    Forbidden(String),
}

impl AuthError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            AuthError::Missing(_) => 401,
            AuthError::Forbidden(_) => 403,
        }
    }

    /// The structured refusal reason.
    pub fn reason(&self) -> &'static str {
        match self {
            AuthError::Missing(_) => "missing-token",
            AuthError::Forbidden(_) => "bad-token",
        }
    }

    /// The client-facing detail.
    pub fn message(&self) -> &str {
        match self {
            AuthError::Missing(m) | AuthError::Forbidden(m) => m,
        }
    }
}

/// The tenant table: names, tokens, weights, budgets.
#[derive(Debug, Clone)]
pub struct TenantRegistry {
    tenants: BTreeMap<String, Tenant>,
    auth_required: bool,
}

impl TenantRegistry {
    /// The loopback registry: one anonymous [`DEFAULT_TENANT`], no auth.
    pub fn loopback() -> Self {
        let mut tenants = BTreeMap::new();
        tenants.insert(
            DEFAULT_TENANT.to_string(),
            Tenant {
                name: DEFAULT_TENANT.to_string(),
                token: None,
                weight: 1,
                max_cells: None,
                max_studies: None,
            },
        );
        TenantRegistry {
            tenants,
            auth_required: false,
        }
    }

    /// Parses a tenant-table document. Auth is required against the
    /// resulting registry.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, invalid names/weights,
    /// missing or duplicated tokens, or an empty table.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("invalid tenant config JSON: {e}"))?;
        let rows = v
            .get("tenants")
            .and_then(Value::as_arr)
            .ok_or("tenant config must be an object with a 'tenants' array")?;
        if rows.is_empty() {
            return Err("tenant config declares no tenants".into());
        }
        let mut tenants: BTreeMap<String, Tenant> = BTreeMap::new();
        for row in rows {
            let name = row
                .get("name")
                .and_then(Value::as_str)
                .ok_or("tenant entry lacks a string 'name'")?
                .to_string();
            if !valid_name(&name) {
                return Err(format!(
                    "invalid tenant name {name:?}: use 1-128 chars of [A-Za-z0-9._-], not starting with '.'"
                ));
            }
            let token = row
                .get("token")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("tenant '{name}' lacks a string 'token'"))?
                .to_string();
            if token.is_empty() || token.len() > 128 || !token.chars().all(|c| c.is_ascii_graphic())
            {
                return Err(format!(
                    "tenant '{name}': token must be 1-128 printable ASCII chars without spaces"
                ));
            }
            let weight = match row.get("weight") {
                None => 1,
                Some(w) => {
                    let x = w
                        .as_f64()
                        .filter(|x| x.fract() == 0.0 && (1.0..=MAX_WEIGHT as f64).contains(x))
                        .ok_or_else(|| {
                            format!(
                                "tenant '{name}': 'weight' must be an integer in 1..={MAX_WEIGHT}"
                            )
                        })?;
                    x as u64
                }
            };
            let budget = |field: &str| -> Result<Option<u64>, String> {
                match row.get(field) {
                    None => Ok(None),
                    Some(b) => {
                        let x = b
                            .as_f64()
                            .filter(|x| x.fract() == 0.0 && (1.0..=1e15).contains(x))
                            .ok_or_else(|| {
                                format!("tenant '{name}': '{field}' must be a positive integer")
                            })?;
                        Ok(Some(x as u64))
                    }
                }
            };
            let tenant = Tenant {
                name: name.clone(),
                token: Some(token.clone()),
                weight,
                max_cells: budget("max_cells")?,
                max_studies: budget("max_studies")?,
            };
            if tenants.insert(name.clone(), tenant).is_some() {
                return Err(format!("duplicate tenant '{name}'"));
            }
            if tenants
                .values()
                .filter(|t| t.token.as_deref() == Some(token.as_str()))
                .count()
                > 1
            {
                return Err(format!(
                    "tenant '{name}': token already used by another tenant"
                ));
            }
        }
        Ok(TenantRegistry {
            tenants,
            auth_required: true,
        })
    }

    /// Loads and parses a tenant-table file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read or fails
    /// [`TenantRegistry::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read tenant config {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Whether requests must carry a bearer token.
    pub fn auth_required(&self) -> bool {
        self.auth_required
    }

    /// Looks up a tenant by name.
    pub fn get(&self, name: &str) -> Option<&Tenant> {
        self.tenants.get(name)
    }

    /// All tenants, name-ordered.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Resolves a request's bearer token (as extracted by the HTTP
    /// parser from `authorization: Bearer <token>`) to a tenant.
    ///
    /// In loopback mode every request (with or without a token)
    /// resolves to the default tenant.
    ///
    /// # Errors
    ///
    /// [`AuthError::Missing`] (401) without a bearer token;
    /// [`AuthError::Forbidden`] (403) for a token matching no tenant.
    pub fn authenticate(&self, bearer: Option<&str>) -> Result<&Tenant, AuthError> {
        if !self.auth_required {
            return Ok(self
                .tenants
                .get(DEFAULT_TENANT)
                .expect("loopback registry has a default tenant"));
        }
        let token = bearer.ok_or_else(|| {
            AuthError::Missing("this daemon requires 'authorization: Bearer <token>'".into())
        })?;
        self.tenants
            .values()
            .find(|t| t.token.as_deref() == Some(token))
            .ok_or_else(|| AuthError::Forbidden("token matches no tenant".into()))
    }
}

/// Per-tenant usage meter (monotonic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Studies accepted (counting each created study once).
    pub studies: u64,
    /// Cells executed to completion.
    pub cells: u64,
    /// Wall nanoseconds charged for those cells (deterministic virtual
    /// time under the simulator, real elapsed time under `tunad`).
    pub wall_ns: u64,
}

impl TenantUsage {
    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == TenantUsage::default()
    }
}

/// Canonical serialization of a usage table — what the manager persists
/// as `tenant_usage.json` (sorted by tenant, zero rows omitted).
pub fn usage_to_json(usage: &BTreeMap<String, TenantUsage>) -> String {
    let rows: Vec<String> = usage
        .iter()
        .filter(|(_, u)| !u.is_zero())
        .map(|(name, u)| {
            format!(
                "    {{\"tenant\": {}, \"studies\": {}, \"cells\": {}, \"wall_ns\": {}}}",
                json::quote(name),
                u.studies,
                u.cells,
                u.wall_ns
            )
        })
        .collect();
    if rows.is_empty() {
        "{\n  \"usage\": []\n}\n".to_string()
    } else {
        format!("{{\n  \"usage\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
    }
}

/// Parses a persisted usage table.
///
/// # Errors
///
/// Returns a message on malformed JSON or invalid counters — a daemon
/// must not silently drop accounting it wrote.
pub fn parse_usage(text: &str) -> Result<BTreeMap<String, TenantUsage>, String> {
    let v = json::parse(text).map_err(|e| format!("invalid usage JSON: {e}"))?;
    let rows = v
        .get("usage")
        .and_then(Value::as_arr)
        .ok_or("usage file must be an object with a 'usage' array")?;
    let mut out = BTreeMap::new();
    for row in rows {
        let name = row
            .get("tenant")
            .and_then(Value::as_str)
            .ok_or("usage row lacks a string 'tenant'")?
            .to_string();
        let counter = |field: &str| -> Result<u64, String> {
            row.get(field)
                .and_then(Value::as_f64)
                .filter(|x| x.fract() == 0.0 && (0.0..=1.8e19).contains(x))
                .map(|x| x as u64)
                .ok_or_else(|| format!("usage row '{name}': bad '{field}'"))
        };
        let usage = TenantUsage {
            studies: counter("studies")?,
            cells: counter("cells")?,
            wall_ns: counter("wall_ns")?,
        };
        if out.insert(name.clone(), usage).is_some() {
            return Err(format!("duplicate usage row for tenant '{name}'"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TenantRegistry {
        TenantRegistry::parse(
            r#"{"tenants": [
                {"name": "alice", "token": "alice-secret", "weight": 3,
                 "max_cells": 100, "max_studies": 2},
                {"name": "bob", "token": "bob-secret"}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn loopback_needs_no_token() {
        let reg = TenantRegistry::loopback();
        assert!(!reg.auth_required());
        assert_eq!(reg.authenticate(None).unwrap().name, DEFAULT_TENANT);
        // Tokens are ignored, not rejected — loopback clients predate auth.
        assert_eq!(
            reg.authenticate(Some("whatever")).unwrap().name,
            DEFAULT_TENANT
        );
    }

    #[test]
    fn configured_registry_authenticates() {
        let reg = table();
        assert!(reg.auth_required());
        assert_eq!(
            reg.authenticate(Some("alice-secret")).unwrap().name,
            "alice"
        );
        assert_eq!(reg.authenticate(Some("bob-secret")).unwrap().name, "bob");
        let missing = reg.authenticate(None).unwrap_err();
        assert_eq!((missing.status(), missing.reason()), (401, "missing-token"));
        let bad = reg.authenticate(Some("nope")).unwrap_err();
        assert_eq!((bad.status(), bad.reason()), (403, "bad-token"));
    }

    #[test]
    fn parse_validates_the_table() {
        for (text, needle) in [
            ("nope", "invalid tenant config"),
            (r#"{"tenants": []}"#, "no tenants"),
            (
                r#"{"tenants": [{"name": "a b", "token": "t"}]}"#,
                "invalid tenant name",
            ),
            (r#"{"tenants": [{"name": "a"}]}"#, "lacks a string 'token'"),
            (
                r#"{"tenants": [{"name": "a", "token": "has space"}]}"#,
                "printable ASCII",
            ),
            (
                r#"{"tenants": [{"name": "a", "token": "t", "weight": 0}]}"#,
                "'weight'",
            ),
            (
                r#"{"tenants": [{"name": "a", "token": "t", "max_cells": -1}]}"#,
                "'max_cells'",
            ),
            (
                r#"{"tenants": [{"name": "a", "token": "t"}, {"name": "a", "token": "u"}]}"#,
                "duplicate tenant",
            ),
            (
                r#"{"tenants": [{"name": "a", "token": "t"}, {"name": "b", "token": "t"}]}"#,
                "already used",
            ),
        ] {
            let err = TenantRegistry::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
        let reg = table();
        assert_eq!(reg.get("alice").unwrap().weight, 3);
        assert_eq!(reg.get("alice").unwrap().max_cells, Some(100));
        assert_eq!(reg.get("bob").unwrap().weight, 1);
        assert_eq!(reg.get("bob").unwrap().max_studies, None);
    }

    #[test]
    fn usage_round_trips_canonically() {
        let mut usage = BTreeMap::new();
        usage.insert(
            "alice".to_string(),
            TenantUsage {
                studies: 2,
                cells: 37,
                wall_ns: 12345,
            },
        );
        usage.insert("idle".to_string(), TenantUsage::default());
        let text = usage_to_json(&usage);
        let parsed = parse_usage(&text).unwrap();
        // Zero rows are omitted on write and therefore absent on read.
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["alice"].cells, 37);
        // Canonical serialization is a fixed point.
        assert_eq!(usage_to_json(&parsed), text);
        assert_eq!(usage_to_json(&BTreeMap::new()), "{\n  \"usage\": []\n}\n");
        assert!(parse_usage("garbage").is_err());
    }
}
