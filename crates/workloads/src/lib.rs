//! Workload models for the TUNA reproduction.
//!
//! A [`Workload`] characterizes what the tuner only ever sees indirectly:
//! the resource-demand mix (which determines how much cloud noise a
//! measurement absorbs), the JOIN/plan sensitivity (which determines how
//! much of the configuration space is *unstable*, §3.2.1) and the metric
//! being optimized. The six presets match §6:
//!
//! | Workload | SuT | Metric | Character |
//! |----------|-----|--------|-----------|
//! | [`tpcc`] | PostgreSQL | throughput | OLTP, one plan-sensitive JOIN |
//! | [`epinions`] | PostgreSQL | throughput | OLTP, simpler queries |
//! | [`tpch`] | PostgreSQL | runtime | OLAP, many easy JOINs |
//! | [`mssales`] | PostgreSQL | runtime | production OLAP, complex JOINs |
//! | [`ycsb_c`] | Redis | p95 latency | read-only Zipfian |
//! | [`wikipedia`] | NGINX | p95 latency | top-500 page serving |

pub mod arrival;

use tuna_cloudsim::components::ComponentVec;

/// The metric a workload optimizes and its nominal (default-config,
/// nominal-machine) value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricKind {
    /// Transactions (or requests) per second; higher is better.
    ThroughputTps {
        /// Default-config throughput on a nominal machine.
        nominal: f64,
    },
    /// Workload completion time in seconds; lower is better.
    RuntimeSeconds {
        /// Default-config runtime on a nominal machine.
        nominal: f64,
    },
    /// 95th-percentile request latency in milliseconds; lower is better.
    P95LatencyMs {
        /// Default-config p95 latency on a nominal machine.
        nominal: f64,
    },
}

impl MetricKind {
    /// Whether larger values are better.
    pub fn higher_is_better(&self) -> bool {
        matches!(self, MetricKind::ThroughputTps { .. })
    }

    /// The nominal value.
    pub fn nominal(&self) -> f64 {
        match self {
            MetricKind::ThroughputTps { nominal }
            | MetricKind::RuntimeSeconds { nominal }
            | MetricKind::P95LatencyMs { nominal } => *nominal,
        }
    }

    /// Unit label for reports.
    pub fn unit(&self) -> &'static str {
        match self {
            MetricKind::ThroughputTps { .. } => "tx/s",
            MetricKind::RuntimeSeconds { .. } => "s",
            MetricKind::P95LatencyMs { .. } => "ms",
        }
    }
}

/// Which SuT a workload targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSystem {
    /// PostgreSQL-style RDBMS.
    Postgres,
    /// Redis-style in-memory KV store.
    Redis,
    /// NGINX-style web server.
    Nginx,
}

/// A workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name.
    pub name: &'static str,
    /// Target system.
    pub target: TargetSystem,
    /// Per-component utilization at the default configuration.
    pub demand: ComponentVec,
    /// Optimized metric.
    pub metric: MetricKind,
    /// Fraction of work flowing through the plan-sensitive JOIN path.
    pub join_fraction: f64,
    /// Actual slowdown of the JOIN path when the bad plan is picked (the
    /// paper observed two orders of magnitude on the plan itself; the
    /// end-to-end factor depends on `join_fraction`).
    pub bad_plan_slowdown: f64,
    /// Width of the near-tie region of the planner cost model, as a
    /// fraction of configuration space (drives how many configs are
    /// unstable).
    pub plan_sensitivity: f64,
    /// Working-set size in MB (drives buffer-sizing knob response).
    pub working_set_mb: f64,
    /// Dataset size in MB (for memory-capacity effects).
    pub dataset_mb: f64,
    /// Zipfian skew of key/page popularity (KV / web workloads).
    pub zipf_s: f64,
    /// Read fraction of the request mix.
    pub read_ratio: f64,
    /// Evaluation duration in 5-minute epochs (OLTP/latency: 1 epoch = the
    /// paper's 5-minute run; OLAP runtimes are shorter but keep an epoch).
    pub eval_epochs: usize,
    /// Scales how much configuration tuning can move performance: 1.0
    /// keeps the raw model response; < 1 flattens it (epinions's small
    /// headroom in §6.1), > 1 amplifies it (mssales's 2.39x best case).
    pub tuning_headroom: f64,
}

/// TPC-C on PostgreSQL: the §3.2.1 case study. One JOIN query whose two
/// candidate plans are estimated nearly equal — the root cause of unstable
/// configs.
pub fn tpcc() -> Workload {
    Workload {
        name: "tpcc",
        target: TargetSystem::Postgres,
        demand: ComponentVec::new(0.55, 0.85, 0.50, 0.30, 0.22),
        metric: MetricKind::ThroughputTps { nominal: 848.0 },
        join_fraction: 0.085,
        bad_plan_slowdown: 30.0,
        plan_sensitivity: 0.55,
        working_set_mb: 9_000.0,
        dataset_mb: 22_000.0,
        zipf_s: 0.0,
        read_ratio: 0.65,
        eval_epochs: 1,
        tuning_headroom: 1.25,
    }
}

/// epinions on PostgreSQL: simpler OLTP queries; higher cache/memory
/// sensitivity makes its convergence the noise-study workload of Figure 2.
pub fn epinions() -> Workload {
    Workload {
        name: "epinions",
        target: TargetSystem::Postgres,
        demand: ComponentVec::new(0.60, 0.55, 0.65, 0.60, 0.35),
        metric: MetricKind::ThroughputTps { nominal: 30_855.0 },
        join_fraction: 0.04,
        bad_plan_slowdown: 10.0,
        plan_sensitivity: 0.35,
        working_set_mb: 5_000.0,
        dataset_mb: 9_000.0,
        zipf_s: 0.0,
        read_ratio: 0.85,
        eval_epochs: 1,
        tuning_headroom: 0.33,
    }
}

/// TPC-H on PostgreSQL: analytical, many relatively easy JOINs — the
/// planner rarely sits near a tie, so unstable configs are not a factor
/// (§6.1's observation).
pub fn tpch() -> Workload {
    Workload {
        name: "tpch",
        target: TargetSystem::Postgres,
        demand: ComponentVec::new(0.80, 0.70, 0.75, 0.40, 0.20),
        metric: MetricKind::RuntimeSeconds { nominal: 114.5 },
        join_fraction: 0.45,
        bad_plan_slowdown: 2.2,
        plan_sensitivity: 0.06,
        working_set_mb: 14_000.0,
        dataset_mb: 30_000.0,
        zipf_s: 0.0,
        read_ratio: 1.0,
        eval_epochs: 1,
        tuning_headroom: 1.0,
    }
}

/// mssales on PostgreSQL: Microsoft's production OLAP workload with many
/// *complex* JOINs — large tuning headroom and heavy use of the
/// high-variance components, which is why traditional sampling stalls on
/// it (§6.1).
pub fn mssales() -> Workload {
    Workload {
        name: "mssales",
        target: TargetSystem::Postgres,
        demand: ComponentVec::new(0.70, 0.60, 0.65, 0.55, 0.35),
        metric: MetricKind::RuntimeSeconds { nominal: 79.4 },
        join_fraction: 0.60,
        bad_plan_slowdown: 3.0,
        plan_sensitivity: 0.30,
        working_set_mb: 11_000.0,
        dataset_mb: 26_000.0,
        zipf_s: 0.0,
        read_ratio: 1.0,
        eval_epochs: 1,
        tuning_headroom: 1.15,
    }
}

/// YCSB-C on Redis: read-only, Zipfian key popularity, optimizing p95
/// latency (§6.4).
pub fn ycsb_c() -> Workload {
    Workload {
        name: "ycsb-c",
        target: TargetSystem::Redis,
        demand: ComponentVec::new(0.75, 0.05, 0.80, 0.65, 0.45),
        metric: MetricKind::P95LatencyMs { nominal: 0.620 },
        join_fraction: 0.0,
        bad_plan_slowdown: 1.0,
        plan_sensitivity: 0.0,
        working_set_mb: 20_000.0,
        dataset_mb: 26_000.0,
        zipf_s: 0.99,
        read_ratio: 1.0,
        eval_epochs: 1,
        tuning_headroom: 0.35,
    }
}

/// Wikipedia top-500 page serving on NGINX, including media, optimizing
/// p95 whole-page latency (§6.4).
pub fn wikipedia() -> Workload {
    Workload {
        name: "wikipedia-top500",
        target: TargetSystem::Nginx,
        demand: ComponentVec::new(0.55, 0.25, 0.50, 0.45, 0.60),
        metric: MetricKind::P95LatencyMs { nominal: 69.7 },
        join_fraction: 0.0,
        bad_plan_slowdown: 1.0,
        plan_sensitivity: 0.0,
        working_set_mb: 4_500.0,
        dataset_mb: 6_000.0,
        zipf_s: 0.80,
        read_ratio: 1.0,
        eval_epochs: 1,
        tuning_headroom: 1.0,
    }
}

/// All six evaluation workloads.
pub fn all_workloads() -> Vec<Workload> {
    vec![tpcc(), epinions(), tpch(), mssales(), ycsb_c(), wikipedia()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads_with_unique_names() {
        let all = all_workloads();
        assert_eq!(all.len(), 6);
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn metric_directions() {
        assert!(tpcc().metric.higher_is_better());
        assert!(epinions().metric.higher_is_better());
        assert!(!tpch().metric.higher_is_better());
        assert!(!mssales().metric.higher_is_better());
        assert!(!ycsb_c().metric.higher_is_better());
        assert!(!wikipedia().metric.higher_is_better());
    }

    #[test]
    fn nominals_match_paper_defaults() {
        // Default-config values recoverable from §6.1/§6.4 percentages.
        assert!((tpcc().metric.nominal() - 848.0).abs() < 1.0);
        assert!((tpch().metric.nominal() - 114.5).abs() < 1.0);
        assert!((mssales().metric.nominal() - 79.4).abs() < 0.1);
        assert!((wikipedia().metric.nominal() - 69.7).abs() < 0.1);
    }

    #[test]
    fn tpcc_is_plan_sensitive_tpch_is_not() {
        assert!(tpcc().plan_sensitivity > 0.3);
        assert!(tpch().plan_sensitivity < 0.1);
    }

    #[test]
    fn demands_are_utilizations() {
        for w in all_workloads() {
            for (c, v) in w.demand.iter() {
                assert!((0.0..=1.0).contains(&v), "{} {c} = {v}", w.name);
            }
        }
    }

    #[test]
    fn mssales_heavy_on_noisy_components() {
        // The production workload leans on cache + memory — the noisy
        // components — which is what makes traditional tuning stall.
        let w = mssales();
        assert!(w.demand.cache > 0.5);
        assert!(w.demand.memory > 0.6);
    }

    #[test]
    fn bad_plan_end_to_end_factor_in_paper_range() {
        // End-to-end degradation when the bad plan is picked:
        // 1 / (1 - jf + jf * slowdown). TPC-C should land in the 30-76%
        // degradation band reported in §3.2.1.
        let w = tpcc();
        let factor = 1.0 / (1.0 - w.join_fraction + w.join_fraction * w.bad_plan_slowdown);
        let degradation = 1.0 - factor;
        assert!(
            (0.30..=0.76).contains(&degradation),
            "degradation {degradation}"
        );
    }

    #[test]
    fn units() {
        assert_eq!(tpcc().metric.unit(), "tx/s");
        assert_eq!(tpch().metric.unit(), "s");
        assert_eq!(ycsb_c().metric.unit(), "ms");
    }
}
