//! Arrival-pattern generators: how a workload's offered load moves over
//! time.
//!
//! The §6 evaluation tunes under a *steady* offered load; production
//! traffic is anything but. An [`ArrivalPattern`] is a deterministic
//! load-factor series — a multiplier on the workload's nominal
//! resource demand per 5-minute epoch — used to study tuning under
//! diurnal swings and bursty arrivals:
//!
//! - [`ArrivalPattern::Steady`]: the paper's flat 1.0× load.
//! - [`ArrivalPattern::Diurnal`]: a day-shaped sinusoid (mean 1.0 by
//!   construction), peaking mid-period — the classic follow-the-sun
//!   interactive profile.
//! - [`ArrivalPattern::Bursty`]: a baseline trough punctuated by
//!   deterministic pseudo-random bursts (hash-derived from the epoch
//!   index, so the series is reproducible without threading an RNG).
//!
//! Generators are pure functions of `(pattern, epoch)`; campaigns stay
//! bit-reproducible under any pattern. [`ArrivalPattern::modulate`]
//! applies a pattern's load factor to a [`Workload`]'s demand vector
//! (clamped to the simulator's `[0, 1]` utilization domain), which is
//! how `fig11_postgres_workloads --pattern ...` tunes for the peak hour
//! instead of the average one.

use crate::Workload;
use tuna_stats::rng::hash_combine;

/// A deterministic offered-load series, in multiples of nominal demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Flat 1.0× load (the paper's evaluation regime).
    Steady,
    /// A sinusoidal day: `1 + amplitude * sin(2π epoch / period)`.
    /// Mean 1.0 over any whole number of periods.
    Diurnal {
        /// Epochs per day (288 five-minute epochs = 24h).
        period: usize,
        /// Peak swing above/below nominal, in `(0, 1)`.
        amplitude: f64,
    },
    /// A `trough`-level baseline with deterministic pseudo-random
    /// bursts of `peak`× load.
    Bursty {
        /// Baseline load factor between bursts (≤ 1).
        trough: f64,
        /// Load factor inside a burst (≥ 1).
        peak: f64,
        /// Probability of an epoch bursting, in 1/1024ths.
        burst_per_1024: u32,
        /// Seed for the burst schedule.
        seed: u64,
    },
}

impl ArrivalPattern {
    /// The default diurnal day: 288 five-minute epochs, ±40% swing.
    pub fn diurnal_default() -> Self {
        ArrivalPattern::Diurnal {
            period: 288,
            amplitude: 0.4,
        }
    }

    /// The default bursty profile: 0.7× baseline, 1.8× bursts, ~12.5%
    /// of epochs bursting.
    pub fn bursty_default() -> Self {
        ArrivalPattern::Bursty {
            trough: 0.7,
            peak: 1.8,
            burst_per_1024: 128,
            seed: 0xB04,
        }
    }

    /// Parses a CLI pattern name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "steady" => Some(ArrivalPattern::Steady),
            "diurnal" => Some(ArrivalPattern::diurnal_default()),
            "bursty" => Some(ArrivalPattern::bursty_default()),
            _ => None,
        }
    }

    /// CLI display name.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Steady => "steady",
            ArrivalPattern::Diurnal { .. } => "diurnal",
            ArrivalPattern::Bursty { .. } => "bursty",
        }
    }

    /// The load factor at `epoch`. Always finite and non-negative.
    pub fn load_factor(&self, epoch: usize) -> f64 {
        match *self {
            ArrivalPattern::Steady => 1.0,
            ArrivalPattern::Diurnal { period, amplitude } => {
                let period = period.max(1) as f64;
                let phase = 2.0 * std::f64::consts::PI * (epoch as f64 / period);
                (1.0 + amplitude * phase.sin()).max(0.0)
            }
            ArrivalPattern::Bursty {
                trough,
                peak,
                burst_per_1024,
                seed,
            } => {
                let draw = hash_combine(seed, epoch as u64) % 1024;
                if (draw as u32) < burst_per_1024 {
                    peak
                } else {
                    trough
                }
            }
        }
    }

    /// The first `epochs` load factors.
    pub fn profile(&self, epochs: usize) -> Vec<f64> {
        (0..epochs).map(|e| self.load_factor(e)).collect()
    }

    /// The largest load factor over one representative window (a
    /// diurnal period, or 1024 epochs for the other shapes) — the
    /// peak-hour multiplier a capacity planner would size for.
    pub fn peak_factor(&self) -> f64 {
        let window = match *self {
            ArrivalPattern::Diurnal { period, .. } => period.max(1),
            _ => 1024,
        };
        self.profile(window)
            .into_iter()
            .fold(0.0f64, |acc, x| acc.max(x))
    }

    /// A copy of `workload` under this pattern's load at `epoch`: every
    /// demand component is scaled by the load factor and clamped to the
    /// simulator's `[0, 1]` utilization domain. The workload keeps its
    /// name — callers that persist results should fold the pattern into
    /// their campaign name instead.
    pub fn modulate(&self, workload: &Workload, epoch: usize) -> Workload {
        self.scale(workload, self.load_factor(epoch))
    }

    /// [`ArrivalPattern::modulate`] at the pattern's peak — tuning for
    /// the worst hour of the day rather than the average one.
    pub fn modulate_peak(&self, workload: &Workload) -> Workload {
        self.scale(workload, self.peak_factor())
    }

    fn scale(&self, workload: &Workload, factor: f64) -> Workload {
        let mut out = workload.clone();
        out.demand = tuna_cloudsim::components::ComponentVec::new(
            (workload.demand.cpu * factor).clamp(0.0, 1.0),
            (workload.demand.disk * factor).clamp(0.0, 1.0),
            (workload.demand.memory * factor).clamp(0.0, 1.0),
            (workload.demand.cache * factor).clamp(0.0, 1.0),
            (workload.demand.os * factor).clamp(0.0, 1.0),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc;

    #[test]
    fn steady_is_flat_unity() {
        let p = ArrivalPattern::Steady;
        assert!(p.profile(100).iter().all(|&x| x == 1.0));
        assert_eq!(p.peak_factor(), 1.0);
    }

    #[test]
    fn diurnal_has_mean_one_and_period() {
        let p = ArrivalPattern::diurnal_default();
        let profile = p.profile(288);
        let mean = profile.iter().sum::<f64>() / profile.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        // Periodic: epoch and epoch+period agree.
        for e in 0..16 {
            assert!((p.load_factor(e) - p.load_factor(e + 288)).abs() < 1e-9);
        }
        // Peak sits at nominal + amplitude.
        assert!((p.peak_factor() - 1.4).abs() < 1e-3, "{}", p.peak_factor());
        // The trough is amplitude below nominal, not negative.
        let min = profile.iter().fold(f64::INFINITY, |a, &x| a.min(x));
        assert!((min - 0.6).abs() < 1e-3, "min {min}");
    }

    #[test]
    fn bursty_is_deterministic_two_level_and_rarely_bursts() {
        let p = ArrivalPattern::bursty_default();
        let a = p.profile(2048);
        assert_eq!(a, p.profile(2048), "same pattern, same series");
        assert!(a.iter().all(|&x| x == 0.7 || x == 1.8));
        let bursts = a.iter().filter(|&&x| x == 1.8).count();
        // ~12.5% of 2048 = 256; allow generous slack for the hash draw.
        assert!((150..400).contains(&bursts), "bursts {bursts}");
        // A different seed reshuffles the schedule.
        let other = ArrivalPattern::Bursty {
            trough: 0.7,
            peak: 1.8,
            burst_per_1024: 128,
            seed: 0x5EED,
        };
        assert_ne!(a, other.profile(2048));
    }

    #[test]
    fn parse_roundtrips_names() {
        for name in ["steady", "diurnal", "bursty"] {
            let p = ArrivalPattern::parse(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(ArrivalPattern::parse("lunar").is_none());
    }

    #[test]
    fn modulate_scales_and_clamps_demand() {
        let w = tpcc();
        let p = ArrivalPattern::diurnal_default();
        let peak = p.modulate_peak(&w);
        // Scaled by 1.4 but clamped into [0, 1]: disk 0.85 saturates.
        assert_eq!(peak.demand.disk, 1.0);
        assert!((peak.demand.cpu - 0.55 * 1.4).abs() < 1e-9);
        assert!(peak.demand.iter().all(|(_, v)| (0.0..=1.0).contains(&v)));
        // Steady modulation is the identity.
        assert_eq!(ArrivalPattern::Steady.modulate(&w, 7), w);
        // Name survives so stores stay compatible with the base naming.
        assert_eq!(peak.name, w.name);
    }
}
