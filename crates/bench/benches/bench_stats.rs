//! Criterion microbenchmarks for the statistical core.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tuna_stats::dist::{Distribution, LogNormal, Zipf};
use tuna_stats::hist::Kde;
use tuna_stats::online::{P2Quantile, Welford};
use tuna_stats::rng::Rng;
use tuna_stats::summary;

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_f64", |b| {
        let mut rng = Rng::seed_from(1);
        b.iter(|| black_box(rng.next_f64()))
    });
    c.bench_function("rng/gaussian", |b| {
        let mut rng = Rng::seed_from(2);
        b.iter(|| black_box(rng.next_gaussian()))
    });
}

fn bench_distributions(c: &mut Criterion) {
    c.bench_function("dist/lognormal_sample", |b| {
        let d = LogNormal::from_mean_cov(1.0, 0.05).unwrap();
        let mut rng = Rng::seed_from(3);
        b.iter(|| black_box(d.sample(&mut rng)))
    });
    c.bench_function("dist/zipf_sample_1e4", |b| {
        let z = Zipf::new(10_000, 0.99).unwrap();
        let mut rng = Rng::seed_from(4);
        b.iter(|| black_box(z.sample_rank(&mut rng)))
    });
}

fn bench_summaries(c: &mut Criterion) {
    let mut rng = Rng::seed_from(5);
    let xs: Vec<f64> = (0..1_000).map(|_| rng.next_gaussian()).collect();
    c.bench_function("summary/relative_range_1k", |b| {
        b.iter(|| black_box(summary::relative_range(&xs)))
    });
    c.bench_function("summary/quantile_1k", |b| {
        b.iter(|| black_box(summary::quantile(&xs, 0.95)))
    });
    c.bench_function("online/welford_1k", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            black_box(w.variance())
        })
    });
    let small: Vec<f64> = xs.iter().take(200).copied().collect();
    c.bench_function("hist/kde_fit_density_200", |b| {
        b.iter(|| {
            let kde = Kde::fit(&small);
            black_box(kde.density(0.0))
        })
    });
}

/// Streaming/selection estimators vs the retained naive oracles on the
/// 10k-sample windows the perf gate tracks. The selection paths are
/// expected to hold a >=2x lead (they measure ~10x here): O(n)
/// selection with a reused scratch vs clone-and-sort per call.
fn bench_streaming_vs_naive_10k(c: &mut Criterion) {
    let mut rng = Rng::seed_from(6);
    let xs: Vec<f64> = (0..10_000).map(|_| rng.next_gaussian()).collect();

    c.bench_function("summary10k/naive_median", |b| {
        b.iter(|| black_box(summary::naive::median(&xs)))
    });
    let mut scratch = Vec::new();
    c.bench_function("summary10k/select_median", |b| {
        b.iter(|| black_box(summary::median_with(&xs, &mut scratch)))
    });

    c.bench_function("summary10k/naive_mad", |b| {
        b.iter(|| black_box(summary::naive::mad(&xs)))
    });
    c.bench_function("summary10k/select_mad", |b| {
        b.iter(|| black_box(summary::mad_with(&xs, &mut scratch)))
    });

    c.bench_function("summary10k/naive_quantile_p95", |b| {
        b.iter(|| black_box(summary::naive::quantile(&xs, 0.95)))
    });
    c.bench_function("summary10k/select_quantile_p95", |b| {
        b.iter(|| black_box(summary::quantile_with(&xs, 0.95, &mut scratch)))
    });

    c.bench_function("summary10k/five_number_single_sort", |b| {
        b.iter(|| black_box(summary::FiveNumber::of_with(&xs, &mut scratch)))
    });

    // Streaming P² per-update cost on the same window.
    c.bench_function("summary10k/p2_quantile_stream", |b| {
        b.iter(|| {
            let mut p95 = P2Quantile::new(0.95);
            for &x in &xs {
                p95.push(x);
            }
            black_box(p95.value())
        })
    });
}

criterion_group!(
    benches,
    bench_rng,
    bench_distributions,
    bench_summaries,
    bench_streaming_vs_naive_10k
);
criterion_main!(benches);
