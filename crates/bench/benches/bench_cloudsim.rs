//! Criterion microbenchmarks for the cloud simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tuna_cloudsim::components::ComponentVec;
use tuna_cloudsim::microbench::Microbenchmark;
use tuna_cloudsim::study::{run_study, StudyConfig};
use tuna_cloudsim::{Cluster, Machine, Region, VmSku};
use tuna_stats::rng::Rng;

fn bench_machine(c: &mut Criterion) {
    c.bench_function("machine/provision", |b| {
        let root = Rng::seed_from(1);
        let sku = VmSku::d8s_v5();
        let region = Region::westus2();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            black_box(Machine::provision(id, &sku, &region, &root))
        })
    });
    c.bench_function("machine/observe", |b| {
        let root = Rng::seed_from(2);
        let mut m = Machine::provision(0, &VmSku::d8s_v5(), &Region::westus2(), &root);
        let demand = ComponentVec::new(0.5, 0.8, 0.5, 0.4, 0.3);
        b.iter(|| black_box(m.observe(&demand)))
    });
    c.bench_function("machine/observe_burstable", |b| {
        let root = Rng::seed_from(3);
        let mut m = Machine::provision(0, &VmSku::b8ms(), &Region::westus2(), &root);
        let demand = ComponentVec::new(0.9, 0.8, 0.5, 0.4, 0.3);
        b.iter(|| black_box(m.observe(&demand)))
    });
}

fn bench_microbench(c: &mut Criterion) {
    c.bench_function("microbench/full_catalog_pass", |b| {
        let mut cluster = Cluster::new(1, VmSku::d8s_v5(), Region::westus2(), 4);
        let catalog = Microbenchmark::catalog();
        b.iter(|| {
            let m = cluster.machine_mut(0);
            let total: f64 = catalog.iter().map(|bench| bench.run(m)).sum();
            black_box(total)
        })
    });
}

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        let cfg = StudyConfig::quick();
        b.iter(|| black_box(run_study(&cfg).total_samples))
    });
    group.finish();
}

criterion_group!(benches, bench_machine, bench_microbench, bench_study);
criterion_main!(benches);
