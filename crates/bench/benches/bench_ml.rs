//! Criterion microbenchmarks for the hand-rolled ML stack.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tuna_ml::forest::{ForestParams, RandomForest};
use tuna_ml::gp::{GaussianProcess, Kernel};
use tuna_ml::linalg::{Cholesky, Matrix};
use tuna_ml::Regressor;
use tuna_stats::rng::Rng;

fn make_data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = Rng::seed_from(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.next_f64()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() + 0.1 * rng.next_gaussian())
        .collect();
    (xs, ys)
}

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_forest");
    for &n in &[50usize, 200] {
        let (xs, ys) = make_data(n, 18, 1);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                let mut rf = RandomForest::new(ForestParams::default());
                rf.fit(black_box(&xs), black_box(&ys), &mut Rng::seed_from(2))
                    .unwrap();
                rf
            })
        });
        let mut rf = RandomForest::new(ForestParams::default());
        rf.fit(&xs, &ys, &mut Rng::seed_from(2)).unwrap();
        let probe: Vec<f64> = (0..18).map(|i| i as f64 / 18.0).collect();
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| rf.predict_stats(black_box(&probe)))
        });
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_process");
    group.sample_size(10);
    for &n in &[50usize, 150] {
        let (xs, ys) = make_data(n, 8, 3);
        group.bench_with_input(BenchmarkId::new("fit_hyperopt", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = GaussianProcess::new(
                    Kernel::Matern52 {
                        lengthscale: 0.5,
                        signal_var: 1.0,
                    },
                    1e-3,
                )
                .unwrap();
                gp.fit_with_hyperopt(black_box(&xs), black_box(&ys))
                    .unwrap();
                gp
            })
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    for &n in &[32usize, 128] {
        let mut rng = Rng::seed_from(5);
        let b_mat = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
        let mut a = b_mat.matmul(&b_mat.transpose());
        a.add_diagonal(n as f64);
        group.bench_with_input(BenchmarkId::new("factor", n), &n, |b, _| {
            b.iter(|| Cholesky::factor(black_box(&a)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest, bench_gp, bench_cholesky);
criterion_main!(benches);
