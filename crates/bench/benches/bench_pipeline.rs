//! Criterion microbenchmarks for the TUNA pipeline and the SuT models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::adjuster::{AdjusterConfig, NoiseAdjuster};
use tuna_core::outlier::OutlierDetector;
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_core::sample::Sample;
use tuna_metrics::{MetricVector, SCHEMA};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::Objective;
use tuna_stats::rng::Rng;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn bench_sut_run(c: &mut Criterion) {
    c.bench_function("sut/postgres_tpcc_run", |b| {
        let pg = Postgres::new();
        let workload = tuna_workloads::tpcc();
        let mut cluster = Cluster::new(1, VmSku::d8s_v5(), Region::westus2(), 1);
        let cfg = pg.default_config();
        let mut rng = Rng::seed_from(2);
        b.iter(|| {
            black_box(
                pg.run(&cfg, &workload, cluster.machine_mut(0), &mut rng)
                    .value,
            )
        })
    });
}

fn bench_detector(c: &mut Criterion) {
    c.bench_function("outlier/classify_10", |b| {
        let detector = OutlierDetector::default();
        let values: Vec<f64> = (0..10).map(|i| 1000.0 + i as f64).collect();
        b.iter(|| black_box(detector.classify(&values)))
    });
}

fn bench_adjuster(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_adjuster");
    group.sample_size(20);
    let mut rng = Rng::seed_from(3);
    let mk_sample = |machine: usize, rng: &mut Rng| {
        let metrics: Vec<f64> = (0..SCHEMA.len()).map(|_| rng.next_f64()).collect();
        Sample::new(
            machine,
            500.0 + 20.0 * rng.next_gaussian(),
            MetricVector::new(metrics),
            false,
        )
    };
    group.bench_function("train_on_config", |b| {
        b.iter(|| {
            let mut adj = NoiseAdjuster::new(AdjusterConfig::paper_default(10));
            for _ in 0..5 {
                let samples: Vec<Sample> = (0..10).map(|w| mk_sample(w, &mut rng)).collect();
                adj.train_on_config(&samples, &mut rng);
            }
            black_box(adj.generations())
        })
    });
    let mut adj = NoiseAdjuster::new(AdjusterConfig::paper_default(10));
    for _ in 0..8 {
        let samples: Vec<Sample> = (0..10).map(|w| mk_sample(w, &mut rng)).collect();
        adj.train_on_config(&samples, &mut rng);
    }
    let probe = mk_sample(3, &mut rng);
    group.bench_function("adjust", |b| {
        b.iter(|| black_box(adj.adjust(&probe, false)))
    });
    group.finish();
}

fn bench_pipeline_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("tuna_step", |b| {
        let pg = Postgres::new();
        let workload = tuna_workloads::tpcc();
        b.iter_with_setup(
            || {
                let cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 5);
                let optimizer = SmacOptimizer::multi_fidelity(
                    pg.space().clone(),
                    Objective::Maximize,
                    SmacParams {
                        n_init: 5,
                        n_random_candidates: 30,
                        ..SmacParams::default()
                    },
                    LadderParams::paper_default(),
                );
                (
                    TunaPipeline::new(
                        TunaConfig::paper_default(1.0),
                        &pg,
                        &workload,
                        Box::new(optimizer),
                        cluster,
                    ),
                    Rng::seed_from(6),
                )
            },
            |(mut pipeline, mut rng)| {
                pipeline.run_rounds(10, &mut rng);
                black_box(pipeline.finish().total_samples)
            },
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sut_run,
    bench_detector,
    bench_adjuster,
    bench_pipeline_step
);
criterion_main!(benches);
