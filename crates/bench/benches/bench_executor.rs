//! Throughput of the parallel trial-execution engine: rounds/sec at 1 vs
//! N workers.
//!
//! A "round" here is one cluster-wide batch — every machine lane runs a
//! slate of configurations, the shape the engine sees from the scheduler,
//! the naive-distributed baseline and deployment evaluation. Serial and
//! parallel modes execute identical work and produce bit-identical
//! outcomes, so the per-iteration times compare directly; on an N-core
//! host the parallel rows should approach N× the serial row for
//! cluster-wide batches (thread spawn overhead is amortized across the
//! batch). The single-config row shows the small-batch regime where lanes
//! are too short for parallelism to pay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::executor::{execute_batch, ExecutionMode, RunRequest};
use tuna_space::Config;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

/// Cluster-wide round: `configs_per_lane` configs on each of `lanes`
/// machines (the executor groups runs by machine, so each lane executes
/// `configs_per_lane` trials in order).
fn round_plan(pg: &Postgres, lanes: usize, configs_per_lane: usize) -> Vec<(Config, usize, u64)> {
    let mut rng = Rng::seed_from(7);
    let mut plan = Vec::with_capacity(lanes * configs_per_lane);
    for c in 0..configs_per_lane {
        let cfg = pg.space().sample(&mut rng);
        for m in 0..lanes {
            let stream = hash_combine(cfg.id().0, hash_combine(c as u64, m as u64));
            plan.push((cfg.clone(), m, stream));
        }
    }
    plan
}

fn modes() -> Vec<(&'static str, ExecutionMode)> {
    vec![
        ("serial", ExecutionMode::Serial),
        ("par2", ExecutionMode::Parallel { workers: 2 }),
        ("par4", ExecutionMode::Parallel { workers: 4 }),
        ("par8", ExecutionMode::Parallel { workers: 8 }),
    ]
}

fn bench_cluster_round(c: &mut Criterion) {
    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();
    let mut group = c.benchmark_group("executor_round");
    for (lanes, per_lane) in [(10usize, 8usize), (32, 16), (64, 32)] {
        let plan = round_plan(&pg, lanes, per_lane);
        for (name, mode) in modes() {
            let mut cluster = Cluster::new(lanes, VmSku::d8s_v5(), Region::westus2(), 3);
            let base = Rng::seed_from(4);
            group.bench_with_input(
                BenchmarkId::new(format!("{lanes}x{per_lane}"), name),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let requests: Vec<RunRequest<'_>> = plan
                            .iter()
                            .map(|(cfg, m, stream)| RunRequest {
                                config: cfg,
                                machine: *m,
                                stream: *stream,
                            })
                            .collect();
                        let (outcomes, _) =
                            execute_batch(mode, &pg, &workload, &mut cluster, &base, &requests);
                        black_box(outcomes.len())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_single_config_round(c: &mut Criterion) {
    // The pipeline's per-step shape: one config, one short run per lane.
    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();
    let cfg = pg.default_config();
    let mut group = c.benchmark_group("executor_step");
    for (name, mode) in modes() {
        let mut cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 5);
        let base = Rng::seed_from(6);
        group.bench_with_input(BenchmarkId::new("1x10", name), &mode, |b, &mode| {
            b.iter(|| {
                let requests: Vec<RunRequest<'_>> = (0..10)
                    .map(|m| RunRequest {
                        config: &cfg,
                        machine: m,
                        stream: hash_combine(cfg.id().0, m as u64),
                    })
                    .collect();
                let (outcomes, _) =
                    execute_batch(mode, &pg, &workload, &mut cluster, &base, &requests);
                black_box(outcomes.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_round, bench_single_config_round);
criterion_main!(benches);
