//! Criterion microbenchmarks for the optimizer layer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::{Objective, Optimizer};
use tuna_space::ConfigSpace;
use tuna_stats::rng::Rng;

fn pg_like_space() -> ConfigSpace {
    ConfigSpace::builder()
        .int_log("a", 16, 24_576)
        .int_log("b", 1, 1_024)
        .float("c", 1.0, 8.0)
        .float("d", 0.1, 2.0)
        .int("e", 10, 500)
        .categorical("f", &["x", "y", "z"])
        .boolean("g")
        .boolean("h")
        .build()
}

fn bench_smac_ask(c: &mut Criterion) {
    let mut group = c.benchmark_group("smac");
    group.sample_size(20);
    for &history in &[20usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("ask_with_history", history),
            &history,
            |b, &history| {
                let space = pg_like_space();
                let mut opt =
                    SmacOptimizer::new(space.clone(), Objective::Minimize, SmacParams::default());
                let mut rng = Rng::seed_from(1);
                for _ in 0..history {
                    let s = opt.ask(&mut rng);
                    let cost = space.encode(&s.config).iter().sum::<f64>();
                    opt.tell(&s.config, cost, s.budget);
                }
                b.iter(|| black_box(opt.ask(&mut rng)))
            },
        );
    }
    group.finish();
}

fn bench_space_ops(c: &mut Criterion) {
    let space = pg_like_space();
    let mut rng = Rng::seed_from(2);
    let cfg = space.sample(&mut rng);
    c.bench_function("space/sample", |b| {
        b.iter(|| black_box(space.sample(&mut rng)))
    });
    c.bench_function("space/encode", |b| b.iter(|| black_box(space.encode(&cfg))));
    c.bench_function("space/neighbor", |b| {
        b.iter(|| black_box(space.neighbor(&cfg, &mut rng)))
    });
    c.bench_function("space/config_id", |b| b.iter(|| black_box(cfg.id())));
}

criterion_group!(benches, bench_smac_ask, bench_space_ops);
criterion_main!(benches);
