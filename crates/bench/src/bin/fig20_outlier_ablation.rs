//! Figure 20 — outlier-detector ablation.
//!
//! Paper: removing the detector lets the optimizer chase raw performance
//! into the unstable zone — mean rises 8.5% but deployment variability is
//! 10.1x higher (σ 550.8 vs 54.8 tx/s).

use tuna_bench::{banner, compare_methods, fail, paper_vs, HarnessArgs};
use tuna_core::experiment::{Experiment, Method};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 20",
        "TUNA with and without the unstable-config detector (TPC-C)",
        "without detector: +8.5% mean but 10.1x the deployment variability",
    );
    let runs = args.runs_or(3, 8, 10);
    let rounds = args.rounds_or(30, 96, 96);

    let mut exp = Experiment::paper_default(tuna_workloads::tpcc());
    exp.rounds = rounds;
    let results = compare_methods(
        &exp,
        &[Method::Tuna, Method::TunaNoOutlier, Method::DefaultConfig],
        runs,
        args.seed,
    )
    .unwrap_or_else(|e| fail(&e));

    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let tuna = get("TUNA");
    let ablated = get("TUNA w/o outlier detector");
    paper_vs(
        "mean without detector vs with",
        "+8.5% (2810 vs 2572)",
        &format!(
            "{:+.1}%",
            (ablated.mean_of_means / tuna.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "std without detector / with",
        "10.1x (550.8 vs 54.8)",
        &format!("{:.1}x", ablated.mean_std / tuna.mean_std.max(1e-9)),
    );
}
