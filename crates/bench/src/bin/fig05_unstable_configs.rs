//! Figure 5 + §3.2.1 — the unstable-configuration case study.
//!
//! (a) Evaluates an initialization set of configs on the *same 30 nodes*
//!     and shows that some configs (the paper's "Config C") perform
//!     extremely well or extremely poorly depending on the machine.
//! (b) Runs 30 independent traditional tuning runs, deploys each run's
//!     best config on 10 fresh VMs, and classifies the transferred configs
//!     stable/unstable: the paper finds 13 of 30 unstable, with up to
//!     76.1% degradation and CoVs up to 36.3%.

use tuna_bench::{banner, paper_vs, HarnessArgs};
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::deploy::evaluate_deployment;
use tuna_core::experiment::{Experiment, Method};
use tuna_core::report::{fmt_value, render_table};
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 5",
        "Unstable configurations during tuning and at deployment (TPC-C)",
        "39% of seen configs unstable; 13/30 best configs unstable on transfer; up to 76% degradation",
    );
    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();

    // (a) Initialization set across 30 identical-SKU nodes.
    println!("--- (a) initialization set on 30 shared nodes ---");
    let mut cluster = Cluster::new(30, VmSku::d8s_v5(), Region::westus2(), args.seed);
    let mut rng = Rng::seed_from(hash_combine(args.seed, 1));
    let mut rows = vec![vec![
        "config".to_string(),
        "mean".to_string(),
        "min".to_string(),
        "max".to_string(),
        "rel.range".to_string(),
        "verdict".to_string(),
    ]];
    let mut init_unstable = 0;
    let n_init = 10;
    let mut init_rng = Rng::seed_from(hash_combine(args.seed, 2));
    let mut shown = 0;
    for idx in 0..n_init {
        let config = if idx == 0 {
            pg.default_config()
        } else {
            pg.space().sample(&mut init_rng)
        };
        let vals: Vec<f64> = (0..30)
            .map(|i| {
                pg.run(&config, &workload, cluster.machine_mut(i), &mut rng)
                    .value
            })
            .collect();
        let rr = summary::relative_range(&vals);
        let unstable = rr > 0.30;
        if unstable {
            init_unstable += 1;
        }
        // The paper presents the default + the configs that do not crash;
        // we show the first six for the table.
        if shown < 6 {
            shown += 1;
            rows.push(vec![
                if idx == 0 {
                    "Default".to_string()
                } else {
                    format!("Config {}", (b'A' + idx as u8 - 1) as char)
                },
                fmt_value(summary::mean(&vals)),
                fmt_value(summary::min(&vals).unwrap()),
                fmt_value(summary::max(&vals).unwrap()),
                format!("{:.1}%", rr * 100.0),
                if unstable { "UNSTABLE" } else { "stable" }.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&rows));
    println!("init-set unstable: {init_unstable}/{n_init}");
    println!();

    // (b) Transferability of best configs from 30 tuning runs.
    println!("--- (b) best configs transferred to 10 new VMs ---");
    let n_runs = args.runs_or(6, 30, 30);
    let rounds = args.rounds_or(25, 50, 96);
    let mut exp = Experiment::paper_default(workload.clone());
    exp.rounds = rounds;
    let mut unstable_count = 0;
    let mut worst_degradation: f64 = 0.0;
    let mut max_cov: f64 = 0.0;
    let mut rows = vec![vec![
        "run".to_string(),
        "tuning best".to_string(),
        "deploy mean".to_string(),
        "deploy min".to_string(),
        "rel.range".to_string(),
        "CoV".to_string(),
        "verdict".to_string(),
    ]];
    for run in 0..n_runs {
        let summary_run = exp.run(
            Method::Traditional,
            hash_combine(args.seed, 100 + run as u64),
        );
        let tuning_best = summary_run
            .tuning
            .as_ref()
            .map(|t| t.best_value)
            .unwrap_or(f64::NAN);
        let d = &summary_run.deployment;
        let rr = d.relative_range;
        let cov = if d.mean != 0.0 { d.std / d.mean } else { 0.0 };
        let unstable = rr > 0.30;
        if unstable {
            unstable_count += 1;
        }
        let degradation = 1.0 - d.five.min / tuning_best.max(1e-9);
        worst_degradation = worst_degradation.max(degradation);
        max_cov = max_cov.max(cov);
        if run < 8 {
            rows.push(vec![
                format!("{}", run + 1),
                fmt_value(tuning_best),
                fmt_value(d.mean),
                fmt_value(d.five.min),
                format!("{:.1}%", rr * 100.0),
                format!("{:.1}%", cov * 100.0),
                if unstable { "UNSTABLE" } else { "stable" }.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&rows));
    paper_vs(
        "transferred best configs unstable",
        "13/30 (43%)",
        &format!("{unstable_count}/{n_runs}"),
    );
    paper_vs(
        "worst transfer degradation vs tuning-time value",
        "up to 76.1%",
        &format!("{:.1}%", worst_degradation * 100.0),
    );
    paper_vs(
        "max deployment CoV",
        "36.3%",
        &format!("{:.1}%", max_cov * 100.0),
    );

    // Bonus: a stable deployment must exist too (the paper's 'stable'
    // panel of Figure 5b) — deploy the default config.
    let base = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), args.seed);
    let drng = Rng::seed_from(hash_combine(args.seed, 3));
    let stable = evaluate_deployment(
        &pg,
        &workload,
        &pg.default_config(),
        &base,
        7,
        10,
        3,
        1.0,
        &drng,
    );
    println!(
        "default-config deployment relative range: {:.1}% (stable reference)",
        stable.relative_range * 100.0
    );
}
