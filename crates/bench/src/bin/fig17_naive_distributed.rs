//! Figure 17 — TUNA vs naive distributed sampling (§6.5.2).
//!
//! Naive distributed runs every config on every node (max budget
//! immediately); TUNA ramps budgets. Initially naive leads (it has
//! max-budget results first), but once TUNA starts promoting, it reaches
//! the same performance ~2.47x faster, matching naive's 500-sample result
//! within ~206 samples on average.

use tuna_bench::{banner, fail, paper_vs, run_campaign, HarnessArgs};
use tuna_core::campaign::{Arm, Campaign, ConvergenceSpec, Recipe};
use tuna_core::report::render_table;
use tuna_stats::summary;

/// Best-so-far (oriented) value after each sample count, step `step`.
fn curve_at(
    trace: &[tuna_core::pipeline::IterationRecord],
    budget: usize,
    step: usize,
) -> Vec<f64> {
    let mut out = Vec::new();
    let mut best = f64::NEG_INFINITY;
    let mut idx = 0;
    for target in (step..=budget).step_by(step) {
        while idx < trace.len() && trace[idx].cumulative_samples <= target {
            if let Some(b) = trace[idx].best_so_far {
                best = best.max(b);
            }
            idx += 1;
        }
        out.push(best);
    }
    out
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 17",
        "Convergence: TUNA vs naive distributed (every config on every node)",
        "TUNA matches naive's 500-sample result in ~206 samples (2.47x faster)",
    );
    let runs = args.runs_or(3, 6, 10);
    let sample_budget = args.rounds_or(150, 500, 500);
    let step = 10usize;

    // One convergence cell per run: TUNA and naive distributed share one
    // RNG stream (historical salt 700, label 3).
    let mut campaign = Campaign::protocol(
        "fig17_naive_distributed",
        args.seed,
        vec![tuna_workloads::tpcc()],
        &[],
    )
    .with_runs(runs);
    campaign.arms = vec![Arm::new(
        "TUNA vs naive",
        Recipe::Convergence(ConvergenceSpec {
            samples: sample_budget,
            seed_salt: 700,
            rng_label: 3,
        }),
    )];
    let result = run_campaign(&args, &campaign);
    let pairs = result.pairs(0, 0).unwrap_or_else(|| {
        fail(
            "convergence curves need in-process traces; delete the --store file \
             (or run without --store) to recompute them",
        )
    });

    let points = sample_budget / step;
    let mut tuna_curves: Vec<Vec<f64>> = Vec::new();
    let mut naive_curves: Vec<Vec<f64>> = Vec::new();
    let mut crossover_samples = Vec::new();
    for (tuna_result, naive_result) in &pairs {
        let t = curve_at(&tuna_result.trace, sample_budget, step);
        let n = curve_at(&naive_result.trace, sample_budget, step);
        // Samples TUNA needs to reach naive's final performance.
        let naive_final = *n.last().unwrap();
        let reach = t
            .iter()
            .position(|&v| v >= naive_final)
            .map(|i| (i + 1) * step);
        if let Some(s) = reach {
            crossover_samples.push(s as f64);
        }
        tuna_curves.push(t);
        naive_curves.push(n);
    }

    let mut rows = vec![vec![
        "samples".to_string(),
        "TUNA best-so-far (tx/s)".to_string(),
        "naive best-so-far (tx/s)".to_string(),
    ]];
    for i in (0..points).step_by((points / 12).max(1)) {
        let t: Vec<f64> = tuna_curves
            .iter()
            .map(|c| c[i])
            .filter(|v| v.is_finite())
            .collect();
        let n: Vec<f64> = naive_curves
            .iter()
            .map(|c| c[i])
            .filter(|v| v.is_finite())
            .collect();
        rows.push(vec![
            format!("{}", (i + 1) * step),
            format!("{:.0}", summary::mean(&t)),
            format!("{:.0}", summary::mean(&n)),
        ]);
    }
    println!("{}", render_table(&rows));

    if crossover_samples.is_empty() {
        println!("TUNA did not reach naive's final level within the budget on any run");
    } else {
        let mean_cross = summary::mean(&crossover_samples);
        paper_vs(
            "samples for TUNA to match naive's final perf",
            "206 (2.47x faster)",
            &format!(
                "{:.0} ({:.2}x faster), reached in {}/{} runs",
                mean_cross,
                sample_budget as f64 / mean_cross,
                crossover_samples.len(),
                runs
            ),
        );
    }
    // The early-phase claim: naive leads before TUNA reaches max budget.
    let early = points / 5;
    let t_early = summary::mean(&tuna_curves.iter().map(|c| c[early]).collect::<Vec<_>>());
    let n_early = summary::mean(&naive_curves.iter().map(|c| c[early]).collect::<Vec<_>>());
    println!(
        "  early phase (at {} samples): naive {:.0} vs TUNA {:.0} (paper: naive leads early)",
        (early + 1) * step,
        n_early,
        t_early
    );
}
