//! Figure 14 — Redis / YCSB-C p95 latency with crash handling.
//!
//! Paper: three traditional-found configs crash Redis 30% of the time
//! (OOM), the default crashes 8%; crashed runs are replaced by the worst
//! default p95 (0.908 ms). TUNA's configs never crash; TUNA ends with
//! 27.5% lower std than default and 86.8% lower than traditional, at
//! +1.7% mean latency vs the default.

use tuna_bench::{banner, campaign_method_table, paper_vs, run_campaign, HarnessArgs};
use tuna_core::campaign::Campaign;
use tuna_core::executor::ExecutionMode;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 14",
        "Redis serving YCSB-C: tuned configs deployed on new VMs (p95 ms)",
        "TUNA never crashes; std 86.8% lower than traditional; mean ~= default",
    );
    let runs = args.runs_or(3, 8, 10);
    let rounds = args.rounds_or(30, 96, 96);

    let campaign = Campaign::protocol(
        "fig14_redis",
        args.seed,
        vec![tuna_workloads::ycsb_c()],
        &tuna_bench::PROTOCOL_METHODS,
    )
    .with_runs(runs)
    .with_rounds(rounds);
    let exp = campaign.experiment(0, ExecutionMode::Serial);
    let result = run_campaign(&args, &campaign);
    let results = campaign_method_table(&campaign, &result, 0, exp.workload.metric.unit());

    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let tuna = get("TUNA");
    let trad = get("Traditional");
    let def = get("Default");
    paper_vs("TUNA deployment crashes", "0", &format!("{}", tuna.crashes));
    paper_vs(
        "traditional deployment crashes",
        "3 configs crash ~30% of runs",
        &format!("{} crashed runs", trad.crashes),
    );
    paper_vs(
        "default crash rate",
        "8%",
        &format!(
            "{:.1}%",
            def.crashes as f64 / (runs * exp.deploy_vms * exp.deploy_repeats) as f64 * 100.0
        ),
    );
    paper_vs(
        "TUNA std / traditional std",
        "13.2% (86.8% lower)",
        &format!("{:.1}%", tuna.mean_std / trad.mean_std.max(1e-9) * 100.0),
    );
    paper_vs(
        "TUNA mean vs default mean",
        "+1.7%",
        &format!(
            "{:+.1}%",
            (tuna.mean_of_means / def.mean_of_means - 1.0) * 100.0
        ),
    );
}
