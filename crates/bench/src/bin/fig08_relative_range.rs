//! Figure 8 — sensitivity analysis of the 30% relative-range threshold.
//!
//! Evaluates 1000 configurations on 10 nodes each and plots the density of
//! their relative ranges: a large stable peak near zero, a long unstable
//! tail, and a trough between them where the paper places its 30%
//! detection threshold.

use tuna_bench::{banner, paper_vs, HarnessArgs};
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_stats::hist::{Histogram, Kde};
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 8",
        "Density of relative ranges over configs seen during tuning (10 nodes each)",
        "threshold at 30% sits in the trough between stable and unstable peaks",
    );
    let n_configs = args.runs_or(150, 1000, 1000);

    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();
    let mut cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), args.seed);
    let mut rng = Rng::seed_from(hash_combine(args.seed, 5));

    let mut ranges = Vec::with_capacity(n_configs);
    let mut unstable = 0;
    for _ in 0..n_configs {
        let config = pg.space().sample(&mut rng);
        let vals: Vec<f64> = (0..10)
            .map(|i| {
                pg.run(&config, &workload, cluster.machine_mut(i), &mut rng)
                    .value
            })
            .collect();
        let rr = summary::relative_range(&vals);
        if rr > 0.30 {
            unstable += 1;
        }
        ranges.push(rr);
    }

    let mut hist = Histogram::new(0.0, 2.5, 50);
    for &r in &ranges {
        hist.push(r);
    }
    println!("histogram of relative ranges (bin width 5%):");
    println!("{}", hist.ascii(48));

    let kde = Kde::fit(&ranges);
    println!("kernel density estimate (x, density):");
    for (x, d) in kde.grid(0.0, 1.5, 16) {
        println!("  {x:>5.2}  {d:>7.3}  {}", "#".repeat((d * 8.0) as usize));
    }
    let trough = kde.trough(0.05, 0.6, 200);
    match trough {
        Some(t) => paper_vs(
            "trough between stable/unstable peaks",
            "~30% (15-30% reasonable)",
            &format!("{:.1}%", t * 100.0),
        ),
        None => println!("  no interior trough found (distribution unimodal at this scale)"),
    }
    paper_vs(
        "configs with relative range > 30%",
        "39.0% of configs seen during tuning",
        &format!(
            "{:.1}% of random configs",
            unstable as f64 / n_configs as f64 * 100.0
        ),
    );
    println!(
        "note: the paper's 39% counts configs *seen during tuning* (the optimizer is drawn toward the\n\
         planner-tie bait region); uniform random configs sit in the unstable zone less often."
    );
}
