//! `tuna` — command-line driver for single tuning runs.
//!
//! The reproduction's equivalent of the artifact's `TUNA.py`: pick a
//! workload, a sampling method and budgets, get the tuning trace summary
//! and the deployment distribution.
//!
//! ```text
//! tuna --workload tpcc --method tuna --rounds 96 --seed 42
//! tuna --workload ycsb-c --method traditional --region centralus
//! tuna --workload tpcc --method tuna --sku c220g5 --region cloudlab
//! ```

use tuna_cloudsim::{Region, VmSku};
use tuna_core::experiment::{Experiment, Method, SolverId};
use tuna_core::report::deploy_line;

fn usage() -> ! {
    eprintln!(
        "usage: tuna [--workload tpcc|epinions|tpch|mssales|ycsb-c|wikipedia]\n\
         \x20           [--method tuna|traditional|naive|no-outlier|no-adjuster|default]\n\
         \x20           [--optimizer smac|gp|random|tournament] [--rounds N] [--seed N]\n\
         \x20           [--region westus2|eastus|centralus|cloudlab]\n\
         \x20           [--sku d8s_v5|b8ms|c220g5] [--deploy-vms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut workload = tuna_workloads::tpcc();
    let mut method = Method::Tuna;
    let mut exp = Experiment::paper_default(workload.clone());
    let mut seed = 42u64;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--workload" => {
                workload = match need(i).as_str() {
                    "tpcc" => tuna_workloads::tpcc(),
                    "epinions" => tuna_workloads::epinions(),
                    "tpch" => tuna_workloads::tpch(),
                    "mssales" => tuna_workloads::mssales(),
                    "ycsb-c" => tuna_workloads::ycsb_c(),
                    "wikipedia" => tuna_workloads::wikipedia(),
                    _ => usage(),
                };
                i += 1;
            }
            "--method" => {
                method = match need(i).as_str() {
                    "tuna" => Method::Tuna,
                    "traditional" => Method::Traditional,
                    "naive" => Method::NaiveDistributed { samples: 500 },
                    "no-outlier" => Method::TunaNoOutlier,
                    "no-adjuster" => Method::TunaNoAdjuster,
                    "default" => Method::DefaultConfig,
                    _ => usage(),
                };
                i += 1;
            }
            "--optimizer" => {
                exp.optimizer = SolverId::new(&need(i)).unwrap_or_else(|_| usage());
                i += 1;
            }
            "--rounds" => {
                exp.rounds = need(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--seed" => {
                seed = need(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--region" => {
                exp.region = match need(i).as_str() {
                    "westus2" => Region::westus2(),
                    "eastus" => Region::eastus(),
                    "centralus" => Region::centralus(),
                    "cloudlab" => Region::cloudlab(),
                    _ => usage(),
                };
                i += 1;
            }
            "--sku" => {
                exp.sku = match need(i).as_str() {
                    "d8s_v5" => VmSku::d8s_v5(),
                    "b8ms" => VmSku::b8ms(),
                    "c220g5" => VmSku::c220g5(),
                    _ => usage(),
                };
                i += 1;
            }
            "--deploy-vms" => {
                exp.deploy_vms = need(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    exp.workload = workload.clone();

    println!(
        "tuning {} / {} with {} ({} rounds, {} on {}, seed {seed})",
        exp.make_sut().name(),
        workload.name,
        method.name(),
        exp.rounds,
        exp.sku.name,
        exp.region.name
    );
    // lint:allow(wall-clock): CLI progress reporting only — the elapsed
    // time is printed to the user and never feeds the tuning result.
    let t0 = std::time::Instant::now();
    let summary = exp.run(method, seed);
    let elapsed = t0.elapsed();

    if let Some(tuning) = &summary.tuning {
        println!(
            "search: {} configs over {} samples; {} flagged unstable; reported best {:.1} {}",
            tuning.n_configs,
            tuning.total_samples,
            tuning.n_unstable_configs,
            tuning.best_value,
            workload.metric.unit()
        );
    }
    println!("best config: {}", summary.best_config);
    println!("{}", deploy_line("deployment", &summary.deployment));
    let stable = summary.deployment.relative_range <= 0.30;
    println!(
        "stability: relative range {:.1}% — {}",
        summary.deployment.relative_range * 100.0,
        if stable { "STABLE" } else { "UNSTABLE" }
    );
    println!("({elapsed:.1?} simulated-run wall time)");
}
