//! Figure 2 — optimizer rate of convergence under synthetic sampling noise.
//!
//! Reproduces §3.1: tune PostgreSQL/epinions with SMAC on an isolated
//! bare-metal node, injecting multiplicative Gaussian noise
//! `P* = P × N(1, σ²)` into the values reported to the tuner, for
//! σ ∈ {0%, 5%, 10%}. The paper finds 5% noise slows time-to-optimal by
//! 2.50x and 10% by 4.35x.

use tuna_bench::{banner, paper_vs, HarnessArgs};
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::report::{fmt_value, render_table};
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::{Objective, Optimizer};
use tuna_stats::bootstrap::bootstrap_mean_ci;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 2",
        "Optimizer convergence vs synthetic noise (epinions, SMAC)",
        "0->5% noise slows time-to-optimal 2.50x; 0->10% slows 4.35x",
    );
    let runs = args.runs_or(6, 24, 100);
    let iters = args.rounds_or(40, 100, 100);

    let pg = Postgres::new();
    let workload = tuna_workloads::epinions();
    let memory_mb = VmSku::c220g5().memory_gb * 1024.0;
    let noise_levels = [0.0, 0.05, 0.10];

    // curves[level][iter] = mean oracle (noise-free) perf of best-so-far.
    let mut curves: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); iters]; noise_levels.len()];

    for (li, &sigma) in noise_levels.iter().enumerate() {
        for run in 0..runs {
            let seed = hash_combine(args.seed, (li * 1000 + run) as u64);
            let mut rng = Rng::seed_from(seed);
            let mut cluster = Cluster::new(1, VmSku::c220g5(), Region::cloudlab(), seed);
            let mut opt = SmacOptimizer::new(
                pg.space().clone(),
                Objective::Maximize,
                SmacParams {
                    n_init: 10,
                    n_random_candidates: 60,
                    ..SmacParams::default()
                },
            );
            let mut best_oracle = f64::NEG_INFINITY;
            for cell in curves[li].iter_mut().take(iters) {
                let s = opt.ask(&mut rng);
                let outcome = pg.run(&s.config, &workload, cluster.machine_mut(0), &mut rng);
                let noisy = outcome.value * (1.0 + sigma * rng.next_gaussian()).max(0.05);
                opt.tell(&s.config, noisy, s.budget);
                // Oracle view: the noise-free quality of the incumbent.
                if let Some((cfg, _)) = opt.best() {
                    let oracle = pg.noiseless_rel(&cfg, &workload, memory_mb);
                    best_oracle = best_oracle.max(oracle);
                    cell.push(oracle);
                } else {
                    cell.push(0.0);
                }
            }
        }
    }

    // Mean curve (with a 99% CI like the paper's shading) every few iters.
    let mut rows = vec![vec![
        "iter".to_string(),
        "0% mean [99% CI]".to_string(),
        "5% mean [99% CI]".to_string(),
        "10% mean [99% CI]".to_string(),
    ]];
    let mut ci_rng = Rng::seed_from(7);
    let step = (iters / 10).max(1);
    for it in (0..iters).step_by(step) {
        let mut row = vec![format!("{}", it + 1)];
        for curve in curves.iter() {
            let ci = bootstrap_mean_ci(&curve[it], 0.99, 200, &mut ci_rng);
            row.push(format!(
                "{} [{}, {}]",
                fmt_value(ci.point),
                fmt_value(ci.lo),
                fmt_value(ci.hi)
            ));
        }
        rows.push(row);
    }
    println!("{}", render_table(&rows));

    // Time-to-optimal: iterations each curve needs to reach 80% of the
    // noise-free curve's final improvement (the paper's 0%-at-40 ==
    // 5%-at-100 anchor corresponds to a level the noisy curves do reach
    // within the horizon).
    let mean_at = |li: usize, it: usize| summary::mean(&curves[li][it]);
    let final0 = mean_at(0, iters - 1);
    let target = 1.0 + 0.7 * (final0 - 1.0);
    let reach = |li: usize| -> Option<usize> {
        (0..iters)
            .find(|&it| mean_at(li, it) >= target)
            .map(|i| i + 1)
    };
    let t0 = reach(0);
    let t5 = reach(1);
    let t10 = reach(2);
    println!(
        "time-to-reach 70% of the noise-free final improvement (oracle rel {:.3}):",
        target
    );
    println!(
        "  0%: {:?}  5%: {:?}  10%: {:?} iterations (None = not reached in {iters})",
        t0, t5, t10
    );
    if let (Some(a), Some(b)) = (t0, t5) {
        paper_vs(
            "slowdown at 5% noise",
            "2.50x",
            &format!("{:.2}x", b as f64 / a as f64),
        );
    } else if let Some(a) = t0 {
        paper_vs(
            "slowdown at 5% noise",
            "2.50x",
            &format!(
                ">{:.2}x (not reached in {iters} iters)",
                iters as f64 / a as f64
            ),
        );
    }
    if let (Some(a), Some(b)) = (t0, t10) {
        paper_vs(
            "slowdown at 10% noise",
            "4.35x",
            &format!("{:.2}x", b as f64 / a as f64),
        );
    } else if let Some(a) = t0 {
        paper_vs(
            "slowdown at 10% noise",
            "4.35x",
            &format!(
                ">{:.2}x (not reached in {iters} iters)",
                iters as f64 / a as f64
            ),
        );
    }
}
