//! Ablation — outlier-detection threshold sensitivity (§4.2).
//!
//! The paper picks 30% ("the trough between the first and second peaks")
//! and argues any value in 15-30% is reasonable: false positives only cost
//! a little search (another stable config exists nearby), while false
//! negatives deploy disasters. This sweep runs TUNA across thresholds and
//! reports deployment quality plus how much of the search was discarded.

use tuna_bench::{banner, HarnessArgs};
use tuna_cloudsim::Cluster;
use tuna_core::deploy::{default_worst_case, evaluate_deployment};
use tuna_core::experiment::Experiment;
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_core::report::render_table;
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::SmacOptimizer;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablation: threshold",
        "TUNA outlier-detector threshold sweep (TPC-C)",
        "§4.2: anything in 15-30% is reasonable; too-loose thresholds leak unstable configs",
    );
    let runs = args.runs_or(3, 5, 10);
    let rounds = args.rounds_or(25, 60, 96);
    let exp = Experiment::paper_default(tuna_workloads::tpcc());
    let workload = exp.workload.clone();

    let mut rows = vec![vec![
        "threshold".to_string(),
        "deploy mean (tx/s)".to_string(),
        "deploy std".to_string(),
        "flagged unstable/run".to_string(),
        "worst deploy value".to_string(),
    ]];
    for threshold in [0.10, 0.15, 0.20, 0.30, 0.50, 0.80] {
        let mut means = Vec::new();
        let mut stds = Vec::new();
        let mut flagged = Vec::new();
        let mut worst: f64 = f64::INFINITY;
        for run in 0..runs {
            let seed = hash_combine(args.seed, 5_000 + run as u64);
            let sut = exp.make_sut();
            let base = Cluster::new(exp.cluster_size, exp.sku.clone(), exp.region.clone(), seed);
            let mut rng = Rng::seed_from(hash_combine(seed, 13));
            let crash_penalty = default_worst_case(sut.as_ref(), &workload, &base, &rng);
            let mut cfg = TunaConfig::paper_default(crash_penalty);
            cfg.outlier_threshold = threshold;
            let optimizer = SmacOptimizer::multi_fidelity(
                sut.space().clone(),
                exp.objective(),
                exp.smac.clone(),
                LadderParams::paper_default(),
            );
            let mut pipeline = TunaPipeline::new(
                cfg,
                sut.as_ref(),
                &workload,
                Box::new(optimizer),
                base.clone(),
            );
            pipeline.run_until_samples(rounds * exp.cluster_size, &mut rng);
            let result = pipeline.finish();
            let deployment = evaluate_deployment(
                sut.as_ref(),
                &workload,
                &result.best_config,
                &base,
                37,
                exp.deploy_vms,
                exp.deploy_repeats,
                crash_penalty,
                &rng,
            );
            means.push(deployment.mean);
            stds.push(deployment.std);
            flagged.push(result.n_unstable_configs as f64);
            worst = worst.min(deployment.five.min);
        }
        rows.push(vec![
            format!("{:.0}%", threshold * 100.0),
            format!("{:.0}", summary::mean(&means)),
            format!("{:.0}", summary::mean(&stds)),
            format!("{:.1}", summary::mean(&flagged)),
            format!("{worst:.0}"),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "expected shape: tight thresholds flag more configs (some falsely) at little cost;\n\
         loose thresholds stop flagging anything and the worst deployment value collapses."
    );
}
