//! Ablation — outlier-detection threshold sensitivity (§4.2).
//!
//! The paper picks 30% ("the trough between the first and second peaks")
//! and argues any value in 15-30% is reasonable: false positives only cost
//! a little search (another stable config exists nearby), while false
//! negatives deploy disasters. This sweep runs TUNA across thresholds and
//! reports deployment quality plus how much of the search was discarded.

use tuna_bench::{banner, fail, run_campaign, HarnessArgs};
use tuna_core::campaign::{Arm, Campaign, Recipe, SampleBudgetSpec};
use tuna_core::report::render_table;
use tuna_stats::summary;

const THRESHOLDS: [f64; 6] = [0.10, 0.15, 0.20, 0.30, 0.50, 0.80];

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablation: threshold",
        "TUNA outlier-detector threshold sweep (TPC-C)",
        "§4.2: anything in 15-30% is reasonable; too-loose thresholds leak unstable configs",
    );
    let runs = args.runs_or(3, 5, 10);
    let rounds = args.rounds_or(25, 60, 96);

    // One arm per threshold, every arm on the same seeds (historical
    // salt 5000, rng label 13, deploy label 37).
    let mut campaign = Campaign::protocol(
        "ablation_threshold",
        args.seed,
        vec![tuna_workloads::tpcc()],
        &[],
    )
    .with_runs(runs);
    let cluster_size = campaign
        .experiment(0, tuna_core::executor::ExecutionMode::Serial)
        .cluster_size;
    campaign.arms = THRESHOLDS
        .iter()
        .map(|&threshold| {
            Arm::new(
                format!("{:.0}%", threshold * 100.0),
                Recipe::SampleBudget(SampleBudgetSpec {
                    outlier_threshold: Some(threshold),
                    ..SampleBudgetSpec::new(rounds * cluster_size, 5_000, 13, 37)
                }),
            )
        })
        .collect();
    let result = run_campaign(&args, &campaign);

    let mut rows = vec![vec![
        "threshold".to_string(),
        "deploy mean (tx/s)".to_string(),
        "deploy std".to_string(),
        "flagged unstable/run".to_string(),
        "worst deploy value".to_string(),
    ]];
    for (a, arm) in campaign.arms.iter().enumerate() {
        let summaries = result.run_summaries(0, a).unwrap_or_else(|| {
            fail("the unstable-config column needs in-process results; delete the --store file to recompute")
        });
        let means: Vec<f64> = summaries.iter().map(|r| r.deployment.mean).collect();
        let stds: Vec<f64> = summaries.iter().map(|r| r.deployment.std).collect();
        let flagged: Vec<f64> = summaries
            .iter()
            .map(|r| r.tuning.as_ref().unwrap().n_unstable_configs as f64)
            .collect();
        let worst = summaries
            .iter()
            .map(|r| r.deployment.five.min)
            .fold(f64::INFINITY, f64::min);
        rows.push(vec![
            arm.label.clone(),
            format!("{:.0}", summary::mean(&means)),
            format!("{:.0}", summary::mean(&stds)),
            format!("{:.1}", summary::mean(&flagged)),
            format!("{worst:.0}"),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "expected shape: tight thresholds flag more configs (some falsely) at little cost;\n\
         loose thresholds stop flagging anything and the worst deployment value collapses."
    );
}
