//! Ablation — tuning-cluster size (§5.1).
//!
//! The paper fixes the cluster at 10 nodes (the 95%-confidence point of
//! Figure 9). This sweep varies the cluster size with a proportional
//! budget ladder and measures deployment robustness: small clusters miss
//! flips; larger ones spend more per config for diminishing returns.

use tuna_bench::{banner, HarnessArgs};
use tuna_cloudsim::Cluster;
use tuna_core::deploy::{default_worst_case, evaluate_deployment};
use tuna_core::experiment::Experiment;
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_core::report::render_table;
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::SmacOptimizer;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablation: cluster size",
        "TUNA with tuning clusters of 3 / 5 / 10 / 15 nodes (TPC-C, equal samples)",
        "§5.1: 10 nodes balances detection confidence against sample cost",
    );
    let runs = args.runs_or(3, 5, 10);
    let sample_budget = args.rounds_or(250, 600, 960);
    let exp = Experiment::paper_default(tuna_workloads::tpcc());
    let workload = exp.workload.clone();

    let mut rows = vec![vec![
        "cluster".to_string(),
        "ladder".to_string(),
        "deploy mean (tx/s)".to_string(),
        "deploy std".to_string(),
        "deploy rel.range".to_string(),
    ]];
    for (cluster_size, budgets) in [
        (3usize, vec![1usize, 3]),
        (5, vec![1, 2, 5]),
        (10, vec![1, 3, 10]),
        (15, vec![1, 4, 15]),
    ] {
        let ladder = LadderParams {
            budgets,
            eta: 3,
            min_rung_size: 3,
        };
        let mut means = Vec::new();
        let mut stds = Vec::new();
        let mut ranges = Vec::new();
        for run in 0..runs {
            let seed = hash_combine(args.seed, 6_000 + run as u64);
            let sut = exp.make_sut();
            let base = Cluster::new(cluster_size, exp.sku.clone(), exp.region.clone(), seed);
            let mut rng = Rng::seed_from(hash_combine(seed, 17));
            let crash_penalty = default_worst_case(sut.as_ref(), &workload, &base, &rng);
            let mut cfg = TunaConfig::paper_default(crash_penalty);
            cfg.cluster_size = cluster_size;
            cfg.ladder = ladder.clone();
            let optimizer = SmacOptimizer::multi_fidelity(
                sut.space().clone(),
                exp.objective(),
                exp.smac.clone(),
                ladder.clone(),
            );
            let mut pipeline = TunaPipeline::new(
                cfg,
                sut.as_ref(),
                &workload,
                Box::new(optimizer),
                base.clone(),
            );
            pipeline.run_until_samples(sample_budget, &mut rng);
            let result = pipeline.finish();
            let deployment = evaluate_deployment(
                sut.as_ref(),
                &workload,
                &result.best_config,
                &base,
                41,
                exp.deploy_vms,
                exp.deploy_repeats,
                crash_penalty,
                &rng,
            );
            means.push(deployment.mean);
            stds.push(deployment.std);
            ranges.push(deployment.relative_range);
        }
        rows.push(vec![
            format!("{cluster_size}"),
            format!("{:?}", ladder.budgets),
            format!("{:.0}", summary::mean(&means)),
            format!("{:.0}", summary::mean(&stds)),
            format!("{:.1}%", summary::mean(&ranges) * 100.0),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("expected shape: deployment spread shrinks with cluster size, flattening near 10.");
}
