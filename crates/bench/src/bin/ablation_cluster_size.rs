//! Ablation — tuning-cluster size (§5.1).
//!
//! The paper fixes the cluster at 10 nodes (the 95%-confidence point of
//! Figure 9). This sweep varies the cluster size with a proportional
//! budget ladder and measures deployment robustness: small clusters miss
//! flips; larger ones spend more per config for diminishing returns.

use tuna_bench::{banner, fail, run_campaign, HarnessArgs};
use tuna_core::campaign::{Arm, Campaign, ClusterShape, Recipe, SampleBudgetSpec};
use tuna_core::report::render_table;
use tuna_optimizer::multifidelity::LadderParams;
use tuna_stats::summary;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablation: cluster size",
        "TUNA with tuning clusters of 3 / 5 / 10 / 15 nodes (TPC-C, equal samples)",
        "§5.1: 10 nodes balances detection confidence against sample cost",
    );
    let runs = args.runs_or(3, 5, 10);
    let sample_budget = args.rounds_or(250, 600, 960);

    // One arm per cluster shape, every arm on the same seeds (historical
    // salt 6000, rng label 17, deploy label 41).
    let shapes = [
        (3usize, vec![1usize, 3]),
        (5, vec![1, 2, 5]),
        (10, vec![1, 3, 10]),
        (15, vec![1, 4, 15]),
    ];
    let mut campaign = Campaign::protocol(
        "ablation_cluster_size",
        args.seed,
        vec![tuna_workloads::tpcc()],
        &[],
    )
    .with_runs(runs);
    campaign.arms = shapes
        .iter()
        .map(|(size, budgets)| {
            Arm::new(
                format!("{size}"),
                Recipe::SampleBudget(SampleBudgetSpec {
                    cluster: Some(ClusterShape {
                        size: *size,
                        ladder: LadderParams {
                            budgets: budgets.clone(),
                            eta: 3,
                            min_rung_size: 3,
                        },
                    }),
                    ..SampleBudgetSpec::new(sample_budget, 6_000, 17, 41)
                }),
            )
        })
        .collect();
    let result = run_campaign(&args, &campaign);

    let mut rows = vec![vec![
        "cluster".to_string(),
        "ladder".to_string(),
        "deploy mean (tx/s)".to_string(),
        "deploy std".to_string(),
        "deploy rel.range".to_string(),
    ]];
    for (a, (arm, (_, budgets))) in campaign.arms.iter().zip(&shapes).enumerate() {
        let summaries = result.run_summaries(0, a).unwrap_or_else(|| {
            fail("the relative-range column needs in-process results; delete the --store file to recompute")
        });
        let means: Vec<f64> = summaries.iter().map(|r| r.deployment.mean).collect();
        let stds: Vec<f64> = summaries.iter().map(|r| r.deployment.std).collect();
        let ranges: Vec<f64> = summaries
            .iter()
            .map(|r| r.deployment.relative_range)
            .collect();
        rows.push(vec![
            arm.label.clone(),
            format!("{budgets:?}"),
            format!("{:.0}", summary::mean(&means)),
            format!("{:.0}", summary::mean(&stds)),
            format!("{:.1}%", summary::mean(&ranges) * 100.0),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("expected shape: deployment spread shrinks with cluster size, flattening near 10.");
}
