//! Arena study — solver generality under noise regimes.
//!
//! Grids noise regime (region) × solver over TPC-C: the full TUNA
//! pipeline, the registry solvers it subsumes (SMAC, GP, random), and
//! the DarwinGame-style tournament whose head-to-head matches share one
//! machine and noise draw per round. The comparison asks whether
//! match-based noise cancellation can stand in for TUNA's filtering as
//! regions get noisier — and is bit-identical for any `TUNA_WORKERS`.

use tuna_bench::{banner, campaign_method_table, run_campaign, HarnessArgs};
use tuna_core::campaign::Campaign;
use tuna_core::executor::ExecutionMode;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Arena study",
        "TPC-C across (noise regime x solver) head-to-head arenas",
        "match-based noise cancellation vs TUNA filtering as regions get noisier",
    );
    let samples = args.rounds_or(16, 96, 240);

    let campaign = Campaign::arena(
        "arena_solvers",
        args.seed,
        vec![tuna_workloads::tpcc()],
        &["westus2", "centralus"],
        &["tuna", "smac", "gp", "random", "tournament"],
        samples,
    );
    let exp = campaign.experiment(0, ExecutionMode::Serial);
    let result = run_campaign(&args, &campaign);
    let entries = campaign_method_table(&campaign, &result, 0, exp.workload.metric.unit());

    // Tournament resilience: how much of its westus2 deployment mean each
    // solver keeps when moved to the noisy region.
    let get = |label: &str| {
        entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
            .unwrap()
    };
    for solver in ["tuna", "smac", "gp", "random", "tournament"] {
        let calm = get(&format!("westus2/{solver}"));
        let noisy = get(&format!("centralus/{solver}"));
        println!(
            "{solver:>10}: centralus keeps {:5.1}% of westus2 mean (std {:.2}x)",
            noisy.mean_of_means / calm.mean_of_means * 100.0,
            noisy.mean_std / calm.mean_std.max(1e-9),
        );
    }
}
