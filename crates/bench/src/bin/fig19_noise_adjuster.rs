//! Figure 19 — noise-adjuster ablation (§6.6).
//!
//! (a) Convergence: full TUNA vs TUNA without the noise-adjuster model on
//!     epinions — the model makes convergence 13.3% faster on average.
//! (b) Model accuracy: relative error of reported values vs the
//!     max-budget ground truth, by model generation — the paper reports
//!     4.87% → 1.99% after the halfway mark (a 59.2% reduction; 35.8%
//!     averaged over the whole run).

use tuna_bench::{banner, paper_vs, HarnessArgs};
use tuna_cloudsim::Cluster;
use tuna_core::deploy::default_worst_case;
use tuna_core::experiment::Experiment;
use tuna_core::pipeline::{ModelErrorRecord, TunaConfig, TunaPipeline};
use tuna_core::report::render_table;
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::SmacOptimizer;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary;

fn run_variant(
    exp: &Experiment,
    with_model: bool,
    sample_budget: usize,
    seed: u64,
) -> (Vec<f64>, Vec<ModelErrorRecord>) {
    let sut = exp.make_sut();
    let base = Cluster::new(exp.cluster_size, exp.sku.clone(), exp.region.clone(), seed);
    let mut rng = Rng::seed_from(hash_combine(seed, 5));
    let crash_penalty = default_worst_case(sut.as_ref(), &exp.workload, &base, &rng);
    let cfg = if with_model {
        TunaConfig::paper_default(crash_penalty)
    } else {
        TunaConfig::without_adjuster(crash_penalty)
    };
    let optimizer = SmacOptimizer::multi_fidelity(
        sut.space().clone(),
        exp.objective(),
        exp.smac.clone(),
        LadderParams::paper_default(),
    );
    let mut pipeline =
        TunaPipeline::new(cfg, sut.as_ref(), &exp.workload, Box::new(optimizer), base);
    pipeline.run_until_samples(sample_budget, &mut rng);
    let result = pipeline.finish();
    // Best-so-far per 10-sample step.
    let step = 10;
    let mut curve = Vec::new();
    let mut best = f64::NEG_INFINITY;
    let mut idx = 0;
    for target in (step..=sample_budget).step_by(step) {
        while idx < result.trace.len() && result.trace[idx].cumulative_samples <= target {
            if let Some(b) = result.trace[idx].best_so_far {
                best = best.max(b);
            }
            idx += 1;
        }
        curve.push(best);
    }
    (curve, result.model_errors)
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 19",
        "Noise-adjuster ablation on epinions",
        "(a) 13.3% faster convergence with the model; (b) 4.87% -> 1.99% error past midpoint",
    );
    let runs = args.runs_or(3, 8, 100);
    let sample_budget = args.rounds_or(120, 400, 500);

    let exp = Experiment::paper_default(tuna_workloads::epinions());
    let mut with_curves = Vec::new();
    let mut without_curves = Vec::new();
    let mut with_errors: Vec<ModelErrorRecord> = Vec::new();
    let mut speedups = Vec::new();

    for run in 0..runs {
        let seed = hash_combine(args.seed, 500 + run as u64);
        let (cw, ew) = run_variant(&exp, true, sample_budget, seed);
        let (co, _) = run_variant(&exp, false, sample_budget, seed);
        // Convergence speedup averaged over matched performance levels:
        // for the ablation's level at 50%, 75% and 100% of the budget,
        // how many samples did the full system need to get there?
        for frac in [2usize, 4, 3] {
            let idx = (co.len() * frac / 4).min(co.len()) - 1;
            let target = co[idx];
            if let Some(i) = cw.iter().position(|&v| v >= target) {
                speedups.push((idx + 1) as f64 / (i + 1) as f64);
            }
        }
        with_errors.extend(ew);
        with_curves.push(cw);
        without_curves.push(co);
    }

    println!("--- (a) convergence (best-so-far tx/s by samples) ---");
    let points = sample_budget / 10;
    let mut rows = vec![vec![
        "samples".to_string(),
        "TUNA".to_string(),
        "TUNA w/o model".to_string(),
    ]];
    for i in (0..points).step_by((points / 10).max(1)) {
        let w: Vec<f64> = with_curves
            .iter()
            .map(|c| c[i])
            .filter(|v| v.is_finite())
            .collect();
        let o: Vec<f64> = without_curves
            .iter()
            .map(|c| c[i])
            .filter(|v| v.is_finite())
            .collect();
        rows.push(vec![
            format!("{}", (i + 1) * 10),
            format!("{:.0}", summary::mean(&w)),
            format!("{:.0}", summary::mean(&o)),
        ]);
    }
    println!("{}", render_table(&rows));
    if speedups.is_empty() {
        println!("full TUNA never matched the ablation's final level (increase budget)");
    } else {
        paper_vs(
            "convergence speedup from the model",
            "13.3% faster",
            &format!(
                "{:+.1}% faster (geometric mean over {} matched levels)",
                (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
                    * 100.0
                    - 100.0,
                speedups.len(),
            ),
        );
    }

    println!();
    println!("--- (b) reported-value error vs max-budget ground truth ---");
    let mut rows = vec![vec![
        "model generation".to_string(),
        "raw error (w/o model)".to_string(),
        "adjusted error (with model)".to_string(),
        "n".to_string(),
    ]];
    let max_gen = with_errors.iter().map(|e| e.generation).max().unwrap_or(0);
    let buckets = 8.min(max_gen + 1);
    for b in 0..buckets {
        let lo = b * (max_gen + 1) / buckets;
        let hi = (b + 1) * (max_gen + 1) / buckets;
        let in_bucket: Vec<&ModelErrorRecord> = with_errors
            .iter()
            .filter(|e| e.generation >= lo && e.generation < hi)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let raw = summary::mean(&in_bucket.iter().map(|e| e.raw_rel_err).collect::<Vec<_>>());
        let adj = summary::mean(
            &in_bucket
                .iter()
                .map(|e| e.adjusted_rel_err)
                .collect::<Vec<_>>(),
        );
        rows.push(vec![
            format!("{lo}..{hi}"),
            format!("{:.2}%", raw * 100.0),
            format!("{:.2}%", adj * 100.0),
            format!("{}", in_bucket.len()),
        ]);
    }
    println!("{}", render_table(&rows));

    // Past-midpoint reduction, as the paper reports.
    let mid = max_gen / 2;
    let late: Vec<&ModelErrorRecord> = with_errors.iter().filter(|e| e.generation >= mid).collect();
    if !late.is_empty() {
        let raw = summary::mean(&late.iter().map(|e| e.raw_rel_err).collect::<Vec<_>>());
        let adj = summary::mean(&late.iter().map(|e| e.adjusted_rel_err).collect::<Vec<_>>());
        paper_vs(
            "error without model (past midpoint)",
            "4.87%",
            &format!("{:.2}%", raw * 100.0),
        );
        paper_vs(
            "error with model (past midpoint)",
            "1.99%",
            &format!("{:.2}%", adj * 100.0),
        );
        paper_vs(
            "relative error reduction (past midpoint)",
            "59.2% (67.3% of noise removed)",
            &format!("{:.1}%", (1.0 - adj / raw.max(1e-12)) * 100.0),
        );
    }
    let all_raw = summary::mean(
        &with_errors
            .iter()
            .map(|e| e.raw_rel_err)
            .collect::<Vec<_>>(),
    );
    let all_adj = summary::mean(
        &with_errors
            .iter()
            .map(|e| e.adjusted_rel_err)
            .collect::<Vec<_>>(),
    );
    paper_vs(
        "whole-run error reduction",
        "35.8%",
        &format!("{:.1}%", (1.0 - all_adj / all_raw.max(1e-12)) * 100.0),
    );
}
