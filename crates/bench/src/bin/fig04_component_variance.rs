//! Figure 4 + §3.2 text — per-component microbenchmark variance.
//!
//! Reproduces the measurement-study takeaways: CPU and disk are extremely
//! stable in the modern cloud (CoV 0.17% / 0.36%), while memory, OS and
//! cache remain noisy (4.92% / 9.82% / 14.39%).

use tuna_bench::{banner, paper_vs, strip_plot, HarnessArgs};
use tuna_cloudsim::study::{run_study, Lifespan, StudyConfig};
use tuna_core::report::render_table;
use tuna_stats::summary::FiveNumber;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 4",
        "Component microbenchmark variance (short-lived D8s_v5 fleet)",
        "CoV: CPU 0.17%, Disk 0.36%, Mem 4.92%, OS 9.82%, Cache 14.39%",
    );
    let mut cfg = if args.quick {
        StudyConfig::quick()
    } else if args.full {
        StudyConfig::full_scale()
    } else {
        StudyConfig::scaled_default()
    };
    cfg.seed = args.seed;
    let report = run_study(&cfg);

    let benches = [
        ("CPU", "sysbench-cpu-prime", 0.0017),
        ("Disk", "fio-randwrite-aio", 0.0036),
        ("Mem", "mlc-maxbw-1to1", 0.0492),
        ("OS", "osbench-create-threads", 0.0982),
        ("Cache", "stress-ng-cache", 0.1439),
    ];

    println!("relative performance distributions (both regions):");
    println!();
    let mut rows = vec![vec![
        "component".to_string(),
        "region".to_string(),
        "CoV".to_string(),
        "min".to_string(),
        "median".to_string(),
        "max".to_string(),
        "n".to_string(),
    ]];
    for (component, bench, _) in benches {
        for region in ["westus2", "eastus"] {
            let series = report
                .series(bench, region, "Standard_D8s_v5", Lifespan::Short)
                .expect("series present");
            let rel = series.relative_samples();
            let five = FiveNumber::of(&rel);
            rows.push(vec![
                component.to_string(),
                region.to_string(),
                format!("{:.2}%", series.overall.cov() * 100.0),
                format!("{:.3}", five.min),
                format!("{:.3}", five.median),
                format!("{:.3}", five.max),
                format!("{}", series.overall.count()),
            ]);
            println!(
                "{:>6} {:>8} |{}| 0.5..1.5",
                component,
                region,
                strip_plot(&rel, 0.5, 1.5, 60)
            );
        }
    }
    println!();
    println!("{}", render_table(&rows));

    println!("pooled CoV vs paper:");
    for (component, bench, paper_cov) in benches {
        let measured = report
            .pooled_short_cov(bench, "Standard_D8s_v5")
            .expect("pooled");
        paper_vs(
            &format!("{component} CoV"),
            &format!("{:.2}%", paper_cov * 100.0),
            &format!("{:.2}%", measured * 100.0),
        );
    }
    let ordered = benches
        .iter()
        .map(|(_, b, _)| report.pooled_short_cov(b, "Standard_D8s_v5").unwrap())
        .collect::<Vec<_>>();
    let monotone = ordered.windows(2).all(|w| w[0] < w[1]);
    println!("ordering CPU < Disk < Mem < OS < Cache holds: {monotone}");
}
