//! Figure 18 — optimizer generality: TUNA with a Gaussian-process
//! optimizer (§6.6).
//!
//! Paper: swapping SMAC for a GP (OtterTune-style), TUNA achieves 53.1%
//! higher performance with 89.5% lower standard deviation than traditional
//! sampling under the same GP optimizer.

use tuna_bench::{banner, campaign_method_table, paper_vs, run_campaign, HarnessArgs};
use tuna_core::campaign::Campaign;
use tuna_core::executor::ExecutionMode;
use tuna_core::experiment::SolverId;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 18",
        "TPC-C tuned with a Gaussian-process optimizer",
        "TUNA +53.1% performance with 89.5% lower std than traditional (both GP)",
    );
    // The GP's cubic fit cost keeps default budgets lower than SMAC's.
    let runs = args.runs_or(2, 4, 10);
    let rounds = args.rounds_or(10, 30, 96);

    let campaign = Campaign::protocol(
        "fig18_gp_optimizer",
        args.seed,
        vec![tuna_workloads::tpcc()],
        &tuna_bench::PROTOCOL_METHODS,
    )
    .with_runs(runs)
    .with_rounds(rounds)
    .with_optimizer(SolverId::gp());
    let exp = campaign.experiment(0, ExecutionMode::Serial);
    let result = run_campaign(&args, &campaign);
    let results = campaign_method_table(&campaign, &result, 0, exp.workload.metric.unit());

    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let tuna = get("TUNA");
    let trad = get("Traditional");
    paper_vs(
        "TUNA mean vs traditional (GP)",
        "+53.1%",
        &format!(
            "{:+.1}%",
            (tuna.mean_of_means / trad.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "TUNA std / traditional std (GP)",
        "10.5% (89.5% lower)",
        &format!("{:.1}%", tuna.mean_std / trad.mean_std.max(1e-9) * 100.0),
    );
}
