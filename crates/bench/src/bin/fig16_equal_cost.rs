//! Figure 16 — equal-cost comparison vs extended traditional sampling
//! (§6.5.1).
//!
//! Instead of equal wall-clock time, both methods get the same number of
//! samples (the paper uses 500). Extending traditional sampling
//! exacerbates instability: its peak rises but so does its variance; TUNA
//! ends 9.2% faster on average with 87.8% lower std.

use tuna_bench::{banner, paper_vs, HarnessArgs};
use tuna_cloudsim::Cluster;
use tuna_core::deploy::{default_worst_case, evaluate_deployment};
use tuna_core::experiment::{Experiment, Method};
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_core::report::{method_comparison_table, summarize_method};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::SmacOptimizer;
use tuna_stats::rng::{hash_combine, Rng};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 16",
        "Equal-cost: TUNA vs traditional extended to the same sample count (TPC-C)",
        "TUNA +9.2% mean with 87.8% lower std at equal budgets of 500",
    );
    let runs = args.runs_or(3, 6, 10);
    let sample_budget = args.rounds_or(150, 500, 500);

    let exp = Experiment::paper_default(tuna_workloads::tpcc());
    let workload = exp.workload.clone();

    // TUNA runs until it has consumed `sample_budget` samples.
    let mut tuna_runs = Vec::new();
    for run in 0..runs {
        let seed = hash_combine(args.seed, 900 + run as u64);
        let sut = exp.make_sut();
        let base = Cluster::new(exp.cluster_size, exp.sku.clone(), exp.region.clone(), seed);
        let mut rng = Rng::seed_from(hash_combine(seed, 2));
        let crash_penalty = default_worst_case(sut.as_ref(), &workload, &base, &rng);
        let optimizer = SmacOptimizer::multi_fidelity(
            sut.space().clone(),
            exp.objective(),
            exp.smac.clone(),
            LadderParams::paper_default(),
        );
        let mut pipeline = TunaPipeline::new(
            TunaConfig::paper_default(crash_penalty),
            sut.as_ref(),
            &workload,
            Box::new(optimizer),
            base.clone(),
        );
        pipeline.run_until_samples(sample_budget, &mut rng);
        let result = pipeline.finish();
        let deployment = evaluate_deployment(
            sut.as_ref(),
            &workload,
            &result.best_config,
            &base,
            77,
            exp.deploy_vms,
            exp.deploy_repeats,
            crash_penalty,
            &rng,
        );
        tuna_runs.push(tuna_core::experiment::RunSummary {
            method: "TUNA (500 samples)",
            best_config: result.best_config.clone(),
            tuning: Some(result),
            deployment,
        });
    }

    // Extended traditional gets the same sample budget.
    let trad_runs = exp.run_many(
        Method::TraditionalExtended {
            samples: sample_budget,
        },
        runs,
        hash_combine(args.seed, 901),
    );

    let tuna_summary = summarize_method(&tuna_runs);
    let trad_summary = summarize_method(&trad_runs);
    println!(
        "{}",
        method_comparison_table(
            "tx/s",
            &[
                ("TUNA (equal cost)", tuna_summary),
                ("Traditional (equal cost)", trad_summary),
            ]
        )
    );
    paper_vs(
        "TUNA mean vs extended traditional",
        "+9.2%",
        &format!(
            "{:+.1}%",
            (tuna_summary.mean_of_means / trad_summary.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "TUNA std / extended traditional std",
        "12.2% (87.8% lower)",
        &format!(
            "{:.1}%",
            tuna_summary.mean_std / trad_summary.mean_std.max(1e-9) * 100.0
        ),
    );
    let avg_samples: f64 = tuna_runs
        .iter()
        .map(|r| r.tuning.as_ref().unwrap().total_samples as f64)
        .sum::<f64>()
        / runs as f64;
    println!("  TUNA actually consumed {avg_samples:.0} samples/run (budget {sample_budget})");
}
