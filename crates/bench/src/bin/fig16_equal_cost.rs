//! Figure 16 — equal-cost comparison vs extended traditional sampling
//! (§6.5.1).
//!
//! Instead of equal wall-clock time, both methods get the same number of
//! samples (the paper uses 500). Extending traditional sampling
//! exacerbates instability: its peak rises but so does its variance; TUNA
//! ends 9.2% faster on average with 87.8% lower std.

use tuna_bench::{banner, campaign_method_table, paper_vs, run_campaign, HarnessArgs};
use tuna_core::campaign::{Arm, Campaign, Recipe, SampleBudgetSpec};
use tuna_core::experiment::Method;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 16",
        "Equal-cost: TUNA vs traditional extended to the same sample count (TPC-C)",
        "TUNA +9.2% mean with 87.8% lower std at equal budgets of 500",
    );
    let runs = args.runs_or(3, 6, 10);
    let sample_budget = args.rounds_or(150, 500, 500);

    // Both arms get the same sample budget; the TUNA arm pins the
    // historical seed labels (salt 900, rng label 2, deploy label 77) and
    // the traditional arm the historical per-arm seed salt.
    let mut campaign = Campaign::protocol(
        "fig16_equal_cost",
        args.seed,
        vec![tuna_workloads::tpcc()],
        &[],
    )
    .with_runs(runs);
    campaign.arms = vec![
        Arm::new(
            "TUNA (equal cost)",
            Recipe::SampleBudget(SampleBudgetSpec::new(sample_budget, 900, 2, 77)),
        ),
        Arm::new(
            "Traditional (equal cost)",
            Recipe::Protocol {
                method: Method::TraditionalExtended {
                    samples: sample_budget,
                },
                seed_salt: Some(901),
            },
        ),
    ];
    let result = run_campaign(&args, &campaign);
    let results = campaign_method_table(&campaign, &result, 0, "tx/s");

    let tuna_summary = results[0].1;
    let trad_summary = results[1].1;
    paper_vs(
        "TUNA mean vs extended traditional",
        "+9.2%",
        &format!(
            "{:+.1}%",
            (tuna_summary.mean_of_means / trad_summary.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "TUNA std / extended traditional std",
        "12.2% (87.8% lower)",
        &format!(
            "{:.1}%",
            tuna_summary.mean_std / trad_summary.mean_std.max(1e-9) * 100.0
        ),
    );
    // Sample accounting from the stored rows, so it survives `--store`
    // resumes bit-identically.
    let avg_samples: f64 = result
        .group_rows(0, 0)
        .iter()
        .map(|r| r.samples as f64)
        .sum::<f64>()
        / runs as f64;
    println!("  TUNA actually consumed {avg_samples:.0} samples/run (budget {sample_budget})");
}
