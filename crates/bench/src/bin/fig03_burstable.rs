//! Figure 3 — burstable vs non-burstable application benchmarks.
//!
//! Reproduces §3.2's first finding: on B-series (burstable) VMs, pgbench
//! and redis-benchmark show both a wider spread and a *bimodal*
//! distribution (credit depletion cuts performance by >50%), while
//! D-series VMs are tight and unimodal.

use tuna_bench::{banner, strip_plot, HarnessArgs};
use tuna_cloudsim::study::{run_study, Lifespan, StudyConfig};
use tuna_core::report::{fmt_value, render_table};
use tuna_stats::summary::{self, FiveNumber};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 3",
        "PostgreSQL / Redis benchmark variance: burstable vs non-burstable",
        "burstable VMs show higher variance and a bimodal distribution",
    );
    let mut cfg = if args.quick {
        StudyConfig::quick()
    } else if args.full {
        StudyConfig::full_scale()
    } else {
        StudyConfig::scaled_default()
    };
    cfg.seed = args.seed;
    let report = run_study(&cfg);

    let mut rows = vec![vec![
        "benchmark".to_string(),
        "SKU".to_string(),
        "region".to_string(),
        "CoV".to_string(),
        "min".to_string(),
        "q1".to_string(),
        "median".to_string(),
        "q3".to_string(),
        "max".to_string(),
        "low-mode %".to_string(),
    ]];
    println!("relative performance (1.0 = SKU/region mean), short-lived fleets:");
    println!();
    for bench in ["pgbench-rw", "redis-benchmark-write"] {
        for sku in ["Standard_D8s_v5", "Standard_B8ms"] {
            for region in ["westus2", "eastus"] {
                let series = report
                    .series(bench, region, sku, Lifespan::Short)
                    .expect("series present");
                let rel = series.relative_samples();
                let five = FiveNumber::of(&rel);
                let low_mode = rel.iter().filter(|&&x| x < 0.75).count() as f64 / rel.len() as f64;
                rows.push(vec![
                    bench.to_string(),
                    sku.to_string(),
                    region.to_string(),
                    format!("{:.1}%", series.overall.cov() * 100.0),
                    fmt_value(five.min),
                    fmt_value(five.q1),
                    fmt_value(five.median),
                    fmt_value(five.q3),
                    fmt_value(five.max),
                    format!("{:.1}%", low_mode * 100.0),
                ]);
                println!(
                    "{:>22} {:>16} {:>8} |{}| 0.0..1.4",
                    bench,
                    sku,
                    region,
                    strip_plot(&rel, 0.0, 1.4, 56)
                );
            }
        }
    }
    println!();
    println!("{}", render_table(&rows));

    // Headline check: burstable CoV must dominate non-burstable.
    let cov = |bench: &str, sku: &str| {
        report
            .pooled_short_cov(bench, sku)
            .expect("pooled cov present")
    };
    let b = cov("pgbench-rw", "Standard_B8ms");
    let nb = cov("pgbench-rw", "Standard_D8s_v5");
    println!(
        "pgbench CoV burstable/non-burstable ratio: {:.1}x (paper: 'significantly higher + bimodal')",
        b / nb
    );
    let depleted = report
        .series("pgbench-rw", "westus2", "Standard_B8ms", Lifespan::Short)
        .map(|s| {
            let rel = s.relative_samples();
            let low: Vec<f64> = rel.iter().copied().filter(|&x| x < 0.75).collect();
            (low.len() as f64 / rel.len() as f64, summary::mean(&low))
        })
        .expect("burstable series");
    println!(
        "burstable low mode: {:.1}% of samples at mean {:.2} relative (paper: '>50% degradation when depleted')",
        depleted.0 * 100.0,
        depleted.1
    );
}
