//! Figure 15 — NGINX serving the Wikipedia Top-500 workload (p95 ms).
//!
//! Paper: TUNA 42.6 ms (-38.9% vs default) vs traditional 46.6 ms
//! (-32.7%); TUNA std 0.82 ms vs traditional 1.46 ms (63.3% lower).

use tuna_bench::{banner, compare_methods, paper_vs, HarnessArgs};
use tuna_core::experiment::{Experiment, Method};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 15",
        "NGINX serving Wikipedia Top-500: tuned configs on new VMs (p95 ms)",
        "TUNA 42.6 ms vs traditional 46.6 ms vs default 69.7 ms; TUNA std 63.3% lower",
    );
    let runs = args.runs_or(3, 8, 10);
    let rounds = args.rounds_or(30, 96, 96);

    let mut exp = Experiment::paper_default(tuna_workloads::wikipedia());
    exp.rounds = rounds;
    let results = compare_methods(
        &exp,
        &[Method::Tuna, Method::Traditional, Method::DefaultConfig],
        runs,
        args.seed,
    );

    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let tuna = get("TUNA");
    let trad = get("Traditional");
    let def = get("Default");
    paper_vs(
        "TUNA improvement over default",
        "-38.9%",
        &format!(
            "{:+.1}%",
            (tuna.mean_of_means / def.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "traditional improvement over default",
        "-32.7%",
        &format!(
            "{:+.1}%",
            (trad.mean_of_means / def.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "TUNA std / traditional std",
        "36.7% (63.3% lower)",
        &format!("{:.1}%", tuna.mean_std / trad.mean_std.max(1e-9) * 100.0),
    );
}
