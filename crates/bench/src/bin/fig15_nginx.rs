//! Figure 15 — NGINX serving the Wikipedia Top-500 workload (p95 ms).
//!
//! Paper: TUNA 42.6 ms (-38.9% vs default) vs traditional 46.6 ms
//! (-32.7%); TUNA std 0.82 ms vs traditional 1.46 ms (63.3% lower).

use tuna_bench::{banner, campaign_method_table, paper_vs, run_campaign, HarnessArgs};
use tuna_core::campaign::Campaign;
use tuna_core::executor::ExecutionMode;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 15",
        "NGINX serving Wikipedia Top-500: tuned configs on new VMs (p95 ms)",
        "TUNA 42.6 ms vs traditional 46.6 ms vs default 69.7 ms; TUNA std 63.3% lower",
    );
    let runs = args.runs_or(3, 8, 10);
    let rounds = args.rounds_or(30, 96, 96);

    let campaign = Campaign::protocol(
        "fig15_nginx",
        args.seed,
        vec![tuna_workloads::wikipedia()],
        &tuna_bench::PROTOCOL_METHODS,
    )
    .with_runs(runs)
    .with_rounds(rounds);
    let exp = campaign.experiment(0, ExecutionMode::Serial);
    let result = run_campaign(&args, &campaign);
    let results = campaign_method_table(&campaign, &result, 0, exp.workload.metric.unit());

    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let tuna = get("TUNA");
    let trad = get("Traditional");
    let def = get("Default");
    paper_vs(
        "TUNA improvement over default",
        "-38.9%",
        &format!(
            "{:+.1}%",
            (tuna.mean_of_means / def.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "traditional improvement over default",
        "-32.7%",
        &format!(
            "{:+.1}%",
            (trad.mean_of_means / def.mean_of_means - 1.0) * 100.0
        ),
    );
    paper_vs(
        "TUNA std / traditional std",
        "36.7% (63.3% lower)",
        &format!("{:.1}%", tuna.mean_std / trad.mean_std.max(1e-9) * 100.0),
    );
}
