//! Figure 9 — unstable-config detection chance vs cluster size (§5.1).
//!
//! The paper sizes its cluster from the §3.2.1 data: for each *known
//! unstable configuration* (configs promoted during tuning whose
//! performance profile across nodes shows a wide relative range), compute
//! the chance that sampling `n` nodes reveals the instability, then the
//! chance that every unstable config of a whole tuning run is caught.
//! Ten nodes give ~95% confidence.

use tuna_bench::{banner, paper_vs, HarnessArgs};
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_core::report::render_table;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::{Objective, Optimizer};
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary;
use tuna_sut::postgres::Postgres;
use tuna_sut::SystemUnderTest;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 9",
        "Chance of detecting unstable configs vs number of nodes sampled",
        "cluster of 10 nodes detects all unstable configs with ~95% confidence",
    );
    let tuning_runs = args.runs_or(2, 5, 10);
    let rounds = args.rounds_or(40, 80, 120);
    let max_nodes = 15usize;
    let pool_nodes = 30usize;

    let pg = Postgres::new();
    let workload = tuna_workloads::tpcc();
    let mut rng = Rng::seed_from(hash_combine(args.seed, 11));

    // §3.2.1 methodology: the paper's detection analysis uses the *known
    // unstable* configs — the well-performing configs tuning promotes
    // (their single-node measurements looked great exactly because they
    // flipped high on that node). Collect each traditional run's top
    // configs and profile them across a 30-node pool.
    let mut seen_configs = Vec::new();
    for run in 0..tuning_runs {
        let seed = hash_combine(args.seed, 300 + run as u64);
        let mut cluster = Cluster::new(1, VmSku::d8s_v5(), Region::westus2(), seed);
        let mut opt = SmacOptimizer::new(
            pg.space().clone(),
            Objective::Maximize,
            SmacParams {
                n_init: 10,
                n_random_candidates: 60,
                ..SmacParams::default()
            },
        );
        let mut measured: Vec<(f64, tuna_space::Config)> = Vec::new();
        for _ in 0..rounds {
            let s = opt.ask(&mut rng);
            let out = pg.run(&s.config, &workload, cluster.machine_mut(0), &mut rng);
            opt.tell(&s.config, out.value, s.budget);
            measured.push((out.value, s.config));
        }
        // Top-8 per run: the configs that would reach multi-node budgets.
        measured.sort_by(|a, b| b.0.total_cmp(&a.0));
        seen_configs.extend(measured.into_iter().take(8).map(|(_, c)| c));
    }

    let mut pool = Cluster::new(pool_nodes, VmSku::d8s_v5(), Region::westus2(), args.seed);
    let mut unstable_profiles: Vec<Vec<f64>> = Vec::new();
    for config in &seen_configs {
        let vals: Vec<f64> = (0..pool_nodes)
            .map(|i| {
                pg.run(config, &workload, pool.machine_mut(i), &mut rng)
                    .value
            })
            .collect();
        if summary::relative_range(&vals) > 0.30 {
            unstable_profiles.push(vals);
        }
    }
    let unstable_frac = unstable_profiles.len() as f64 / seen_configs.len() as f64;
    println!(
        "census: {}/{} top tuning configs are unstable ({:.1}%; paper: 39.0% of seen, 13/30 of best)",
        unstable_profiles.len(),
        seen_configs.len(),
        unstable_frac * 100.0
    );
    if unstable_profiles.is_empty() {
        println!("no unstable configs found at this scale; rerun with --full");
        return;
    }

    // Detection chance: Monte-Carlo over node subsets of each profile.
    let trials = 300;
    // Unstable configs that reach multi-node budgets per tuning run ==
    // the unstable share of each run's promoted stream.
    let per_run_unstable = (unstable_profiles.len() as f64 / tuning_runs as f64)
        .max(1.0)
        .round();
    let mut rows = vec![vec![
        "nodes".to_string(),
        "per-config detection".to_string(),
        "all detected in a run".to_string(),
    ]];
    let mut chance_at = vec![0.0; max_nodes + 1];
    for (n, slot) in chance_at.iter_mut().enumerate().skip(1) {
        let mut detected = 0usize;
        let mut total = 0usize;
        for profile in &unstable_profiles {
            for _ in 0..trials {
                let picks = rng.sample_indices(profile.len(), n);
                let sub: Vec<f64> = picks.iter().map(|&i| profile[i]).collect();
                if summary::relative_range(&sub) > 0.30 {
                    detected += 1;
                }
                total += 1;
            }
        }
        let p = detected as f64 / total as f64;
        *slot = p;
        rows.push(vec![
            format!("{n}"),
            format!("{:.1}%", p * 100.0),
            format!("{:.1}%", p.powf(per_run_unstable) * 100.0),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("(assuming ~{per_run_unstable:.0} unstable configs reach multi-node budgets per run)");
    paper_vs(
        "all-detected confidence at 10 nodes",
        "~95%",
        &format!("{:.1}%", chance_at[10].powf(per_run_unstable) * 100.0),
    );
    let monotone = (2..=max_nodes).all(|n| chance_at[n] + 1e-9 >= chance_at[n - 1]);
    println!("detection chance monotone in nodes: {monotone}");
}
