//! Table 1 — the longitudinal cloud measurement study, compared with prior
//! studies.
//!
//! Prints the paper's comparison table (prior rows are the published
//! numbers) and regenerates the "This Work" row from the simulated study:
//! duration, sample count, instance count, and which components were
//! covered. Also reprints the §3.2 per-component CoV summary.

use tuna_bench::{banner, paper_vs, HarnessArgs};
use tuna_cloudsim::study::{run_study, StudyConfig};
use tuna_core::report::render_table;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Table 1",
        "Cloud measurement studies compared; 'This Work' regenerated from the simulator",
        "68 weeks, 7037k samples, 43641 instances, disk/memory/CPU/OS covered",
    );
    let mut cfg = if args.quick {
        StudyConfig::quick()
    } else if args.full {
        StudyConfig::full_scale()
    } else {
        StudyConfig::scaled_default()
    };
    cfg.seed = args.seed;
    let report = run_study(&cfg);

    let mut rows: Vec<Vec<String>> = vec![[
        "paper",
        "year",
        "duration",
        "samples",
        "instances",
        "platform",
        "disk",
        "memory",
        "cpu",
        "network",
        "os",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()];
    let prior = [
        (
            "Schad et al.",
            "2010",
            "4 weeks",
            "6 k",
            "4",
            "AWS",
            "y",
            "y",
            "y",
            "y",
            "n",
        ),
        (
            "Iosup et al.",
            "2011",
            "52 weeks",
            "250 k",
            "n/a",
            "AWS,GCP",
            "n",
            "n",
            "y",
            "n",
            "n",
        ),
        (
            "Farley et al.",
            "2012",
            "2 weeks",
            "59 k",
            "40",
            "AWS",
            "y",
            "y",
            "y",
            "y",
            "n",
        ),
        (
            "Leitner and Cito",
            "2016",
            "4 weeks",
            "54 k",
            "82",
            "multi",
            "n",
            "y",
            "y",
            "n",
            "n",
        ),
        (
            "Maricq et al.",
            "2018",
            "46 weeks",
            "900 k",
            "835",
            "CloudLab",
            "y",
            "y",
            "n",
            "y",
            "n",
        ),
        (
            "Figiela et al.",
            "2018",
            "22 weeks",
            "730 k",
            "13723",
            "multi",
            "n",
            "n",
            "y",
            "n",
            "n",
        ),
        (
            "Scheuner and Leitner",
            "2018",
            "4 weeks",
            "63 k",
            "244",
            "AWS",
            "y",
            "y",
            "y",
            "y",
            "n",
        ),
        (
            "Uta et al.",
            "2020",
            "3 weeks",
            "1000 k",
            "1",
            "multi",
            "n",
            "n",
            "n",
            "y",
            "n",
        ),
        (
            "De Sensi et al.",
            "2022",
            "n/a",
            "516 k",
            "2",
            "multi",
            "n",
            "n",
            "n",
            "y",
            "y",
        ),
        (
            "TUNA (paper)",
            "2024",
            "68 weeks",
            "7037 k",
            "43641",
            "Azure",
            "y",
            "y",
            "y",
            "n",
            "y",
        ),
    ];
    for row in prior {
        rows.push(vec![
            row.0.into(),
            row.1.into(),
            row.2.into(),
            row.3.into(),
            row.4.into(),
            row.5.into(),
            row.6.into(),
            row.7.into(),
            row.8.into(),
            row.9.into(),
            row.10.into(),
        ]);
    }
    rows.push(vec![
        "This reproduction".into(),
        "sim".into(),
        format!("{} weeks", report.weeks),
        format!("{:.0} k", report.total_samples as f64 / 1000.0),
        format!("{}", report.total_instances),
        "simulated Azure".into(),
        "y".into(),
        "y".into(),
        "y".into(),
        "n".into(),
        "y".into(),
    ]);
    println!("{}", render_table(&rows));

    paper_vs(
        "study duration",
        "68 weeks",
        &format!("{} weeks", report.weeks),
    );
    paper_vs(
        "total samples",
        "7037 k",
        &format!(
            "{:.0} k (scaled 1/{:.0})",
            report.total_samples as f64 / 1000.0,
            7_037_000.0 / report.total_samples as f64
        ),
    );
    paper_vs(
        "total instances",
        "43641",
        &format!(
            "{} (scaled 1/{:.0}; use --full for paper scale)",
            report.total_instances,
            43_641.0 / report.total_instances as f64
        ),
    );

    println!();
    println!("§3.2 component CoVs on the short-lived D8s_v5 fleet:");
    for (label, bench, paper_cov) in [
        ("CPU", "sysbench-cpu-prime", "0.17%"),
        ("Disk", "fio-randwrite-aio", "0.36%"),
        ("Memory", "mlc-maxbw-1to1", "4.92%"),
        ("OS", "osbench-create-threads", "9.82%"),
        ("Cache", "stress-ng-cache", "14.39%"),
    ] {
        let measured = report
            .pooled_short_cov(bench, "Standard_D8s_v5")
            .unwrap_or(f64::NAN);
        paper_vs(label, paper_cov, &format!("{:.2}%", measured * 100.0));
    }
}
