//! `perfgate` — the CI perf-regression gate.
//!
//! Runs the curated deterministic benchmark suite (see
//! [`tuna_bench::perf`]), emits a machine-readable `BENCH.json`, and
//! compares it against the committed `bench/baseline.json`.
//!
//! ```text
//! perfgate run              [--out BENCH.json] [--quick] [--handicap F]
//! perfgate check            [--baseline bench/baseline.json] [--current PATH]
//!                           [--out BENCH.json] [--tolerance 0.20] [--handicap F] [--quick]
//! perfgate update-baseline  [--baseline bench/baseline.json] [--quick]
//! ```
//!
//! `check` exits non-zero when the gate fails (>tolerance slowdown on
//! calibration-normalized throughput, any checksum drift, or a missing
//! scenario) and prints a markdown delta table on stdout — CI appends it
//! to the job summary. `--handicap F` multiplies measured wall time by
//! `F` on every non-calibration scenario, demonstrating the gate's
//! failure mode without editing code. The tolerance can also come from
//! the `TUNA_PERFGATE_TOLERANCE` environment variable; the flag wins.

use std::process::ExitCode;

use tuna_bench::perf::{self, BenchDoc, DEFAULT_TOLERANCE};

struct Args {
    command: String,
    out: String,
    baseline: String,
    current: Option<String>,
    tolerance: f64,
    handicap: f64,
    quick: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: perfgate <run|check|update-baseline> \
         [--out PATH] [--baseline PATH] [--current PATH] \
         [--tolerance T] [--handicap F] [--quick]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        usage();
    };
    if !matches!(command.as_str(), "run" | "check" | "update-baseline") {
        usage();
    }
    let env_tolerance = std::env::var("TUNA_PERFGATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    let mut args = Args {
        command,
        out: "BENCH.json".to_string(),
        baseline: "bench/baseline.json".to_string(),
        current: None,
        tolerance: env_tolerance,
        handicap: 1.0,
        quick: false,
    };
    let mut i = 1;
    let value = |argv: &[String], i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => args.out = value(&argv, &mut i),
            "--baseline" => args.baseline = value(&argv, &mut i),
            "--current" => args.current = Some(value(&argv, &mut i)),
            "--tolerance" => {
                args.tolerance = value(&argv, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--handicap" => {
                args.handicap = value(&argv, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--quick" => args.quick = true,
            _ => usage(),
        }
        i += 1;
    }
    if !(args.tolerance > 0.0 && args.tolerance < 1.0) {
        eprintln!(
            "perfgate: tolerance must be in (0, 1), got {}",
            args.tolerance
        );
        std::process::exit(2);
    }
    if args.handicap < 1.0 {
        eprintln!("perfgate: handicap must be >= 1, got {}", args.handicap);
        std::process::exit(2);
    }
    args
}

fn load(path: &str) -> BenchDoc {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    BenchDoc::parse(&text).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn write(path: &str, doc: &BenchDoc) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    std::fs::write(path, doc.to_json()).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot write {path}: {e}");
        std::process::exit(2);
    });
}

fn run_fresh(args: &Args) -> BenchDoc {
    eprintln!(
        "perfgate: running {} suite{}...",
        if args.quick { "quick" } else { "full" },
        if args.handicap > 1.0 {
            format!(" with {}x handicap", args.handicap)
        } else {
            String::new()
        }
    );
    let doc = perf::run_suite(args.quick, args.handicap);
    for s in &doc.scenarios {
        eprintln!(
            "perfgate:   {:<34} {:>12.0} items/s  [{}]",
            s.scenario, s.throughput, s.checksum
        );
    }
    doc
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "run" => {
            let doc = run_fresh(&args);
            write(&args.out, &doc);
            eprintln!("perfgate: wrote {}", args.out);
            ExitCode::SUCCESS
        }
        "update-baseline" => {
            let doc = run_fresh(&args);
            write(&args.baseline, &doc);
            eprintln!("perfgate: wrote {}", args.baseline);
            ExitCode::SUCCESS
        }
        "check" => {
            let baseline = load(&args.baseline);
            let current = match &args.current {
                Some(path) => load(path),
                None => {
                    let doc = run_fresh(&args);
                    write(&args.out, &doc);
                    eprintln!("perfgate: wrote {}", args.out);
                    doc
                }
            };
            let outcome = perf::compare(&baseline, &current, args.tolerance).unwrap_or_else(|e| {
                eprintln!("perfgate: comparison impossible: {e}");
                std::process::exit(2);
            });
            println!("{}", perf::markdown_table(&outcome));
            if outcome.pass {
                eprintln!("perfgate: PASS");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "perfgate: FAIL — see the delta table; checksum drift means the \
                     algorithm changed (regenerate bench/baseline.json deliberately \
                     via `perfgate update-baseline`), SLOW means a real slowdown"
                );
                ExitCode::FAILURE
            }
        }
        _ => unreachable!(),
    }
}
