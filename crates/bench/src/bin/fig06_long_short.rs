//! Figure 6 — long-running vs short-running VM memory bandwidth by month.
//!
//! Reproduces §4.1's motivation for multi-fidelity sampling: a single
//! long-lived VM drifts slowly and never exhibits the cross-placement
//! spread that a fleet of short-lived VMs samples every month, so
//! confidence about deployment behaviour requires sampling across nodes.

use tuna_bench::{banner, HarnessArgs};
use tuna_cloudsim::study::{run_study, Lifespan, StudyConfig};
use tuna_core::report::render_table;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 6",
        "MLC memory bandwidth: one long-running VM vs the short-lived fleet (westus2)",
        "long-running VM misses the across-placement variance the fleet sees",
    );
    let mut cfg = if args.quick {
        StudyConfig::quick()
    } else if args.full {
        StudyConfig::full_scale()
    } else {
        StudyConfig::scaled_default()
    };
    cfg.seed = args.seed;
    let report = run_study(&cfg);

    let long = report
        .series(
            "mlc-maxbw-1to1",
            "westus2",
            "Standard_D8s_v5",
            Lifespan::Long,
        )
        .expect("long series");
    let short = report
        .series(
            "mlc-maxbw-1to1",
            "westus2",
            "Standard_D8s_v5",
            Lifespan::Short,
        )
        .expect("short series");

    let mut rows = vec![vec![
        "month".to_string(),
        "long mean (GB/s)".to_string(),
        "long std".to_string(),
        "short mean (GB/s)".to_string(),
        "short std".to_string(),
    ]];
    for (m, (l, s)) in long.monthly.iter().zip(&short.monthly).enumerate() {
        if l.count() == 0 && s.count() == 0 {
            continue;
        }
        rows.push(vec![
            format!("{}", m + 1),
            format!("{:.2}", l.mean()),
            format!("{:.2}", l.std_dev()),
            format!("{:.2}", s.mean()),
            format!("{:.2}", s.std_dev()),
        ]);
    }
    println!("{}", render_table(&rows));

    println!(
        "whole-study CoV: long {:.2}%  short {:.2}%  (short/long ratio {:.1}x)",
        long.overall.cov() * 100.0,
        short.overall.cov() * 100.0,
        short.overall.cov() / long.overall.cov().max(1e-9)
    );
    println!(
        "whole-study range: long [{:.1}, {:.1}] GB/s  short [{:.1}, {:.1}] GB/s (paper band: ~60-75 GB/s)",
        long.overall.min().unwrap_or(0.0),
        long.overall.max().unwrap_or(0.0),
        short.overall.min().unwrap_or(0.0),
        short.overall.max().unwrap_or(0.0),
    );
}
