//! Figure 12 — generalization across regions: TPC-C tuned in `centralus`.
//!
//! The paper repeats the Figure 11a evaluation in a region with higher
//! variability (fewer high-performing machines) and finds TUNA at
//! 2321 tx/s σ113.0 vs traditional 2239 tx/s σ267.7 (57.8% lower std).

use tuna_bench::{banner, compare_methods, fail, paper_vs, HarnessArgs};
use tuna_cloudsim::Region;
use tuna_core::experiment::{Experiment, Method};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 12",
        "TPC-C on PostgreSQL tuned and deployed in centralus",
        "TUNA 2321 tx/s σ113 vs traditional 2239 tx/s σ267.7 (57.8% lower std)",
    );
    let runs = args.runs_or(3, 8, 10);
    let rounds = args.rounds_or(30, 96, 96);

    let mut exp = Experiment::paper_default(tuna_workloads::tpcc());
    exp.rounds = rounds;
    exp.region = Region::centralus();
    let results = compare_methods(
        &exp,
        &[Method::Tuna, Method::Traditional, Method::DefaultConfig],
        runs,
        args.seed,
    )
    .unwrap_or_else(|e| fail(&e));

    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let tuna = get("TUNA");
    let trad = get("Traditional");
    paper_vs(
        "TUNA std / traditional std",
        "42.2% (57.8% lower)",
        &format!("{:.1}%", tuna.mean_std / trad.mean_std * 100.0),
    );
    paper_vs(
        "TUNA mean >= traditional mean",
        "yes (2321 vs 2239)",
        &format!("{}", tuna.mean_of_means >= trad.mean_of_means * 0.95),
    );
    // Region character: compare default-config deployment spread across
    // regions — centralus should be the wider one.
    let mut west = Experiment::paper_default(tuna_workloads::tpcc());
    west.rounds = rounds;
    let west_default = west.run_many(Method::DefaultConfig, runs, args.seed);
    let central_default = exp.run_many(Method::DefaultConfig, runs, args.seed);
    let spread = |rs: &[tuna_core::experiment::RunSummary]| {
        let all: Vec<f64> = rs
            .iter()
            .flat_map(|r| r.deployment.values.clone())
            .collect();
        tuna_stats::summary::coefficient_of_variation(&all)
    };
    println!(
        "  default-config deployment CoV: westus2 {:.1}% vs centralus {:.1}% (paper: centralus has fewer high-performing machines)",
        spread(&west_default) * 100.0,
        spread(&central_default) * 100.0
    );
}
