//! Figure 11 — PostgreSQL across four workloads: tuned configs deployed on
//! fresh VMs (TUNA vs traditional sampling vs default).
//!
//! Paper reference points (deployment mean / avg std):
//! - (a) TPC-C: TUNA 1925 tx/s σ69.0 vs traditional 1989 tx/s σ205.7
//!   (traditional: higher peak, 3x the variance, two runs below default);
//! - (b) epinions: TUNA 34957 (+13.2% over default) vs trad 32189 (+4.2%),
//!   3 traditional configs unstable (σ>2000);
//! - (c) TPC-H: TUNA 70.3 s (-38.6%) vs trad 94.5 s (-17.3%);
//! - (d) mssales: TUNA 33.2 s σ0.49 vs trad 62.5 s σ1.26 (default 79.4 s).

use tuna_bench::{banner, campaign_method_table, fail, paper_vs, run_campaign, HarnessArgs};
use tuna_core::campaign::Campaign;
use tuna_core::executor::ExecutionMode;
use tuna_workloads::arrival::ArrivalPattern;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 11",
        "PostgreSQL tuned configs deployed on new VMs (4 workloads)",
        "TUNA improves performance, reduces variability, or both, on every workload",
    );
    let runs = args.runs_or(3, 8, 10);
    let rounds = args.rounds_or(30, 96, 96);

    // Scenario diversity: `--pattern diurnal|bursty` re-points the whole
    // campaign at the arrival pattern's *peak* offered load (the hour a
    // capacity planner sizes for). Without the flag the output is the
    // historical steady-load figure, byte for byte.
    let pattern = args.pattern.as_deref().map(|name| {
        ArrivalPattern::parse(name).unwrap_or_else(|| {
            fail(&format!(
                "unknown arrival pattern '{name}' (expected steady | diurnal | bursty)"
            ))
        })
    });
    if let Some(p) = &pattern {
        let profile = p.profile(288);
        let peak = p.peak_factor().max(1e-9);
        let spark: String = profile
            .iter()
            .step_by(6)
            .map(|&x| {
                let level = ((x / peak) * 4.0).round() as usize;
                [' ', '.', '-', '+', '#'][level.min(4)]
            })
            .collect();
        println!(
            "arrival pattern: {} (peak load {:.2}x nominal; tuning at peak)",
            p.name(),
            p.peak_factor()
        );
        println!("  24h profile (5-min epochs, peak-normalized): [{spark}]");
    }
    let modulated = |w: tuna_workloads::Workload| match &pattern {
        None => w,
        Some(p) => p.modulate_peak(&w),
    };
    let campaign_name = match &pattern {
        None => "fig11_postgres_workloads".to_string(),
        Some(p) => format!("fig11_postgres_workloads+{}", p.name()),
    };

    // (workload, [(method, paper mean, paper std); 3]).
    type PaperRow = (&'static str, [(&'static str, f64, f64); 3]);
    let paper: &[PaperRow] = &[
        (
            "tpcc",
            [
                ("TUNA", 1925.0, 69.0),
                ("Traditional", 1989.0, 205.7),
                ("Default", 848.0, f64::NAN),
            ],
        ),
        (
            "epinions",
            [
                ("TUNA", 34957.0, f64::NAN),
                ("Traditional", 32189.0, f64::NAN),
                ("Default", 30855.0, f64::NAN),
            ],
        ),
        (
            "tpch",
            [
                ("TUNA", 70.3, 1.3),
                ("Traditional", 94.5, 1.2),
                ("Default", 114.5, f64::NAN),
            ],
        ),
        (
            "mssales",
            [
                ("TUNA", 33.2, 0.49),
                ("Traditional", 62.5, 1.26),
                ("Default", 79.4, f64::NAN),
            ],
        ),
    ];

    // The whole figure is one campaign: the workload axis times the
    // method axis times `runs` seeds.
    let campaign = Campaign::protocol(
        campaign_name,
        args.seed,
        vec![
            modulated(tuna_workloads::tpcc()),
            modulated(tuna_workloads::epinions()),
            modulated(tuna_workloads::tpch()),
            modulated(tuna_workloads::mssales()),
        ],
        &tuna_bench::PROTOCOL_METHODS,
    )
    .with_runs(runs)
    .with_rounds(rounds);
    let result = run_campaign(&args, &campaign);

    for (w, (workload, refs)) in paper.iter().enumerate() {
        let exp = campaign.experiment(w, ExecutionMode::Serial);
        println!();
        println!(
            "--- Figure 11{}: {} ({}) ---",
            match *workload {
                "tpcc" => 'a',
                "epinions" => 'b',
                "tpch" => 'c',
                _ => 'd',
            },
            workload,
            if exp.workload.metric.higher_is_better() {
                "higher is better"
            } else {
                "lower is better"
            }
        );
        let results = campaign_method_table(&campaign, &result, w, exp.workload.metric.unit());
        for ((name, summary), (_, p_mean, p_std)) in results.iter().zip(refs.iter()) {
            let std_part = if p_std.is_nan() {
                format!("σ {:.1}", summary.mean_std)
            } else {
                format!("σ {:.2} (paper σ {:.2})", summary.mean_std, p_std)
            };
            paper_vs(
                &format!("{name} deployment mean"),
                &format!("{p_mean}"),
                &format!("{:.1}  {std_part}", summary.mean_of_means),
            );
        }
        // Who-wins shape checks.
        let get = |n: &str| {
            results
                .iter()
                .find(|(m, _)| *m == n)
                .map(|(_, s)| *s)
                .unwrap()
        };
        let tuna = get("TUNA");
        let trad = get("Traditional");
        let def = get("Default");
        let better = |a: f64, b: f64| {
            if exp.workload.metric.higher_is_better() {
                a > b
            } else {
                a < b
            }
        };
        println!(
            "  shape: TUNA beats default: {}   TUNA std <= traditional std: {}   traditional beats default: {}",
            better(tuna.mean_of_means, def.mean_of_means),
            tuna.mean_std <= trad.mean_std,
            better(trad.mean_of_means, def.mean_of_means),
        );
    }
    println!();
    println!("(paper headline: mssales with TUNA = 1.88x lower running time, 2.58x lower std)");
}
