//! Ablation — sample-aggregation policy (§4.4).
//!
//! The paper argues for **min** (worst case) over mean/median because the
//! latter hide outliers; with the detector bounding stable configs to a
//! 30% range, min is a tight robust lower bound. This ablation swaps the
//! aggregation policy inside an otherwise unchanged TUNA and deploys each
//! winner.

use tuna_bench::{banner, HarnessArgs};
use tuna_cloudsim::Cluster;
use tuna_core::aggregate::AggregationPolicy;
use tuna_core::deploy::{default_worst_case, evaluate_deployment};
use tuna_core::experiment::Experiment;
use tuna_core::pipeline::{TunaConfig, TunaPipeline};
use tuna_core::report::{method_comparison_table, summarize_method};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::SmacOptimizer;
use tuna_stats::rng::{hash_combine, Rng};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablation: aggregation",
        "TUNA with min / mean / median / max sample aggregation (TPC-C)",
        "§4.4: min correctly penalizes unstable configs and optimizes the worst case",
    );
    let runs = args.runs_or(3, 6, 10);
    let rounds = args.rounds_or(25, 60, 96);
    let exp = Experiment::paper_default(tuna_workloads::tpcc());
    let workload = exp.workload.clone();

    let policies = [
        ("min (paper)", AggregationPolicy::WorstCase),
        ("mean", AggregationPolicy::Mean),
        ("median", AggregationPolicy::Median),
        ("max (best case)", AggregationPolicy::BestCase),
    ];
    let mut entries = Vec::new();
    for (name, policy) in policies {
        let mut summaries = Vec::new();
        for run in 0..runs {
            let seed = hash_combine(args.seed, 4_000 + run as u64);
            let sut = exp.make_sut();
            let base = Cluster::new(exp.cluster_size, exp.sku.clone(), exp.region.clone(), seed);
            let mut rng = Rng::seed_from(hash_combine(seed, 9));
            let crash_penalty = default_worst_case(sut.as_ref(), &workload, &base, &rng);
            let mut cfg = TunaConfig::paper_default(crash_penalty);
            cfg.aggregation = policy;
            let optimizer = SmacOptimizer::multi_fidelity(
                sut.space().clone(),
                exp.objective(),
                exp.smac.clone(),
                LadderParams::paper_default(),
            );
            let mut pipeline = TunaPipeline::new(
                cfg,
                sut.as_ref(),
                &workload,
                Box::new(optimizer),
                base.clone(),
            );
            pipeline.run_until_samples(rounds * exp.cluster_size, &mut rng);
            let result = pipeline.finish();
            let deployment = evaluate_deployment(
                sut.as_ref(),
                &workload,
                &result.best_config,
                &base,
                31,
                exp.deploy_vms,
                exp.deploy_repeats,
                crash_penalty,
                &rng,
            );
            summaries.push(tuna_core::experiment::RunSummary {
                method: "ablation",
                best_config: result.best_config.clone(),
                tuning: Some(result),
                deployment,
            });
        }
        entries.push((name, summarize_method(&summaries)));
    }
    let rows: Vec<(&str, tuna_core::report::MethodSummary)> = entries.clone();
    println!("{}", method_comparison_table("tx/s", &rows));

    let min_s = entries[0].1;
    let max_s = entries[3].1;
    println!(
        "best-case aggregation vs min: mean {:+.1}%, std {:.2}x — optimizing the lucky face invites instability",
        (max_s.mean_of_means / min_s.mean_of_means - 1.0) * 100.0,
        max_s.mean_std / min_s.mean_std.max(1e-9)
    );
}
