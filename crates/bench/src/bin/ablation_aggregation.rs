//! Ablation — sample-aggregation policy (§4.4).
//!
//! The paper argues for **min** (worst case) over mean/median because the
//! latter hide outliers; with the detector bounding stable configs to a
//! 30% range, min is a tight robust lower bound. This ablation swaps the
//! aggregation policy inside an otherwise unchanged TUNA and deploys each
//! winner.

use tuna_bench::{banner, campaign_method_table, run_campaign, HarnessArgs};
use tuna_core::aggregate::AggregationPolicy;
use tuna_core::campaign::{Arm, Campaign, Recipe, SampleBudgetSpec};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablation: aggregation",
        "TUNA with min / mean / median / max sample aggregation (TPC-C)",
        "§4.4: min correctly penalizes unstable configs and optimizes the worst case",
    );
    let runs = args.runs_or(3, 6, 10);
    let rounds = args.rounds_or(25, 60, 96);

    // One arm per aggregation policy, every arm on the same seeds
    // (historical salt 4000, rng label 9, deploy label 31).
    let mut campaign = Campaign::protocol(
        "ablation_aggregation",
        args.seed,
        vec![tuna_workloads::tpcc()],
        &[],
    )
    .with_runs(runs);
    let cluster_size = campaign
        .experiment(0, tuna_core::executor::ExecutionMode::Serial)
        .cluster_size;
    let policies = [
        ("min (paper)", AggregationPolicy::WorstCase),
        ("mean", AggregationPolicy::Mean),
        ("median", AggregationPolicy::Median),
        ("max (best case)", AggregationPolicy::BestCase),
    ];
    campaign.arms = policies
        .iter()
        .map(|(name, policy)| {
            Arm::new(
                *name,
                Recipe::SampleBudget(SampleBudgetSpec {
                    aggregation: Some(*policy),
                    ..SampleBudgetSpec::new(rounds * cluster_size, 4_000, 9, 31)
                }),
            )
        })
        .collect();
    let result = run_campaign(&args, &campaign);
    let entries = campaign_method_table(&campaign, &result, 0, "tx/s");

    let min_s = entries[0].1;
    let max_s = entries[3].1;
    println!(
        "best-case aggregation vs min: mean {:+.1}%, std {:.2}x — optimizing the lucky face invites instability",
        (max_s.mean_of_means / min_s.mean_of_means - 1.0) * 100.0,
        max_s.mean_std / min_s.mean_std.max(1e-9)
    );
}
