//! Figure 13 — generalization across hardware: TPC-C on CloudLab c220g5
//! bare metal.
//!
//! Paper: TUNA 5756 tx/s (19.1x over default) vs traditional 5380 tx/s
//! (17.8x); 8/10 traditional configs unstable with 7.71x higher std; all
//! TUNA configs stable and on average 7% faster.

use tuna_bench::{banner, compare_methods, fail, paper_vs, HarnessArgs};
use tuna_cloudsim::{Region, VmSku};
use tuna_core::experiment::{Experiment, Method};

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 13",
        "TPC-C on PostgreSQL, CloudLab c220g5 bare metal",
        "TUNA 5756 tx/s (19.1x default) vs traditional 5380 tx/s (17.8x); trad 7.71x std",
    );
    let runs = args.runs_or(3, 8, 10);
    let rounds = args.rounds_or(30, 96, 96);

    let mut exp = Experiment::paper_default(tuna_workloads::tpcc());
    exp.rounds = rounds;
    exp.sku = VmSku::c220g5();
    exp.region = Region::cloudlab();
    let results = compare_methods(
        &exp,
        &[Method::Tuna, Method::Traditional, Method::DefaultConfig],
        runs,
        args.seed,
    )
    .unwrap_or_else(|e| fail(&e));

    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let tuna = get("TUNA");
    let trad = get("Traditional");
    let def = get("Default");
    paper_vs(
        "TUNA improvement over default",
        "19.1x",
        &format!("{:.1}x", tuna.mean_of_means / def.mean_of_means),
    );
    paper_vs(
        "traditional improvement over default",
        "17.8x",
        &format!("{:.1}x", trad.mean_of_means / def.mean_of_means),
    );
    paper_vs(
        "traditional std / TUNA std",
        "7.71x",
        &format!("{:.2}x", trad.mean_std / tuna.mean_std.max(1e-9)),
    );
    println!(
        "  note: the default config wastes the 192 GB box — random reads hammer the slow local disk;\n\
         tuning moves the working set into memory, which is why the headroom is an order of magnitude."
    );
}
