//! Shared harness utilities for the figure/table regenerator binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation: it runs the corresponding experiment on the
//! simulated substrate and prints the same rows/series the paper plots,
//! annotated with the paper's reported values for comparison. Absolute
//! numbers are not expected to match (the substrate is a simulator, not
//! the authors' Azure/CloudLab testbed); the *shape* — who wins, by what
//! rough factor, where crossovers fall — is the reproduction target.
//!
//! Grid-shaped figures declare a [`tuna_core::campaign::Campaign`] and run
//! it through [`run_campaign`]; the campaign engine owns the (workload ×
//! method × seed) loop, cell-level parallelism (`TUNA_WORKERS`) and the
//! optional persistent, resumable result store (`--store`).
//!
//! Common flags for all binaries:
//!
//! - `--runs N`: tuning runs per method (default varies per figure),
//! - `--rounds N`: optimizer rounds per tuning run,
//! - `--seed N`: root seed,
//! - `--quick`: cut all budgets for a fast smoke run,
//! - `--full`: paper-scale budgets (slow),
//! - `--store PATH`: stream campaign cells into `PATH` (CSV + JSON
//!   mirror) and resume completed cells on re-runs (campaign-backed
//!   binaries only).

use tuna_core::campaign::{Campaign, CampaignResult, CampaignRunner, ResultStore};
use tuna_core::experiment::Method;
use tuna_core::report::{method_comparison_table, summarize_method, MethodSummary};
use tuna_stats::summary;

pub mod perf;

/// The standard §6 method-comparison arms (TUNA vs traditional sampling
/// vs the vendor default) shared by Figures 11, 14, 15 and 18.
pub const PROTOCOL_METHODS: [(&str, Method); 3] = [
    ("TUNA", Method::Tuna),
    ("Traditional", Method::Traditional),
    ("Default", Method::DefaultConfig),
];

/// Parsed command-line options for regenerator binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HarnessArgs {
    /// Tuning runs per method (None = figure default).
    pub runs: Option<usize>,
    /// Optimizer rounds per run (None = figure default).
    pub rounds: Option<usize>,
    /// Root seed.
    pub seed: u64,
    /// Fast smoke mode.
    pub quick: bool,
    /// Paper-scale mode.
    pub full: bool,
    /// Campaign result-store path (campaign-backed binaries only).
    pub store: Option<String>,
    /// Arrival-pattern name (pattern-aware binaries only; see
    /// [`tuna_workloads::arrival`]).
    pub pattern: Option<String>,
}

/// The usage message shared by every regenerator binary. Like
/// `--store` (campaign-backed binaries only), `--pattern` parses
/// everywhere but only pattern-aware binaries (fig11) act on it.
pub const USAGE: &str = "usage: <figure binary> [--runs N] [--rounds N] [--seed N] \
                         [--quick] [--full] [--store PATH (campaign-backed bins)] \
                         [--pattern steady|diurnal|bursty (fig11)]";

/// Prints `msg` and the usage line to stderr, then exits with status 2.
pub fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

impl HarnessArgs {
    /// Parses `std::env::args()`, printing a usage message and exiting
    /// with a non-zero status on malformed flags, missing values or
    /// unknown flags.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&argv).unwrap_or_else(|e| fail(&e))
    }

    /// [`HarnessArgs::parse`]'s grammar, factored out of the process
    /// environment (and the process exit) so it is testable.
    ///
    /// # Errors
    ///
    /// Returns a message describing the offending flag on malformed or
    /// missing values and on unknown flags.
    pub fn parse_from(argv: &[String]) -> Result<Self, String> {
        fn value<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
            *i += 1;
            argv.get(*i)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} requires a value"))
        }
        fn number<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("{flag} requires a number, got '{raw}'"))
        }
        let mut args = HarnessArgs {
            seed: 42,
            ..HarnessArgs::default()
        };
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--runs" => args.runs = Some(number(value(argv, &mut i, "--runs")?, "--runs")?),
                "--rounds" => {
                    args.rounds = Some(number(value(argv, &mut i, "--rounds")?, "--rounds")?)
                }
                "--seed" => args.seed = number(value(argv, &mut i, "--seed")?, "--seed")?,
                "--store" => args.store = Some(value(argv, &mut i, "--store")?.to_string()),
                "--pattern" => args.pattern = Some(value(argv, &mut i, "--pattern")?.to_string()),
                "--quick" => args.quick = true,
                "--full" => args.full = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        Ok(args)
    }

    /// Picks a budget: quick / default / full.
    pub fn pick(&self, quick: usize, default: usize, full: usize) -> usize {
        if self.quick {
            quick
        } else if self.full {
            full
        } else {
            default
        }
    }

    /// Runs per method with figure-specific defaults.
    pub fn runs_or(&self, quick: usize, default: usize, full: usize) -> usize {
        self.runs.unwrap_or_else(|| self.pick(quick, default, full))
    }

    /// Rounds per run with figure-specific defaults.
    pub fn rounds_or(&self, quick: usize, default: usize, full: usize) -> usize {
        self.rounds
            .unwrap_or_else(|| self.pick(quick, default, full))
    }
}

/// Prints the figure banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("paper: {claim}");
    println!("==================================================================");
}

/// Prints a paper-vs-measured comparison line.
pub fn paper_vs(label: &str, paper: &str, measured: &str) {
    println!("  {label:<46} paper: {paper:<18} measured: {measured}");
}

/// Renders an inline ASCII distribution strip (poor man's boxplot) over a
/// fixed value range.
///
/// Degenerate ranges are handled explicitly: a zero `width` renders as an
/// empty strip, and when `hi <= lo` (constant series, reversed or
/// non-finite bounds) all mass lands on the strip's center cell instead
/// of silently aliasing to cell 0 through a NaN bucket index.
pub fn strip_plot(values: &[f64], lo: f64, hi: f64, width: usize) -> String {
    if width == 0 {
        return String::new();
    }
    let span = hi - lo;
    let mut cells = vec![0usize; width];
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        let idx = if span > 0.0 && span.is_finite() {
            let frac = ((v - lo) / span).clamp(0.0, 1.0);
            ((frac * (width - 1) as f64).round() as usize).min(width - 1)
        } else {
            width / 2
        };
        cells[idx] += 1;
    }
    let max = cells.iter().copied().max().unwrap_or(1).max(1);
    cells
        .iter()
        .map(|&c| {
            if c == 0 {
                '.'
            } else {
                let level = (c * 4).div_ceil(max); // 1..=4
                [' ', '-', '+', '*', '#'][level.min(4)]
            }
        })
        .collect()
}

/// Mean and std dev formatted as `mean ± std`; `"n=0"` for empty input
/// instead of `NaN ± NaN`.
pub fn mean_pm_std(values: &[f64]) -> String {
    if values.is_empty() {
        return "n=0".to_string();
    }
    format!(
        "{:.1} ± {:.1}",
        summary::mean(values),
        summary::std_dev(values)
    )
}

/// Runs `n_runs` tuning runs per method and prints the §6-style
/// method-comparison table with the paper's reference values.
///
/// Returns `(method name, summary)` pairs in the order given.
///
/// # Errors
///
/// Returns an error when `n_runs` or `methods` is empty — there is
/// nothing to summarize, and formatting `NaN ± NaN` rows would hide the
/// misconfiguration.
pub fn compare_methods(
    exp: &tuna_core::experiment::Experiment,
    methods: &[tuna_core::experiment::Method],
    n_runs: usize,
    seed: u64,
) -> Result<Vec<(&'static str, MethodSummary)>, String> {
    if n_runs == 0 {
        return Err("--runs 0: no tuning runs to compare".to_string());
    }
    if methods.is_empty() {
        return Err("no methods to compare".to_string());
    }
    let mut out = Vec::new();
    for &method in methods {
        let runs = exp.run_many(method, n_runs, seed);
        out.push((method.name(), summarize_method(&runs)));
    }
    let unit = exp.workload.metric.unit();
    let entries: Vec<(&str, MethodSummary)> = out.iter().map(|(n, s)| (*n, *s)).collect();
    println!("{}", method_comparison_table(unit, &entries));
    Ok(out)
}

/// Runs a campaign with the harness's standard plumbing: cell-level
/// workers from `TUNA_WORKERS`, the `--store` path (resume included) when
/// given, and a stderr note about where results were persisted. Exits
/// with a usage error when the grid is empty or the store is unusable.
pub fn run_campaign(args: &HarnessArgs, campaign: &Campaign) -> CampaignResult {
    if campaign.n_cells() == 0 {
        fail("--runs 0: the campaign grid is empty");
    }
    let mut store = match &args.store {
        None => ResultStore::in_memory(campaign),
        Some(path) => ResultStore::open(path, campaign).unwrap_or_else(|e| fail(&e)),
    };
    let result = CampaignRunner::from_env().run(campaign, &mut store);
    if let Some(path) = store.csv_path() {
        eprintln!(
            "campaign '{}': {} cells ({} executed, {} resumed), checksum {} -> {}",
            campaign.name,
            result.cells.len(),
            result.executed,
            result.resumed,
            result.checksum,
            path.display()
        );
    }
    result
}

/// Prints the §6-style method-comparison table for one workload of a
/// protocol campaign and returns the per-arm summaries in arm order.
/// Exits with an error if a cell group has no payloads to summarize.
pub fn campaign_method_table(
    campaign: &Campaign,
    result: &CampaignResult,
    workload: usize,
    unit: &str,
) -> Vec<(String, MethodSummary)> {
    let entries: Vec<(String, MethodSummary)> = campaign
        .arms
        .iter()
        .enumerate()
        .map(|(a, arm)| {
            let summary = result.method_summary(workload, a).unwrap_or_else(|| {
                fail(&format!(
                    "campaign '{}': arm '{}' has no deployment summaries to tabulate",
                    campaign.name, arm.label
                ))
            });
            (arm.label.clone(), summary)
        })
        .collect();
    let refs: Vec<(&str, MethodSummary)> = entries.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    println!("{}", method_comparison_table(unit, &refs));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn pick_budget_tiers() {
        let mut a = HarnessArgs {
            seed: 1,
            ..HarnessArgs::default()
        };
        assert_eq!(a.pick(1, 2, 3), 2);
        a.quick = true;
        assert_eq!(a.pick(1, 2, 3), 1);
        a.quick = false;
        a.full = true;
        assert_eq!(a.pick(1, 2, 3), 3);
    }

    #[test]
    fn explicit_runs_override() {
        let a = HarnessArgs {
            runs: Some(7),
            seed: 1,
            quick: true,
            ..HarnessArgs::default()
        };
        assert_eq!(a.runs_or(1, 2, 3), 7);
        assert_eq!(a.rounds_or(1, 2, 3), 1);
    }

    #[test]
    fn parse_from_accepts_all_flags() {
        let a = HarnessArgs::parse_from(&argv(&[
            "--runs",
            "4",
            "--rounds",
            "9",
            "--seed",
            "7",
            "--quick",
            "--store",
            "out/c.csv",
            "--pattern",
            "diurnal",
        ]))
        .unwrap();
        assert_eq!(a.runs, Some(4));
        assert_eq!(a.rounds, Some(9));
        assert_eq!(a.seed, 7);
        assert!(a.quick && !a.full);
        assert_eq!(a.store.as_deref(), Some("out/c.csv"));
        assert_eq!(a.pattern.as_deref(), Some("diurnal"));
        let d = HarnessArgs::parse_from(&[]).unwrap();
        assert_eq!(d.seed, 42);
        assert_eq!(d.store, None);
        assert_eq!(d.pattern, None);
    }

    #[test]
    fn parse_from_rejects_bad_input() {
        // Missing value at end of argv.
        let e = HarnessArgs::parse_from(&argv(&["--runs"])).unwrap_err();
        assert!(e.contains("--runs requires a value"), "{e}");
        // Non-numeric value.
        let e = HarnessArgs::parse_from(&argv(&["--rounds", "many"])).unwrap_err();
        assert!(e.contains("--rounds requires a number"), "{e}");
        // Unknown flags are errors, not silently ignored.
        let e = HarnessArgs::parse_from(&argv(&["--frobnicate"])).unwrap_err();
        assert!(e.contains("unknown flag '--frobnicate'"), "{e}");
        // A flag value that is itself flag-shaped parses as a value miss.
        let e = HarnessArgs::parse_from(&argv(&["--seed", "--quick"])).unwrap_err();
        assert!(e.contains("--seed requires a number"), "{e}");
    }

    #[test]
    fn strip_plot_marks_mass() {
        let s = strip_plot(&[0.0, 0.0, 1.0], 0.0, 1.0, 10);
        assert_eq!(s.len(), 10);
        assert_ne!(s.chars().next().unwrap(), '.');
        assert_ne!(s.chars().last().unwrap(), '.');
        assert_eq!(s.chars().nth(5).unwrap(), '.');
    }

    #[test]
    fn strip_plot_constant_series_centers_mass() {
        // hi == lo (a constant series' natural bounds) must not alias
        // every sample to cell 0 through a NaN bucket index.
        let s = strip_plot(&[5.0, 5.0, 5.0], 5.0, 5.0, 11);
        assert_eq!(s.len(), 11);
        assert_ne!(s.chars().nth(5).unwrap(), '.');
        assert!(
            s.chars().enumerate().all(|(i, c)| i == 5 || c == '.'),
            "{s}"
        );
        // Reversed bounds degrade the same way instead of underflowing.
        let r = strip_plot(&[1.0, 2.0], 3.0, -3.0, 7);
        assert_ne!(r.chars().nth(3).unwrap(), '.');
    }

    #[test]
    fn strip_plot_degenerate_width_and_values() {
        assert_eq!(strip_plot(&[1.0, 2.0], 0.0, 1.0, 0), "");
        // Non-finite samples and bounds are ignored rather than panicking.
        let s = strip_plot(&[f64::NAN, f64::INFINITY], 0.0, 1.0, 5);
        assert_eq!(s, ".....");
        let t = strip_plot(&[0.5], f64::NAN, 1.0, 5);
        assert_ne!(t.chars().nth(2).unwrap(), '.');
    }

    #[test]
    fn mean_pm_std_handles_empty() {
        assert_eq!(mean_pm_std(&[]), "n=0");
        assert_eq!(mean_pm_std(&[2.0, 4.0]), "3.0 ± 1.4");
    }

    #[test]
    fn compare_methods_rejects_empty_grids() {
        let exp = tuna_core::experiment::Experiment::quick_demo();
        let err = compare_methods(&exp, &[tuna_core::experiment::Method::DefaultConfig], 0, 1)
            .unwrap_err();
        assert!(err.contains("--runs 0"), "{err}");
        let err = compare_methods(&exp, &[], 1, 1).unwrap_err();
        assert!(err.contains("no methods"), "{err}");
    }
}
