//! Shared harness utilities for the figure/table regenerator binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation: it runs the corresponding experiment on the
//! simulated substrate and prints the same rows/series the paper plots,
//! annotated with the paper's reported values for comparison. Absolute
//! numbers are not expected to match (the substrate is a simulator, not
//! the authors' Azure/CloudLab testbed); the *shape* — who wins, by what
//! rough factor, where crossovers fall — is the reproduction target.
//!
//! Common flags for all binaries:
//!
//! - `--runs N`: tuning runs per method (default varies per figure),
//! - `--rounds N`: optimizer rounds per tuning run,
//! - `--seed N`: root seed,
//! - `--quick`: cut all budgets for a fast smoke run,
//! - `--full`: paper-scale budgets (slow).

use tuna_stats::summary;

pub mod perf;

/// Parsed command-line options for regenerator binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Tuning runs per method (None = figure default).
    pub runs: Option<usize>,
    /// Optimizer rounds per run (None = figure default).
    pub rounds: Option<usize>,
    /// Root seed.
    pub seed: u64,
    /// Fast smoke mode.
    pub quick: bool,
    /// Paper-scale mode.
    pub full: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed flags.
    pub fn parse() -> Self {
        let mut args = HarnessArgs {
            runs: None,
            rounds: None,
            seed: 42,
            quick: false,
            full: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--runs" => {
                    i += 1;
                    args.runs = Some(argv[i].parse().expect("--runs N"));
                }
                "--rounds" => {
                    i += 1;
                    args.rounds = Some(argv[i].parse().expect("--rounds N"));
                }
                "--seed" => {
                    i += 1;
                    args.seed = argv[i].parse().expect("--seed N");
                }
                "--quick" => args.quick = true,
                "--full" => args.full = true,
                other => panic!("unknown flag '{other}' (see crate docs for usage)"),
            }
            i += 1;
        }
        args
    }

    /// Picks a budget: quick / default / full.
    pub fn pick(&self, quick: usize, default: usize, full: usize) -> usize {
        if self.quick {
            quick
        } else if self.full {
            full
        } else {
            default
        }
    }

    /// Runs per method with figure-specific defaults.
    pub fn runs_or(&self, quick: usize, default: usize, full: usize) -> usize {
        self.runs.unwrap_or_else(|| self.pick(quick, default, full))
    }

    /// Rounds per run with figure-specific defaults.
    pub fn rounds_or(&self, quick: usize, default: usize, full: usize) -> usize {
        self.rounds
            .unwrap_or_else(|| self.pick(quick, default, full))
    }
}

/// Prints the figure banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("paper: {claim}");
    println!("==================================================================");
}

/// Prints a paper-vs-measured comparison line.
pub fn paper_vs(label: &str, paper: &str, measured: &str) {
    println!("  {label:<46} paper: {paper:<18} measured: {measured}");
}

/// Renders an inline ASCII distribution strip (poor man's boxplot) over a
/// fixed value range.
pub fn strip_plot(values: &[f64], lo: f64, hi: f64, width: usize) -> String {
    let mut cells = vec![0usize; width];
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        let idx = ((frac * (width - 1) as f64).round() as usize).min(width - 1);
        cells[idx] += 1;
    }
    let max = cells.iter().copied().max().unwrap_or(1).max(1);
    cells
        .iter()
        .map(|&c| {
            if c == 0 {
                '.'
            } else {
                let level = (c * 4).div_ceil(max); // 1..=4
                [' ', '-', '+', '*', '#'][level.min(4)]
            }
        })
        .collect()
}

/// Mean and std dev formatted as `mean ± std`.
pub fn mean_pm_std(values: &[f64]) -> String {
    format!(
        "{:.1} ± {:.1}",
        summary::mean(values),
        summary::std_dev(values)
    )
}

/// Runs `n_runs` tuning runs per method and prints the §6-style
/// method-comparison table with the paper's reference values.
///
/// Returns `(method name, summary)` pairs in the order given.
pub fn compare_methods(
    exp: &tuna_core::experiment::Experiment,
    methods: &[tuna_core::experiment::Method],
    n_runs: usize,
    seed: u64,
) -> Vec<(&'static str, tuna_core::report::MethodSummary)> {
    use tuna_core::report::{method_comparison_table, summarize_method};
    let mut out = Vec::new();
    for &method in methods {
        let runs = exp.run_many(method, n_runs, seed);
        out.push((method.name(), summarize_method(&runs)));
    }
    let unit = exp.workload.metric.unit();
    let entries: Vec<(&str, tuna_core::report::MethodSummary)> =
        out.iter().map(|(n, s)| (*n, *s)).collect();
    println!("{}", method_comparison_table(unit, &entries));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_budget_tiers() {
        let mut a = HarnessArgs {
            runs: None,
            rounds: None,
            seed: 1,
            quick: false,
            full: false,
        };
        assert_eq!(a.pick(1, 2, 3), 2);
        a.quick = true;
        assert_eq!(a.pick(1, 2, 3), 1);
        a.quick = false;
        a.full = true;
        assert_eq!(a.pick(1, 2, 3), 3);
    }

    #[test]
    fn explicit_runs_override() {
        let a = HarnessArgs {
            runs: Some(7),
            rounds: None,
            seed: 1,
            quick: true,
            full: false,
        };
        assert_eq!(a.runs_or(1, 2, 3), 7);
        assert_eq!(a.rounds_or(1, 2, 3), 1);
    }

    #[test]
    fn strip_plot_marks_mass() {
        let s = strip_plot(&[0.0, 0.0, 1.0], 0.0, 1.0, 10);
        assert_eq!(s.len(), 10);
        assert_ne!(s.chars().next().unwrap(), '.');
        assert_ne!(s.chars().last().unwrap(), '.');
        assert_eq!(s.chars().nth(5).unwrap(), '.');
    }
}
