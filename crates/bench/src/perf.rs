//! The perf-gate subsystem: deterministic benchmark scenarios, the
//! machine-readable `BENCH.json` document, and the CI regression gate.
//!
//! # Design
//!
//! Every scenario is a *deterministic* workload under fixed seeds: it
//! folds every result it produces into an order-sensitive FNV-1a
//! [`Checksum`], so a scenario has exactly one legal checksum per
//! algorithm version. The harness re-runs each scenario several times
//! and asserts the checksum never changes — nondeterminism is a bug the
//! gate catches locally, before CI.
//!
//! The gate compares a fresh run against the committed
//! `bench/baseline.json`:
//!
//! - **checksum drift** fails unconditionally — either the algorithm
//!   changed (regenerate the baseline deliberately) or determinism broke;
//! - **slowdown** is judged on *calibration-normalized* throughput: each
//!   document carries a fixed arithmetic calibration scenario, and
//!   scenario throughput is divided by the document's own calibration
//!   throughput before comparing, which cancels most of the difference
//!   between the machine that produced the baseline and the CI runner.
//!   A normalized ratio below `1 - tolerance` (default
//!   [`DEFAULT_TOLERANCE`]) fails the gate.
//!
//! `perfgate` (in `src/bin/`) is the CLI: `run` emits `BENCH.json`,
//! `check` runs the gate, `update-baseline` regenerates the committed
//! baseline.

use std::time::Instant;

use tuna_cloudsim::{Cluster, Machine, Region, VmSku};
use tuna_core::aggregate::AggregationPolicy;
use tuna_core::baselines::run_naive_distributed;
use tuna_core::executor::ExecutionMode;
use tuna_core::outlier::OutlierDetector;
use tuna_core::pipeline::{TunaConfig, TunaPipeline, TuningResult};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
use tuna_optimizer::{Objective, Optimizer};
use tuna_stats::ar1::Ar1;
use tuna_stats::bootstrap::bootstrap_mean_ci;
use tuna_stats::corr::{pearson, spearman_with, RankScratch};
use tuna_stats::online::{P2Quantile, Welford};
use tuna_stats::rng::Rng;
use tuna_stats::summary;
use tuna_sut::{nginx::Nginx, postgres::Postgres, redis::Redis, SystemUnderTest};
use tuna_workloads::{TargetSystem, Workload};

/// Name of the calibration scenario used as the cross-machine
/// throughput normalizer.
pub const CALIBRATION: &str = "calibration/splitmix";

/// Default slowdown tolerance of the gate (fraction of normalized
/// throughput; 0.20 fails on >20% slowdown).
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// `BENCH.json` format version.
pub const BENCH_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// Order-sensitive FNV-1a/64 digest over the values a scenario produces
/// (shared with the campaign engine; see [`tuna_stats::fnv`]).
pub use tuna_stats::fnv::Checksum;

// ---------------------------------------------------------------------------
// BENCH.json document
// ---------------------------------------------------------------------------

/// One scenario measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name (stable identifier).
    pub scenario: String,
    /// Best-of-N wall clock of one scenario run, in nanoseconds.
    pub wall_ns: u64,
    /// Work units one run processes (samples, epochs, rounds...).
    pub items: u64,
    /// `items / wall_seconds`.
    pub throughput: f64,
    /// Deterministic result digest ([`Checksum::hex`]).
    pub checksum: String,
}

/// The `BENCH.json` document: every scenario of one suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Format version ([`BENCH_VERSION`]).
    pub version: u64,
    /// Whether the suite ran in quick mode. Quick and full runs have
    /// different iteration counts and therefore different checksums;
    /// [`compare`] refuses to mix them.
    pub quick: bool,
    /// Scenario measurements, in suite order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchDoc {
    /// Looks up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.scenario == name)
    }

    /// Calibration throughput of this document, if present.
    pub fn calibration_throughput(&self) -> Option<f64> {
        self.get(CALIBRATION).map(|s| s.throughput)
    }

    /// Serializes to the canonical `BENCH.json` layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scenario\": {}, \"wall_ns\": {}, \"items\": {}, \
                 \"throughput\": {:?}, \"checksum\": {}}}{}\n",
                json::quote(&s.scenario),
                s.wall_ns,
                s.items,
                s.throughput,
                json::quote(&s.checksum),
                if i + 1 == self.scenarios.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a document previously emitted by [`BenchDoc::to_json`]
    /// (or hand-maintained in the same schema).
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let version = json::field(obj, "version")?
            .as_f64()
            .ok_or("version must be a number")? as u64;
        let quick = match json::field(obj, "quick") {
            Ok(v) => v.as_bool().ok_or("quick must be a boolean")?,
            // Documents written before the field existed were full runs.
            Err(_) => false,
        };
        let list = json::field(obj, "scenarios")?
            .as_arr()
            .ok_or("scenarios must be an array")?;
        let mut scenarios = Vec::with_capacity(list.len());
        for item in list {
            let o = item.as_obj().ok_or("scenario entry must be an object")?;
            scenarios.push(ScenarioResult {
                scenario: json::field(o, "scenario")?
                    .as_str()
                    .ok_or("scenario must be a string")?
                    .to_string(),
                wall_ns: json::field(o, "wall_ns")?
                    .as_f64()
                    .ok_or("wall_ns must be a number")? as u64,
                items: json::field(o, "items")?
                    .as_f64()
                    .ok_or("items must be a number")? as u64,
                throughput: json::field(o, "throughput")?
                    .as_f64()
                    .ok_or("throughput must be a number")?,
                checksum: json::field(o, "checksum")?
                    .as_str()
                    .ok_or("checksum must be a string")?
                    .to_string(),
            });
        }
        Ok(BenchDoc {
            version,
            quick,
            scenarios,
        })
    }
}

// JSON reading/writing lives in the shared `tuna_stats::json` module
// (one hand-rolled writer/parser for the whole offline workspace).
use tuna_stats::json;

// ---------------------------------------------------------------------------
// Scenario harness
// ---------------------------------------------------------------------------

/// A deterministic benchmark scenario.
pub struct ScenarioSpec {
    /// Stable name (`area/workload`).
    pub name: &'static str,
    /// Work units one run processes.
    pub items: u64,
    /// The workload; must fold every result into the checksum.
    pub run: Box<dyn Fn(&mut Checksum)>,
}

/// Runs one scenario: a warmup pass to settle caches and pin the
/// checksum, then at least `timed_rounds` measured passes taking the
/// best wall clock. Short scenarios get extra passes (up to 8, until
/// ~60ms of cumulative measurement) so scheduler noise cannot dominate
/// a single quick pass.
///
/// # Panics
///
/// Panics if two passes disagree on the checksum — scenarios must be
/// deterministic.
pub fn run_scenario(spec: &ScenarioSpec, timed_rounds: u32) -> ScenarioResult {
    const MEASURE_BUDGET_NS: u64 = 60_000_000;
    const MAX_ROUNDS: u32 = 8;

    let mut warm = Checksum::new();
    (spec.run)(&mut warm);
    let expected = warm.hex();

    let mut best_ns = u64::MAX;
    let mut total_ns = 0u64;
    let mut rounds = 0u32;
    loop {
        let mut c = Checksum::new();
        let start = Instant::now();
        (spec.run)(&mut c);
        let elapsed = start.elapsed().as_nanos() as u64;
        assert_eq!(
            c.hex(),
            expected,
            "scenario '{}' is nondeterministic across passes",
            spec.name
        );
        best_ns = best_ns.min(elapsed.max(1));
        total_ns += elapsed;
        rounds += 1;
        if rounds >= timed_rounds.max(1) && (total_ns >= MEASURE_BUDGET_NS || rounds >= MAX_ROUNDS)
        {
            break;
        }
    }
    ScenarioResult {
        scenario: spec.name.to_string(),
        wall_ns: best_ns,
        items: spec.items,
        throughput: spec.items as f64 / (best_ns as f64 / 1e9),
        checksum: expected,
    }
}

/// Runs the whole curated suite.
///
/// `quick` scales every scenario down (~10x) for tests and smoke runs —
/// quick and full runs have different checksums and must not be
/// compared against each other. `handicap > 1` multiplies measured wall
/// time (dividing throughput) on every non-calibration scenario; it
/// exists to demonstrate the gate failing on an injected slowdown
/// without editing code.
pub fn run_suite(quick: bool, handicap: f64) -> BenchDoc {
    assert!(handicap >= 1.0, "handicap must be >= 1");
    let mut scenarios = Vec::new();
    for spec in suite(quick) {
        let mut r = run_scenario(&spec, 3);
        if spec.name != CALIBRATION && handicap > 1.0 {
            r.wall_ns = ((r.wall_ns as f64) * handicap) as u64;
            r.throughput /= handicap;
        }
        scenarios.push(r);
    }
    BenchDoc {
        version: BENCH_VERSION,
        quick,
        scenarios,
    }
}

fn sut_for(target: TargetSystem) -> Box<dyn SystemUnderTest> {
    match target {
        TargetSystem::Postgres => Box::new(Postgres::new()),
        TargetSystem::Redis => Box::new(Redis::new()),
        TargetSystem::Nginx => Box::new(Nginx::new()),
    }
}

fn objective_for(workload: &Workload) -> Objective {
    if workload.metric.higher_is_better() {
        Objective::Maximize
    } else {
        Objective::Minimize
    }
}

fn smac_for(sut: &dyn SystemUnderTest, objective: Objective) -> Box<dyn Optimizer> {
    Box::new(SmacOptimizer::multi_fidelity(
        sut.space().clone(),
        objective,
        SmacParams {
            n_init: 5,
            n_random_candidates: 40,
            ..SmacParams::default()
        },
        LadderParams::paper_default(),
    ))
}

fn checksum_result(c: &mut Checksum, result: &TuningResult) {
    c.push_f64(result.best_value);
    c.push_u64(result.total_samples as u64);
    c.push_u64(result.n_configs as u64);
    c.push_u64(result.n_unstable_configs as u64);
    for rec in &result.trace {
        c.push_f64(rec.reported);
    }
}

/// One full-pipeline tuning run: `rounds` rounds of the TUNA sampling
/// pipeline on a 10-worker cluster under `mode`.
fn run_pipeline(
    workload: &Workload,
    rounds: usize,
    seed: u64,
    mode: ExecutionMode,
) -> TuningResult {
    let sut = sut_for(workload.target);
    let objective = objective_for(workload);
    let cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), seed);
    let optimizer = smac_for(sut.as_ref(), objective);
    // Fixed, orientation-appropriate crash penalty: the scenario must be
    // deterministic and cheap, not paper-faithful.
    let crash_penalty = match objective {
        Objective::Maximize => 1.0,
        Objective::Minimize => 10_000.0,
    };
    let mut cfg = TunaConfig::paper_default(crash_penalty);
    cfg.mode = mode;
    let mut pipeline = TunaPipeline::new(cfg, sut.as_ref(), workload, optimizer, cluster);
    let mut rng = Rng::seed_from(seed ^ 0x9E37);
    pipeline.run_rounds(rounds, &mut rng);
    pipeline.finish()
}

/// The curated deterministic scenario suite.
///
/// Scenario names are contract: renaming one orphans its baseline
/// entry, so treat names as append-only.
pub fn suite(quick: bool) -> Vec<ScenarioSpec> {
    let k = if quick { 1 } else { 10 };
    let mut v: Vec<ScenarioSpec> = Vec::new();

    // -- calibration -------------------------------------------------------
    // Fixed integer mixing; its throughput normalizes every other
    // scenario's when comparing documents from different machines.
    {
        let iters: u64 = 400_000 * k as u64;
        v.push(ScenarioSpec {
            name: CALIBRATION,
            items: iters,
            run: Box::new(move |c| {
                let mut state = 0x2545_F491_4F6C_DD1Du64;
                for _ in 0..iters {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    state ^= z >> 31;
                }
                c.push_u64(state);
            }),
        });
    }

    // Shared 10k AR(1) window generator for the stats micro-kernels —
    // the workload the pipeline actually aggregates (temporally
    // correlated cloud noise around a nominal level).
    fn ar1_window(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from(seed);
        let mut ar = Ar1::new(0.9, 0.1, &mut rng).expect("valid AR(1)");
        (0..n).map(|_| 1.0 + ar.step(&mut rng)).collect()
    }

    // -- stats micro-kernels ----------------------------------------------
    {
        let reps = 20 * k;
        v.push(ScenarioSpec {
            name: "stats/relative_range_cov_10k",
            items: (reps * 10_000) as u64,
            run: Box::new(move |c| {
                let xs = ar1_window(10_000, 101);
                for _ in 0..reps {
                    c.push_f64(summary::relative_range(&xs));
                    c.push_f64(summary::coefficient_of_variation(&xs));
                }
            }),
        });
    }
    {
        let reps = 10 * k;
        v.push(ScenarioSpec {
            name: "stats/select_quantile_10k",
            items: (reps * 10_000) as u64,
            run: Box::new(move |c| {
                let xs = ar1_window(10_000, 102);
                let mut scratch = Vec::new();
                for _ in 0..reps {
                    c.push_f64(summary::quantile_with(&xs, 0.5, &mut scratch));
                    c.push_f64(summary::quantile_with(&xs, 0.95, &mut scratch));
                }
            }),
        });
    }
    {
        let reps = 10 * k;
        v.push(ScenarioSpec {
            name: "stats/select_median_mad_10k",
            items: (reps * 10_000) as u64,
            run: Box::new(move |c| {
                let xs = ar1_window(10_000, 103);
                let mut scratch = Vec::new();
                for _ in 0..reps {
                    c.push_f64(summary::median_with(&xs, &mut scratch));
                    c.push_f64(summary::mad_with(&xs, &mut scratch));
                }
            }),
        });
    }
    {
        // The retained naive oracle on the same window: BENCH.json keeps
        // the naive-vs-streaming delta visible run over run.
        let reps = 10 * k;
        v.push(ScenarioSpec {
            name: "stats/naive_median_mad_10k",
            items: (reps * 10_000) as u64,
            run: Box::new(move |c| {
                let xs = ar1_window(10_000, 103);
                for _ in 0..reps {
                    c.push_f64(summary::naive::median(&xs));
                    c.push_f64(summary::naive::mad(&xs));
                }
            }),
        });
    }
    {
        let n = 100_000 * k;
        v.push(ScenarioSpec {
            name: "stats/p2_quantile_stream",
            items: n as u64,
            run: Box::new(move |c| {
                let mut rng = Rng::seed_from(104);
                let mut ar = Ar1::new(0.9, 0.1, &mut rng).expect("valid AR(1)");
                let mut p50 = P2Quantile::new(0.5);
                let mut p95 = P2Quantile::new(0.95);
                let mut w = Welford::new();
                for _ in 0..n {
                    let x = 1.0 + ar.step(&mut rng);
                    p50.push(x);
                    p95.push(x);
                    w.push(x);
                }
                c.push_f64(p50.value());
                c.push_f64(p95.value());
                c.push_f64(w.mean());
                c.push_f64(w.variance());
            }),
        });
    }
    {
        let reps = 3 * k;
        v.push(ScenarioSpec {
            name: "stats/bootstrap_200x500",
            items: (reps * 500 * 200) as u64,
            run: Box::new(move |c| {
                let xs = ar1_window(200, 105);
                for rep in 0..reps {
                    let ci =
                        bootstrap_mean_ci(&xs, 0.99, 500, &mut Rng::seed_from(900 + rep as u64));
                    c.push_f64(ci.lo);
                    c.push_f64(ci.point);
                    c.push_f64(ci.hi);
                }
            }),
        });
    }
    {
        let reps = 2 * k;
        v.push(ScenarioSpec {
            name: "stats/pearson_spearman_5k",
            items: (reps * 5_000) as u64,
            run: Box::new(move |c| {
                let xs = ar1_window(5_000, 106);
                let mut rng = Rng::seed_from(107);
                let ys: Vec<f64> = xs
                    .iter()
                    .map(|x| 0.6 * x + 0.4 * rng.next_gaussian())
                    .collect();
                let mut scratch = RankScratch::default();
                for _ in 0..reps {
                    c.push_f64(pearson(&xs, &ys));
                    c.push_f64(spearman_with(&xs, &ys, &mut scratch));
                }
            }),
        });
    }

    // -- core aggregation hot path ----------------------------------------
    {
        let windows = 6_000 * k;
        v.push(ScenarioSpec {
            name: "core/outlier_aggregate_windows",
            items: (windows * 10) as u64,
            run: Box::new(move |c| {
                let detector = OutlierDetector::default();
                let mut rng = Rng::seed_from(108);
                let mut window = [0.0f64; 10];
                let mut scratch = Vec::new();
                for _ in 0..windows {
                    for slot in window.iter_mut() {
                        *slot = 1000.0 * (1.0 + 0.08 * rng.next_gaussian());
                    }
                    let stab = detector.classify(&window);
                    let min = AggregationPolicy::WorstCase.aggregate_with(
                        &window,
                        Objective::Maximize,
                        &mut scratch,
                    );
                    let med = AggregationPolicy::Median.aggregate_with(
                        &window,
                        Objective::Maximize,
                        &mut scratch,
                    );
                    c.push_f64(stab.relative_range());
                    c.push_f64(min);
                    c.push_f64(med);
                }
            }),
        });
    }

    // -- cloudsim measurement generation ----------------------------------
    {
        let epochs = 5_000 * k;
        v.push(ScenarioSpec {
            name: "cloudsim/machine_observe",
            items: epochs as u64,
            run: Box::new(move |c| {
                let root = Rng::seed_from(109);
                let mut m = Machine::provision(0, &VmSku::d8s_v5(), &Region::westus2(), &root);
                let demand = tuna_cloudsim::components::ComponentVec::new(0.6, 0.7, 0.4, 0.3, 0.2);
                let mut acc = Welford::new();
                for _ in 0..epochs {
                    let snap = m.observe(&demand);
                    acc.push(snap.speeds.cpu + snap.speeds.disk + snap.speeds.cache);
                }
                c.push_f64(acc.mean());
                c.push_f64(acc.variance());
                c.push_u64(acc.count());
            }),
        });
    }
    {
        let epochs = 2_000 * k;
        v.push(ScenarioSpec {
            name: "metrics/generate",
            items: epochs as u64,
            run: Box::new(move |c| {
                let root = Rng::seed_from(110);
                let mut m = Machine::provision(1, &VmSku::d8s_v5(), &Region::westus2(), &root);
                let demand = tuna_cloudsim::components::ComponentVec::new(0.5, 0.8, 0.4, 0.3, 0.2);
                let mut rng = Rng::seed_from(111);
                let mut acc = Welford::new();
                for _ in 0..epochs {
                    let snap = m.observe(&demand);
                    let metrics = tuna_metrics::generate(&snap, &demand, 1.0, &mut rng);
                    for &x in metrics.values() {
                        acc.push(x);
                    }
                }
                c.push_f64(acc.mean());
                c.push_u64(acc.count());
            }),
        });
    }
    {
        // 2 regions x 2 SKUs x 7 benches x (3 long VMs x 24 weeks x 6
        // sessions + 24 weeks x 20 short VMs) = 25_536 samples — big
        // enough to time stably, small enough to stay under ~10ms.
        let weeks = if quick { 8 } else { 24 };
        let short_per_week = if quick { 10 } else { 20 };
        let items = (2 * 2 * 7 * (3 * weeks * 6 + weeks * short_per_week)) as u64;
        v.push(ScenarioSpec {
            name: "cloudsim/study_quick",
            items,
            run: Box::new(move |c| {
                let cfg = tuna_cloudsim::study::StudyConfig {
                    weeks,
                    short_vms_per_week: short_per_week,
                    long_sessions_per_week: 6,
                    keep_samples: false,
                    ..tuna_cloudsim::study::StudyConfig::scaled_default()
                };
                let report = tuna_cloudsim::study::run_study(&cfg);
                c.push_u64(report.total_samples);
                c.push_u64(report.total_instances);
                for s in &report.series {
                    c.push_f64(s.overall.mean());
                    c.push_u64(s.overall.count());
                }
            }),
        });
    }

    // -- one pipeline run per SuT ------------------------------------------
    // Round counts are tuned so each SuT's scenario runs tens of
    // milliseconds: the redis/nginx models are much cheaper per round
    // than postgres and need more rounds to time stably.
    for (name, workload, rounds) in [
        (
            "pipeline/postgres_tpcc",
            tuna_workloads::tpcc(),
            if quick { 8 } else { 48 },
        ),
        (
            "pipeline/redis_ycsb_c",
            tuna_workloads::ycsb_c(),
            if quick { 8 } else { 80 },
        ),
        (
            "pipeline/nginx_wikipedia",
            tuna_workloads::wikipedia(),
            if quick { 8 } else { 80 },
        ),
    ] {
        v.push(ScenarioSpec {
            name,
            items: rounds as u64,
            run: Box::new(move |c| {
                let result = run_pipeline(&workload, rounds, 0xBEEF, ExecutionMode::Serial);
                checksum_result(c, &result);
            }),
        });
    }

    // -- naive-distributed baseline ----------------------------------------
    {
        let budget = if quick { 40 } else { 800 };
        v.push(ScenarioSpec {
            name: "baselines/naive_distributed",
            items: budget as u64,
            run: Box::new(move |c| {
                let workload = tuna_workloads::tpcc();
                let sut = sut_for(workload.target);
                let objective = objective_for(&workload);
                let optimizer = smac_for(sut.as_ref(), objective);
                let cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 0xD157);
                let mut rng = Rng::seed_from(0xD158);
                let result = run_naive_distributed(
                    ExecutionMode::Serial,
                    sut.as_ref(),
                    &workload,
                    optimizer,
                    cluster,
                    budget,
                    1.0,
                    &mut rng,
                );
                checksum_result(c, &result);
            }),
        });
    }

    // -- campaign engine ---------------------------------------------------
    // A small (workload × method) grid through the declarative campaign
    // runner, executed serially and with 4 cell-stealing workers; the two
    // result stores must agree checksum-for-checksum (the campaign's
    // determinism contract), and every cell digest feeds the scenario
    // checksum so grid numerics are gated run over run.
    {
        let rounds = if quick { 2 } else { 6 };
        v.push(ScenarioSpec {
            name: "campaign/grid_small",
            // 2 workloads × 2 arms × 1 run, executed in both modes.
            items: 8,
            run: Box::new(move |c| {
                use tuna_core::campaign::{Campaign, CampaignRunner, ResultStore};
                use tuna_core::experiment::Method;
                let campaign = Campaign::protocol(
                    "perfgate_grid_small",
                    0xCA4A,
                    vec![tuna_workloads::tpcc(), tuna_workloads::ycsb_c()],
                    &[("TUNA", Method::Tuna), ("Default", Method::DefaultConfig)],
                )
                .with_runs(1)
                .with_rounds(rounds);
                let mut serial_store = ResultStore::in_memory(&campaign);
                let serial = CampaignRunner::serial().run(&campaign, &mut serial_store);
                let mut par_store = ResultStore::in_memory(&campaign);
                let parallel = CampaignRunner::with_workers(4).run(&campaign, &mut par_store);
                assert_eq!(
                    serial.checksum, parallel.checksum,
                    "serial and 4-worker campaign runs diverged"
                );
                c.push_str(&serial.checksum);
                for cell in &serial.cells {
                    c.push_u64(cell.cell as u64);
                    c.push_str(&cell.record.checksum);
                }
            }),
        });
    }

    // -- serve daemon ingest ----------------------------------------------
    // The daemon's cheap path: decode submit requests through the full
    // HTTP+JSON wire stack, register the studies, then drain the
    // fair-share scheduler (completions are synthetic — no tuning runs).
    // The checksum pins response statuses, the assignment *order* (the
    // scheduling policy is part of the contract) and every study's
    // declaration digest.
    {
        let requests = 40 * k;
        v.push(ScenarioSpec {
            name: "serve/ingest",
            // Each request declares (1 + r%2 workloads) x 2 arms x
            // (1 + r%3 runs) cells; both requests and scheduled cells
            // are work items.
            items: {
                let cells: usize = (0..requests).map(|r| (1 + r % 2) * 2 * (1 + r % 3)).sum();
                (requests + cells) as u64
            },
            run: Box::new(move |c| {
                use tuna_core::campaign::{CellRecord, CellRow};
                use tuna_serve::daemon::handle_bytes;
                use tuna_serve::http;
                use tuna_serve::manager::StudyManager;

                let mut mgr = StudyManager::in_memory();
                for r in 0..requests {
                    let workloads = if r % 2 == 0 {
                        "\"tpcc\""
                    } else {
                        "\"tpcc\", \"ycsb-c\""
                    };
                    let body = format!(
                        "{{\"name\": \"ingest-{r}\", \"seed\": {r}, \"runs\": {}, \
                         \"rounds\": 4, \"workloads\": [{workloads}], \
                         \"arms\": [{{\"label\": \"TUNA\", \"method\": \"tuna\"}}, \
                         {{\"label\": \"Default\", \"method\": \"default\"}}]}}",
                        1 + r % 3
                    );
                    let raw = http::request_bytes("POST", "/v1/studies", &body);
                    let reply = handle_bytes(&mut mgr, &raw);
                    let (status, _) = http::parse_response(&reply).expect("well-formed reply");
                    c.push_u64(status as u64);
                }
                // Drain the fair-share scheduler with synthetic
                // completions: this times pure scheduling throughput and
                // pins the policy's assignment order.
                while let Some(a) = mgr.next_assignment() {
                    let mut h = Checksum::new();
                    h.push_str(&a.study);
                    h.push_u64(a.cell as u64);
                    c.push_str(&h.hex());
                    let rows = vec![CellRow {
                        label: "synthetic".to_string(),
                        seed: a.cell as u64,
                        samples: 1,
                        best: Some(a.cell as f64),
                        mean: Some(1.0),
                        std: Some(0.0),
                        min: Some(1.0),
                        max: Some(1.0),
                        crashes: Some(0),
                    }];
                    let checksum = CellRecord::compute_checksum(&rows);
                    mgr.complete(
                        &a.tenant,
                        &a.study,
                        CellRecord {
                            cell: a.cell,
                            rows,
                            checksum,
                        },
                    )
                    .expect("synthetic completion");
                }
                for study in mgr.studies() {
                    c.push_str(&study.campaign.digest());
                }
            }),
        });
    }

    // -- serve connection engine at scale ----------------------------------
    // Thousands of keep-alive connections interleaved through the same
    // per-connection state machine `tunad` runs, fed in staggered waves
    // so requests queue across scheduler ticks before dispatching. The
    // scenario's items are *connections*, so the gated throughput is
    // connections/sec; the checksum pins every response status in
    // connection order, the fair-share assignment order, and the p99
    // decode-to-dispatch latency (in ticks), which is also hard-bounded
    // here. Deliberately the same size in quick mode: the determinism
    // contract is "≥ 2,000 interleaved connections", not a sample of it.
    {
        const CONNS: usize = 2000;
        const WAVE: usize = 100;
        // Dispatch only every DISPATCH_EVERY waves, so decode-to-dispatch
        // latencies spread deterministically over 1..=DISPATCH_EVERY ticks.
        const DISPATCH_EVERY: usize = 4;
        v.push(ScenarioSpec {
            name: "serve/c10k",
            items: CONNS as u64,
            run: Box::new(move |c| {
                use tuna_core::campaign::{CellRecord, CellRow};
                use tuna_serve::engine::EngineConfig;
                use tuna_serve::http;
                use tuna_serve::sim::SimServer;

                let cfg = EngineConfig {
                    record_latency: true,
                    ..EngineConfig::sim_default()
                };
                let mut sim = SimServer::with_engine_config(None, 1, cfg).expect("in-memory sim");
                let conns: Vec<usize> = (0..CONNS).map(|_| sim.connect()).collect();

                // Round 1: every connection submits a one-cell study;
                // round 2: every connection re-uses its socket for a
                // status poll. Both rounds arrive in staggered waves.
                for round in 0..2 {
                    for (wave, chunk) in conns.chunks(WAVE).enumerate() {
                        for (i, &conn) in chunk.iter().enumerate() {
                            let id = wave * WAVE + i;
                            let raw = if round == 0 {
                                let body = format!(
                                    "{{\"name\": \"c10k-{id}\", \"seed\": {id}, \
                                     \"runs\": 1, \"rounds\": 2, \"workloads\": [\"tpcc\"], \
                                     \"arms\": [{{\"label\": \"Default\", \
                                     \"method\": \"default\"}}]}}"
                                );
                                http::request_bytes_with("POST", "/v1/studies", &body, true)
                            } else {
                                http::request_bytes_with(
                                    "GET",
                                    &format!("/v1/studies/c10k-{id}"),
                                    "",
                                    true,
                                )
                            };
                            sim.feed(conn, &raw);
                        }
                        sim.tick();
                        if wave % DISPATCH_EVERY == DISPATCH_EVERY - 1 {
                            sim.dispatch();
                        }
                    }
                    sim.dispatch();
                }

                // Statuses in connection order: 201 then 200 per conn.
                for &conn in &conns {
                    let raw = sim.recv(conn);
                    let replies = http::split_responses(&raw).expect("well-formed replies");
                    assert_eq!(replies.len(), 2, "submit + status per connection");
                    for (status, _) in &replies {
                        c.push_u64(u64::from(*status));
                    }
                    assert!(!sim.wants_close(conn), "keep-alive survives both rounds");
                }

                // Decode-to-dispatch p99, gated and pinned.
                let mut latencies = sim.engine_mut().take_latencies();
                assert_eq!(latencies.len(), CONNS * 2);
                latencies.sort_unstable();
                let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
                assert!(p99 <= 2 * DISPATCH_EVERY as u64, "p99 {p99} ticks");
                c.push_u64(p99);

                // Drain the fair-share scheduler synthetically and pin
                // the assignment order (one cell per study).
                let mut drained = 0u64;
                while let Some(a) = sim.manager_mut().next_assignment() {
                    let mut h = Checksum::new();
                    h.push_str(&a.study);
                    h.push_u64(a.cell as u64);
                    c.push_str(&h.hex());
                    let rows = vec![CellRow {
                        label: "synthetic".to_string(),
                        seed: a.cell as u64,
                        samples: 1,
                        best: Some(a.cell as f64),
                        mean: Some(1.0),
                        std: Some(0.0),
                        min: Some(1.0),
                        max: Some(1.0),
                        crashes: Some(0),
                    }];
                    let checksum = CellRecord::compute_checksum(&rows);
                    sim.manager_mut()
                        .complete(
                            &a.tenant,
                            &a.study,
                            CellRecord {
                                cell: a.cell,
                                rows,
                                checksum,
                            },
                        )
                        .expect("synthetic completion");
                    drained += 1;
                }
                assert_eq!(drained, CONNS as u64, "one cell per connection's study");
            }),
        });
    }

    // -- serve multi-tenant scheduling --------------------------------------
    // The tenant layer end to end on the sim clock: authenticated wire
    // submissions for a weight-3 and a weight-1 tenant (with an
    // interactive probe in the mix), auth and admission refusals, then a
    // synthetic drain of the weighted fair-share scheduler. The checksum
    // pins every response status, the full (tenant, study, cell) grant
    // order — the weighted policy is part of the determinism contract —
    // and the persisted-format usage meters.
    {
        const STUDIES: usize = 40; // per tenant
        v.push(ScenarioSpec {
            name: "serve/multitenant",
            // Submits per tenant plus every scheduled cell (each study
            // declares 1 workload x 1 arm x (1 + r%3) runs).
            items: {
                let cells: usize = (0..STUDIES).map(|r| 1 + r % 3).sum();
                (2 * (STUDIES + cells)) as u64
            },
            run: Box::new(move |c| {
                use tuna_core::campaign::{CellRecord, CellRow};
                use tuna_serve::sim::SimServer;
                use tuna_serve::tenant::TenantRegistry;

                let registry = TenantRegistry::parse(
                    "{\"tenants\": [\
                     {\"name\": \"alice\", \"token\": \"alice-secret\", \"weight\": 3, \
                      \"max_studies\": 40}, \
                     {\"name\": \"bob\", \"token\": \"bob-secret\", \"max_cells\": 200}]}",
                )
                .expect("valid tenant table");
                let mut sim = SimServer::with_tenants(None, 1, registry).expect("in-memory sim");

                // Auth refusals come back structured: 401 without a
                // token, 403 with an unknown one.
                let (status, _) = sim.request("GET", "/v1/studies", "");
                c.push_u64(u64::from(status));
                let (status, _) = sim.request_as("GET", "/v1/studies", "", Some("wrong"));
                c.push_u64(u64::from(status));

                for r in 0..STUDIES {
                    for token in ["alice-secret", "bob-secret"] {
                        // Every 8th study is an interactive probe, so the
                        // lane-preemption order is pinned too.
                        let lane = if r % 8 == 7 {
                            ", \"lane\": \"interactive\""
                        } else {
                            ""
                        };
                        let body = format!(
                            "{{\"name\": \"mt-{r}\", \"seed\": {r}, \"runs\": {}, \
                             \"rounds\": 2{lane}, \"workloads\": [\"tpcc\"], \
                             \"arms\": [{{\"label\": \"Default\", \"method\": \"default\"}}]}}",
                            1 + r % 3
                        );
                        let (status, _) = sim.request_as("POST", "/v1/studies", &body, Some(token));
                        c.push_u64(u64::from(status));
                    }
                }

                // Admission refusals: alice is at her concurrent-study
                // budget (429 study-budget); a 150-cell submission blows
                // bob's outstanding-cell budget (429 cell-budget).
                let over = "{\"name\": \"mt-over\", \"runs\": 1, \"rounds\": 2, \
                            \"workloads\": [\"tpcc\"], \
                            \"arms\": [{\"label\": \"Default\", \"method\": \"default\"}]}";
                let (status, _) = sim.request_as("POST", "/v1/studies", over, Some("alice-secret"));
                c.push_u64(u64::from(status));
                let big = over.replace("\"runs\": 1", "\"runs\": 150");
                let (status, _) = sim.request_as("POST", "/v1/studies", &big, Some("bob-secret"));
                c.push_u64(u64::from(status));

                // Drain the weighted scheduler synthetically, pinning the
                // full (tenant, study, cell) grant order.
                while let Some(a) = sim.manager_mut().next_assignment() {
                    let mut h = Checksum::new();
                    h.push_str(&a.tenant);
                    h.push_str(&a.study);
                    h.push_u64(a.cell as u64);
                    c.push_str(&h.hex());
                    let rows = vec![CellRow {
                        label: "synthetic".to_string(),
                        seed: a.cell as u64,
                        samples: 1,
                        best: Some(a.cell as f64),
                        mean: Some(1.0),
                        std: Some(0.0),
                        min: Some(1.0),
                        max: Some(1.0),
                        crashes: Some(0),
                    }];
                    let checksum = CellRecord::compute_checksum(&rows);
                    sim.manager_mut()
                        .complete_timed(
                            &a.tenant,
                            &a.study,
                            CellRecord {
                                cell: a.cell,
                                rows,
                                checksum,
                            },
                            1000,
                        )
                        .expect("synthetic completion");
                }

                // Usage meters (the persisted accounting) are part of the
                // pinned surface, via the tenants document.
                let (status, tenants) =
                    sim.request_as("GET", "/v1/tenants", "", Some("bob-secret"));
                assert_eq!(status, 200, "{tenants}");
                c.push_str(&tenants);
            }),
        });
    }

    // -- serial vs parallel executor ---------------------------------------
    // Runs the same tuning rounds in both modes, asserts bit-identical
    // results (the executor's core contract), and reports the combined
    // wall time.
    {
        let rounds = if quick { 6 } else { 30 };
        v.push(ScenarioSpec {
            name: "executor/serial_vs_parallel4",
            items: (rounds * 2) as u64,
            run: Box::new(move |c| {
                let workload = tuna_workloads::tpcc();
                let serial = run_pipeline(&workload, rounds, 0xE4EC, ExecutionMode::Serial);
                let parallel = run_pipeline(
                    &workload,
                    rounds,
                    0xE4EC,
                    ExecutionMode::Parallel { workers: 4 },
                );
                assert_eq!(
                    serial, parallel,
                    "serial and 4-worker parallel execution diverged"
                );
                checksum_result(c, &serial);
            }),
        });
    }

    // -- tournament arena ---------------------------------------------------
    // Head-to-head brackets through the arena runner: both sides of every
    // match see one machine snapshot and one noise draw. The checksum pins
    // the bracket outcomes (champion ids per generation on a synthetic
    // objective) and the full arena iteration trace on the simulated SuT,
    // so any drift in bracket pairing, seed-salt derivation, or match
    // noise-sharing fails the gate.
    {
        let samples = if quick { 64 } else { 192 };
        v.push(ScenarioSpec {
            name: "optimizer/arena",
            items: samples as u64,
            run: Box::new(move |c| {
                use tuna_core::baselines::run_arena;
                use tuna_optimizer::solver::{SolverId, SolverParams};
                use tuna_optimizer::tournament::{TournamentParams, TournamentSolver};
                use tuna_optimizer::Solver as _;
                use tuna_sut::postgres::Postgres;
                use tuna_sut::SystemUnderTest;

                // Pure brackets: drive a tournament on a deterministic
                // objective and pin every generation's champion.
                let pg = Postgres::new();
                let mut t = TournamentSolver::new(
                    pg.space().clone(),
                    Objective::Minimize,
                    TournamentParams::default(),
                );
                let mut rng = Rng::seed_from(0xA7E0);
                for _ in 0..samples {
                    let s = t.ask(&mut rng);
                    let cost = s.config.id().0 as f64 / u64::MAX as f64;
                    t.tell(&s.config, cost, s.budget);
                    if let Some(champ) = t.champion() {
                        c.push_u64(champ.id().0);
                    }
                }
                c.push_u64(t.generations_played());

                // Arena matches on the simulated SuT: shared-noise
                // head-to-head runs through the registry-built solver.
                let workload = tuna_workloads::tpcc();
                let id = SolverId::tournament();
                let solver = id.build(
                    pg.space().clone(),
                    Objective::Maximize,
                    &SolverParams::default(),
                );
                let cluster = Cluster::new(1, VmSku::d8s_v5(), Region::westus2(), 0xA7E1);
                let mut rng = Rng::seed_from(0xA7E2);
                let result = run_arena(
                    &pg,
                    &workload,
                    solver,
                    cluster,
                    samples,
                    id.capabilities().match_size,
                    0.0,
                    &mut rng,
                );
                checksum_result(c, &result);
            }),
        });
    }

    // -- observability overhead ---------------------------------------------
    // The observer-effect gate: the same deterministic serve workload
    // (keep-alive submits + status polls through the sim engine) runs
    // with instrumentation off (control) and on, interleaved best-of-3.
    // The run *panics* if any response byte differs between the two, or
    // if the instrumented pass costs more than 3% over the control
    // (with a small absolute floor so a micro-fast control cannot fail
    // the gate on scheduler jitter alone). The checksum pins the
    // response bytes, so telemetry drift that touches the wire also
    // fails as checksum drift.
    {
        const CONNS: usize = 500;
        v.push(ScenarioSpec {
            name: "obs/overhead",
            items: CONNS as u64,
            run: Box::new(move |c| {
                use tuna_serve::engine::EngineConfig;
                use tuna_serve::http;
                use tuna_serve::sim::SimServer;

                let pass = |instrument: bool| -> (Vec<u8>, u64) {
                    let cfg = EngineConfig {
                        instrument,
                        ..EngineConfig::sim_default()
                    };
                    let start = Instant::now();
                    let mut sim =
                        SimServer::with_engine_config(None, 1, cfg).expect("in-memory sim");
                    let conns: Vec<usize> = (0..CONNS).map(|_| sim.connect()).collect();
                    for round in 0..2 {
                        for (id, &conn) in conns.iter().enumerate() {
                            let raw = if round == 0 {
                                let body = format!(
                                    "{{\"name\": \"obs-{id}\", \"seed\": {id}, \
                                     \"runs\": 1, \"rounds\": 2, \"workloads\": [\"tpcc\"], \
                                     \"arms\": [{{\"label\": \"Default\", \
                                     \"method\": \"default\"}}]}}"
                                );
                                http::request_bytes_with("POST", "/v1/studies", &body, true)
                            } else {
                                http::request_bytes_with(
                                    "GET",
                                    &format!("/v1/studies/obs-{id}"),
                                    "",
                                    true,
                                )
                            };
                            sim.feed(conn, &raw);
                        }
                        sim.tick();
                        sim.dispatch();
                    }
                    let mut out = Vec::new();
                    for &conn in &conns {
                        out.extend(sim.recv(conn));
                    }
                    let wall = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    (out, wall)
                };

                // Interleave control/instrumented so both see the same
                // cache and frequency state; keep the best of each.
                let mut wire: Option<Vec<u8>> = None;
                let (mut control_ns, mut instrumented_ns) = (u64::MAX, u64::MAX);
                for _ in 0..3 {
                    let (control_out, t_off) = pass(false);
                    let (instrumented_out, t_on) = pass(true);
                    assert_eq!(
                        control_out, instrumented_out,
                        "instrumentation changed a response byte"
                    );
                    match &wire {
                        Some(w) => assert_eq!(w, &control_out, "pass-to-pass drift"),
                        None => wire = Some(control_out),
                    }
                    control_ns = control_ns.min(t_off);
                    instrumented_ns = instrumented_ns.min(t_on);
                }
                let limit = (control_ns + control_ns * 3 / 100).max(control_ns + 2_000_000);
                assert!(
                    instrumented_ns <= limit,
                    "instrumentation overhead above 3%: {instrumented_ns}ns vs {control_ns}ns control"
                );
                c.push_bytes(&wire.expect("three passes ran"));
            }),
        });
    }

    v
}

// ---------------------------------------------------------------------------
// The regression gate
// ---------------------------------------------------------------------------

/// Per-scenario gate verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within tolerance, checksum matches.
    Ok,
    /// Normalized throughput fell below `1 - tolerance`.
    Slow,
    /// Checksums differ — algorithm change or lost determinism.
    ChecksumDrift,
    /// Scenario exists in the baseline but not in the current run.
    Missing,
    /// Scenario exists only in the current run (baseline needs
    /// regenerating); informational, does not fail the gate.
    New,
    /// The calibration scenario itself; informational.
    Calibration,
}

impl GateStatus {
    /// Whether this verdict fails the gate.
    pub fn fails(&self) -> bool {
        matches!(
            self,
            GateStatus::Slow | GateStatus::ChecksumDrift | GateStatus::Missing
        )
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            GateStatus::Ok => "ok",
            GateStatus::Slow => "SLOW",
            GateStatus::ChecksumDrift => "CHECKSUM DRIFT",
            GateStatus::Missing => "MISSING",
            GateStatus::New => "new",
            GateStatus::Calibration => "calibration",
        }
    }
}

/// One row of the gate's delta table.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Scenario name.
    pub scenario: String,
    /// Baseline raw throughput (items/s), if present.
    pub baseline_throughput: Option<f64>,
    /// Current raw throughput (items/s), if present.
    pub current_throughput: Option<f64>,
    /// Calibration-normalized throughput ratio (current / baseline);
    /// `> 1` is faster, `< 1` slower.
    pub normalized_ratio: Option<f64>,
    /// Verdict.
    pub status: GateStatus,
}

/// Gate outcome: the per-scenario delta table and the overall verdict.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Per-scenario rows, baseline order then new scenarios.
    pub rows: Vec<DeltaRow>,
    /// Slowdown tolerance the comparison used.
    pub tolerance: f64,
    /// Whether the gate passes.
    pub pass: bool,
}

/// Compares a current run against the committed baseline.
///
/// Fails on any checksum drift, any missing scenario, or any scenario
/// whose calibration-normalized throughput dropped more than
/// `tolerance`.
///
/// # Errors
///
/// Returns an error when either document lacks the calibration
/// scenario, the documents mix quick and full mode (their iteration
/// counts and checksums are incompatible), or a document declares an
/// unknown format version.
pub fn compare(base: &BenchDoc, cur: &BenchDoc, tolerance: f64) -> Result<GateOutcome, String> {
    if base.version != BENCH_VERSION || cur.version != BENCH_VERSION {
        return Err(format!(
            "version mismatch: baseline v{}, current v{}, gate speaks v{BENCH_VERSION}",
            base.version, cur.version
        ));
    }
    if base.quick != cur.quick {
        let mode = |q: bool| if q { "quick" } else { "full" };
        return Err(format!(
            "mode mismatch: baseline is a {} run, current is a {} run — quick and \
             full suites have different checksums and must not be compared",
            mode(base.quick),
            mode(cur.quick)
        ));
    }
    let base_calib = base
        .calibration_throughput()
        .ok_or("baseline lacks the calibration scenario")?;
    let cur_calib = cur
        .calibration_throughput()
        .ok_or("current run lacks the calibration scenario")?;

    let mut rows = Vec::new();
    let mut pass = true;
    for b in &base.scenarios {
        let row = if b.scenario == CALIBRATION {
            // The calibration scenario is exempt from the slowdown
            // check (it *defines* the normalizer) but not from the
            // checksum check: a drifted calibration workload would
            // silently skew every normalized ratio.
            let cur_calib_scenario = cur.get(CALIBRATION);
            let status = match cur_calib_scenario {
                Some(c) if c.checksum != b.checksum => GateStatus::ChecksumDrift,
                _ => GateStatus::Calibration,
            };
            DeltaRow {
                scenario: b.scenario.clone(),
                baseline_throughput: Some(b.throughput),
                current_throughput: cur_calib_scenario.map(|s| s.throughput),
                normalized_ratio: None,
                status,
            }
        } else {
            match cur.get(&b.scenario) {
                None => DeltaRow {
                    scenario: b.scenario.clone(),
                    baseline_throughput: Some(b.throughput),
                    current_throughput: None,
                    normalized_ratio: None,
                    status: GateStatus::Missing,
                },
                Some(c) => {
                    let ratio = (c.throughput / cur_calib) / (b.throughput / base_calib);
                    let status = if c.checksum != b.checksum {
                        GateStatus::ChecksumDrift
                    } else if ratio < 1.0 - tolerance {
                        GateStatus::Slow
                    } else {
                        GateStatus::Ok
                    };
                    DeltaRow {
                        scenario: b.scenario.clone(),
                        baseline_throughput: Some(b.throughput),
                        current_throughput: Some(c.throughput),
                        normalized_ratio: Some(ratio),
                        status,
                    }
                }
            }
        };
        pass &= !row.status.fails();
        rows.push(row);
    }
    for c in &cur.scenarios {
        if base.get(&c.scenario).is_none() {
            rows.push(DeltaRow {
                scenario: c.scenario.clone(),
                baseline_throughput: None,
                current_throughput: Some(c.throughput),
                normalized_ratio: None,
                status: GateStatus::New,
            });
        }
    }
    Ok(GateOutcome {
        rows,
        tolerance,
        pass,
    })
}

fn fmt_throughput(t: Option<f64>) -> String {
    match t {
        None => "—".to_string(),
        Some(t) if t >= 1e6 => format!("{:.2}M/s", t / 1e6),
        Some(t) if t >= 1e3 => format!("{:.1}k/s", t / 1e3),
        Some(t) => format!("{t:.1}/s"),
    }
}

/// Renders the gate outcome as a GitHub-flavored markdown table (the
/// CI job appends this to the step summary).
pub fn markdown_table(outcome: &GateOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### Perf gate: {} (tolerance {:.0}% on calibration-normalized throughput)\n\n",
        if outcome.pass { "PASS" } else { "FAIL" },
        outcome.tolerance * 100.0
    ));
    out.push_str("| scenario | baseline | current | normalized Δ | status |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for row in &outcome.rows {
        let delta = match row.normalized_ratio {
            None => "—".to_string(),
            Some(r) => format!("{:+.1}%", (r - 1.0) * 100.0),
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            row.scenario,
            fmt_throughput(row.baseline_throughput),
            fmt_throughput(row.current_throughput),
            delta,
            row.status.label()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, f64, &str)]) -> BenchDoc {
        BenchDoc {
            version: BENCH_VERSION,
            quick: false,
            scenarios: entries
                .iter()
                .map(|(name, thr, sum)| ScenarioResult {
                    scenario: name.to_string(),
                    wall_ns: 1_000_000,
                    items: 1_000,
                    throughput: *thr,
                    checksum: sum.to_string(),
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let d = doc(&[
            (CALIBRATION, 1234.5, "aa"),
            ("stats/x", 99.25, "bb"),
            ("pipeline/y", 1.5e9, "cc"),
        ]);
        let parsed = BenchDoc::parse(&d.to_json()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchDoc::parse("not json").is_err());
        assert!(BenchDoc::parse("{}").is_err());
        assert!(BenchDoc::parse("{\"version\": 1}").is_err());
        // A document cut off mid-string (multibyte char at the very
        // end) must error, not panic.
        assert!(BenchDoc::parse("{\"version\": 1, \"x\": \"\u{00c3}").is_err());
        assert!(json::parse("\"\u{00e9}\"").is_ok());
    }

    #[test]
    fn identical_docs_pass() {
        let d = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 50.0, "bb")]);
        let out = compare(&d, &d, DEFAULT_TOLERANCE).unwrap();
        assert!(out.pass);
        assert!(out.rows.iter().all(|r| !r.status.fails()), "{:?}", out.rows);
    }

    #[test]
    fn injected_25pct_slowdown_fails_gate() {
        let base = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 100.0, "bb")]);
        let cur = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 75.0, "bb")]);
        let out = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!out.pass);
        assert_eq!(out.rows[1].status, GateStatus::Slow);
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 100.0, "bb")]);
        let cur = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 85.0, "bb")]);
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).unwrap().pass);
    }

    #[test]
    fn calibration_normalization_cancels_machine_speed() {
        // Same code on a machine 3x slower across the board: every raw
        // throughput drops 3x, including calibration — gate passes.
        let base = doc(&[(CALIBRATION, 300.0, "aa"), ("s/a", 90.0, "bb")]);
        let cur = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 30.0, "bb")]);
        let out = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(out.pass);
        let r = out.rows[1].normalized_ratio.unwrap();
        assert!((r - 1.0).abs() < 1e-12, "ratio {r}");
    }

    #[test]
    fn checksum_drift_fails_even_when_faster() {
        let base = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 50.0, "bb")]);
        let cur = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 500.0, "DRIFTED")]);
        let out = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!out.pass);
        assert_eq!(out.rows[1].status, GateStatus::ChecksumDrift);
    }

    #[test]
    fn missing_scenario_fails_and_new_scenario_informs() {
        let base = doc(&[(CALIBRATION, 100.0, "aa"), ("s/gone", 50.0, "bb")]);
        let cur = doc(&[(CALIBRATION, 100.0, "aa"), ("s/fresh", 50.0, "cc")]);
        let out = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!out.pass);
        assert_eq!(out.rows[1].status, GateStatus::Missing);
        let fresh = out.rows.iter().find(|r| r.scenario == "s/fresh").unwrap();
        assert_eq!(fresh.status, GateStatus::New);
        assert!(!fresh.status.fails());
    }

    #[test]
    fn calibration_checksum_drift_fails_gate() {
        // A changed calibration workload would silently skew every
        // normalized ratio, so its checksum is still gated even though
        // its throughput is not.
        let base = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 50.0, "bb")]);
        let cur = doc(&[(CALIBRATION, 100.0, "DRIFTED"), ("s/a", 50.0, "bb")]);
        let out = compare(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!out.pass);
        assert_eq!(out.rows[0].status, GateStatus::ChecksumDrift);
    }

    #[test]
    fn quick_vs_full_comparison_is_an_error() {
        let base = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 50.0, "bb")]);
        let mut quick = base.clone();
        quick.quick = true;
        let err = compare(&base, &quick, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("mode mismatch"), "{err}");
        assert!(compare(&quick, &base, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn quick_flag_roundtrips_through_json() {
        let mut d = doc(&[(CALIBRATION, 100.0, "aa")]);
        d.quick = true;
        assert_eq!(BenchDoc::parse(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn missing_calibration_is_an_error() {
        let base = doc(&[("s/a", 50.0, "bb")]);
        let cur = doc(&[(CALIBRATION, 100.0, "aa"), ("s/a", 50.0, "bb")]);
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).is_err());
        assert!(compare(&cur, &base, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn handicap_injection_fails_gate_end_to_end() {
        // A cheap two-scenario "suite": the calibration spec plus one
        // stats kernel, measured honestly for the baseline and with a
        // 1.5x handicap for the current run.
        let specs = || {
            suite(true)
                .into_iter()
                .filter(|s| s.name == CALIBRATION || s.name == "stats/select_median_mad_10k")
                .collect::<Vec<_>>()
        };
        let run = |handicap: f64| {
            let mut scenarios = Vec::new();
            for spec in specs() {
                let mut r = run_scenario(&spec, 1);
                if spec.name != CALIBRATION && handicap > 1.0 {
                    r.wall_ns = ((r.wall_ns as f64) * handicap) as u64;
                    r.throughput /= handicap;
                }
                scenarios.push(r);
            }
            BenchDoc {
                version: BENCH_VERSION,
                quick: true,
                scenarios,
            }
        };
        let base = run(1.0);
        // Same machine moments apart: an honest re-run must not drift
        // checksums (it may legitimately jitter in speed, so only the
        // checksum verdicts are asserted).
        let honest = compare(&base, &run(1.0), DEFAULT_TOLERANCE).unwrap();
        assert!(honest
            .rows
            .iter()
            .all(|r| r.status != GateStatus::ChecksumDrift));
        // A 2.5x handicap is far outside any timing jitter: gate fails.
        let out = compare(&base, &run(2.5), DEFAULT_TOLERANCE).unwrap();
        assert!(!out.pass);
        assert!(out.rows.iter().any(|r| r.status == GateStatus::Slow));
        let table = markdown_table(&out);
        assert!(table.contains("FAIL") && table.contains("SLOW"));
    }

    #[test]
    fn quick_suite_runs_and_is_deterministic() {
        // Stats + core scenarios only (the cheap half) — determinism of
        // the heavier pipeline scenarios is covered by run_scenario's
        // internal checksum assertion when the full suite runs.
        for spec in suite(true)
            .into_iter()
            .filter(|s| s.name.starts_with("stats/") || s.name.starts_with("core/"))
        {
            let a = run_scenario(&spec, 1);
            let b = run_scenario(&spec, 1);
            assert_eq!(a.checksum, b.checksum, "{} drifted", spec.name);
            assert!(a.throughput > 0.0);
            assert!(a.items > 0);
        }
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = Checksum::new();
        a.push_f64(1.0);
        a.push_f64(2.0);
        let mut b = Checksum::new();
        b.push_f64(2.0);
        b.push_f64(1.0);
        assert_ne!(a.hex(), b.hex());
        assert_eq!(a.hex().len(), 16);
    }
}
