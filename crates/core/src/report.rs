//! Plain-text reporting for experiment results.
//!
//! The bench binaries print the same rows/series the paper's figures plot;
//! these helpers keep their output consistent.

use crate::deploy::DeployStats;
use crate::experiment::RunSummary;
use tuna_stats::summary;

/// Renders a fixed-width table. The first row is the header.
///
/// # Panics
///
/// Panics if rows have inconsistent widths.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged table rows");
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (w, cell) in widths.iter().zip(row) {
            out.push_str(&format!("{cell:<width$}  ", width = w));
        }
        out.pop();
        out.pop();
        out.push('\n');
        if i == 0 {
            for (j, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if j + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Formats a float with sensible precision for its magnitude.
pub fn fmt_value(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1_000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.1 {
        format!("{x:.3}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a ratio as a percentage delta ("+27.3%" / "-12.0%").
pub fn fmt_pct_delta(ratio: f64) -> String {
    let pct = (ratio - 1.0) * 100.0;
    format!("{pct:+.1}%")
}

/// Summarizes deployment stats of many runs of one method: per-run means
/// and per-run standard deviations averaged, as the paper reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodSummary {
    /// Average of per-run deployment means.
    pub mean_of_means: f64,
    /// Average of per-run deployment standard deviations.
    pub mean_std: f64,
    /// Worst single deployment value seen across runs.
    pub worst: f64,
    /// Best single deployment value seen across runs.
    pub best: f64,
    /// Total crashed deployment runs.
    pub crashes: usize,
    /// Number of runs.
    pub n_runs: usize,
}

/// Aggregates run summaries of one method.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn summarize_method(runs: &[RunSummary]) -> MethodSummary {
    assert!(!runs.is_empty(), "no runs to summarize");
    let means: Vec<f64> = runs.iter().map(|r| r.deployment.mean).collect();
    let stds: Vec<f64> = runs.iter().map(|r| r.deployment.std).collect();
    let all: Vec<f64> = runs
        .iter()
        .flat_map(|r| r.deployment.values.iter().copied())
        .collect();
    MethodSummary {
        mean_of_means: summary::mean(&means),
        mean_std: summary::mean(&stds),
        worst: summary::min(&all).expect("non-empty"),
        best: summary::max(&all).expect("non-empty"),
        crashes: runs.iter().map(|r| r.deployment.crashes).sum(),
        n_runs: runs.len(),
    }
}

/// Renders the standard method-comparison table used by the Figure 11-15
/// regenerators.
pub fn method_comparison_table(unit: &str, entries: &[(&str, MethodSummary)]) -> String {
    let mut rows = vec![vec![
        "method".to_string(),
        format!("mean ({unit})"),
        format!("std ({unit})"),
        format!("min ({unit})"),
        format!("max ({unit})"),
        "crashes".to_string(),
        "runs".to_string(),
    ]];
    for (name, s) in entries {
        rows.push(vec![
            name.to_string(),
            fmt_value(s.mean_of_means),
            fmt_value(s.mean_std),
            fmt_value(s.worst),
            fmt_value(s.best),
            s.crashes.to_string(),
            s.n_runs.to_string(),
        ]);
    }
    render_table(&rows)
}

/// Renders one deployment's boxplot-style summary line.
pub fn deploy_line(name: &str, stats: &DeployStats) -> String {
    format!(
        "{name}: mean={} std={} min={} q1={} med={} q3={} max={} crashes={}",
        fmt_value(stats.mean),
        fmt_value(stats.std),
        fmt_value(stats.five.min),
        fmt_value(stats.five.q1),
        fmt_value(stats.five.median),
        fmt_value(stats.five.q3),
        fmt_value(stats.five.max),
        stats.crashes
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["a".to_string(), "long-header".to_string()],
            vec!["value".to_string(), "x".to_string()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render_table(&[vec!["a".to_string()], vec![]]);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(1925.3), "1925");
        assert_eq!(fmt_value(69.04), "69.0");
        assert_eq!(fmt_value(0.492), "0.492");
        assert_eq!(fmt_value(0.0492), "0.0492");
        assert_eq!(fmt_value(0.0), "0");
    }

    #[test]
    fn pct_delta_formatting() {
        assert_eq!(fmt_pct_delta(1.273), "+27.3%");
        assert_eq!(fmt_pct_delta(0.88), "-12.0%");
    }
}
