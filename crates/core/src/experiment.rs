//! End-to-end experiment orchestration (the §6 protocol).
//!
//! An [`Experiment`] fixes the workload, SKU, region and budgets; a
//! [`Method`] picks the sampling methodology. `run` tunes, then deploys
//! the best config on fresh VMs and reports the deployment distribution —
//! exactly how every figure in the paper's evaluation is produced.

use crate::baselines::{run_naive_distributed, run_traditional};
use crate::deploy::{default_worst_case_with, evaluate_deployment_with, DeployStats};
use crate::executor::ExecutionMode;
use crate::pipeline::{TunaConfig, TunaPipeline, TuningResult};
use tuna_cloudsim::{Cluster, Region, VmSku};
use tuna_optimizer::gp_opt::GpParams;
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::smac::SmacParams;
use tuna_optimizer::solver::SolverParams;
use tuna_optimizer::{Objective, Solver};
use tuna_space::Config;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_sut::nginx::Nginx;
use tuna_sut::postgres::Postgres;
use tuna_sut::redis::Redis;
use tuna_sut::SystemUnderTest;
use tuna_workloads::{TargetSystem, Workload};

/// Solvers are named declaratively: arms carry a [`SolverId`] resolved
/// against the string-keyed registry in `tuna_optimizer::solver` instead
/// of a hand-numbered enum of concrete types.
pub use tuna_optimizer::solver::SolverId;

/// Sampling methodology under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Full TUNA.
    Tuna,
    /// TUNA without the unstable-config detector (Figure 20).
    TunaNoOutlier,
    /// TUNA without the noise-adjuster model (Figure 19).
    TunaNoAdjuster,
    /// Traditional single-node sequential sampling.
    Traditional,
    /// Traditional with an explicit (larger) sample budget (§6.5.1).
    TraditionalExtended {
        /// Total samples granted.
        samples: usize,
    },
    /// Every config on every node, min aggregation (§6.5.2).
    NaiveDistributed {
        /// Total samples granted.
        samples: usize,
    },
    /// No tuning: deploy the vendor default.
    DefaultConfig,
}

impl Method {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Tuna => "TUNA",
            Method::TunaNoOutlier => "TUNA w/o outlier detector",
            Method::TunaNoAdjuster => "TUNA w/o noise adjuster",
            Method::Traditional => "Traditional",
            Method::TraditionalExtended { .. } => "Traditional (equal cost)",
            Method::NaiveDistributed { .. } => "Naive distributed",
            Method::DefaultConfig => "Default",
        }
    }
}

/// A fully specified experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The workload (determines the SuT).
    pub workload: Workload,
    /// Worker SKU.
    pub sku: VmSku,
    /// Region.
    pub region: Region,
    /// Tuning rounds on the equal-time basis (one suggestion per round;
    /// the paper's 8 hours of 5-minute evaluations ≈ 96).
    pub rounds: usize,
    /// Tuning-cluster size.
    pub cluster_size: usize,
    /// Deployment VMs.
    pub deploy_vms: usize,
    /// Measurement epochs per deployment VM.
    pub deploy_repeats: usize,
    /// Solver registry name driving the search.
    pub optimizer: SolverId,
    /// SMAC hyperparameters.
    pub smac: SmacParams,
    /// GP hyperparameters.
    pub gp: GpParams,
    /// Trial execution mode (tuning batches, naive-distributed rounds and
    /// deployment evaluation). Results are bit-identical across modes —
    /// this knob only trades wall-clock for threads.
    pub exec: ExecutionMode,
}

/// One tuning-plus-deployment outcome.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Methodology name.
    pub method: &'static str,
    /// Best config found (or the default).
    pub best_config: Config,
    /// Tuning trace (absent for [`Method::DefaultConfig`]).
    pub tuning: Option<TuningResult>,
    /// Deployment distribution on fresh VMs.
    pub deployment: DeployStats,
}

impl Experiment {
    /// Paper-faithful experiment for a workload: D8s_v5 in westus2,
    /// 96 rounds, 10-worker cluster, deploy on 10 fresh VMs.
    pub fn paper_default(workload: Workload) -> Self {
        Experiment {
            workload,
            sku: VmSku::d8s_v5(),
            region: Region::westus2(),
            rounds: 96,
            cluster_size: 10,
            deploy_vms: 10,
            deploy_repeats: 3,
            optimizer: SolverId::smac(),
            smac: SmacParams {
                n_init: 10,
                n_random_candidates: 100,
                ..SmacParams::default()
            },
            gp: GpParams::default(),
            exec: ExecutionMode::from_env(),
        }
    }

    /// A small, fast experiment for demos and tests.
    pub fn quick_demo() -> Self {
        Experiment {
            rounds: 25,
            deploy_vms: 5,
            deploy_repeats: 2,
            smac: SmacParams {
                n_init: 5,
                n_random_candidates: 30,
                n_neighbors: 4,
                ..SmacParams::default()
            },
            ..Self::paper_default(tuna_workloads::tpcc())
        }
    }

    /// Builds the SuT matching the workload's target system.
    pub fn make_sut(&self) -> Box<dyn SystemUnderTest> {
        match self.workload.target {
            TargetSystem::Postgres => Box::new(Postgres::new()),
            TargetSystem::Redis => Box::new(Redis::new()),
            TargetSystem::Nginx => Box::new(Nginx::new()),
        }
    }

    /// The optimization direction of the workload metric.
    pub fn objective(&self) -> Objective {
        if self.workload.metric.higher_is_better() {
            Objective::Maximize
        } else {
            Objective::Minimize
        }
    }

    /// The [`SolverParams`] this experiment hands to registry builders.
    pub fn solver_params(&self, multi_fidelity: bool) -> SolverParams {
        let ladder = if multi_fidelity {
            LadderParams::paper_default()
        } else {
            LadderParams::single()
        };
        SolverParams {
            ladder,
            smac: self.smac.clone(),
            gp: self.gp.clone(),
            ..SolverParams::default()
        }
    }

    fn make_optimizer(
        &self,
        space: &tuna_space::ConfigSpace,
        multi_fidelity: bool,
    ) -> Box<dyn Solver> {
        let params = self.solver_params(multi_fidelity);
        self.optimizer
            .build(space.clone(), self.objective(), &params)
    }

    /// Runs one tuning run + deployment for `method` with a given seed.
    pub fn run(&self, method: Method, seed: u64) -> RunSummary {
        let sut = self.make_sut();
        let base_cluster = Cluster::new(
            self.cluster_size,
            self.sku.clone(),
            self.region.clone(),
            hash_combine(seed, 0xE0_0001),
        );
        let mut rng = Rng::seed_from(hash_combine(seed, 0xE0_0002));
        let crash_penalty =
            default_worst_case_with(self.exec, sut.as_ref(), &self.workload, &base_cluster, &rng);

        let (best_config, tuning) = match method {
            Method::DefaultConfig => (sut.default_config(), None),
            Method::Tuna | Method::TunaNoOutlier | Method::TunaNoAdjuster => {
                let mut cfg = match method {
                    Method::TunaNoOutlier => TunaConfig::without_outlier(crash_penalty),
                    Method::TunaNoAdjuster => TunaConfig::without_adjuster(crash_penalty),
                    _ => TunaConfig::paper_default(crash_penalty),
                };
                cfg.cluster_size = self.cluster_size;
                cfg.mode = self.exec;
                let optimizer = self.make_optimizer(sut.space(), true);
                let mut pipeline = TunaPipeline::new(
                    cfg,
                    sut.as_ref(),
                    &self.workload,
                    optimizer,
                    base_cluster.clone(),
                );
                // Equal-time basis (§6): in each 5-minute slot the
                // scheduler keeps all workers busy, so TUNA consumes up to
                // cluster_size samples per slot while traditional takes
                // one. (§6.5's equal-cost comparisons call the pipeline
                // with an explicit sample budget instead.)
                pipeline.run_until_samples(self.rounds * self.cluster_size, &mut rng);
                let result = pipeline.finish();
                (result.best_config.clone(), Some(result))
            }
            Method::Traditional => {
                let optimizer = self.make_optimizer(sut.space(), false);
                let result = run_traditional(
                    sut.as_ref(),
                    &self.workload,
                    optimizer,
                    base_cluster.clone(),
                    self.rounds,
                    crash_penalty,
                    &mut rng,
                );
                (result.best_config.clone(), Some(result))
            }
            Method::TraditionalExtended { samples } => {
                let optimizer = self.make_optimizer(sut.space(), false);
                let result = run_traditional(
                    sut.as_ref(),
                    &self.workload,
                    optimizer,
                    base_cluster.clone(),
                    samples,
                    crash_penalty,
                    &mut rng,
                );
                (result.best_config.clone(), Some(result))
            }
            Method::NaiveDistributed { samples } => {
                let optimizer = self.make_optimizer(sut.space(), false);
                let result = run_naive_distributed(
                    self.exec,
                    sut.as_ref(),
                    &self.workload,
                    optimizer,
                    base_cluster.clone(),
                    samples,
                    crash_penalty,
                    &mut rng,
                );
                (result.best_config.clone(), Some(result))
            }
        };

        let deployment = evaluate_deployment_with(
            self.exec,
            sut.as_ref(),
            &self.workload,
            &best_config,
            &base_cluster,
            hash_combine(seed, 0xD3_0003),
            self.deploy_vms,
            self.deploy_repeats,
            crash_penalty,
            &rng,
        );

        RunSummary {
            method: method.name(),
            best_config,
            tuning,
            deployment,
        }
    }

    /// Runs `n_runs` independent tuning runs (different seeds) of
    /// `method`.
    pub fn run_many(&self, method: Method, n_runs: usize, base_seed: u64) -> Vec<RunSummary> {
        (0..n_runs)
            .map(|i| self.run(method, hash_combine(base_seed, i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_demo_tuna_beats_default_deployment() {
        let exp = Experiment::quick_demo();
        let tuna = exp.run(Method::Tuna, 1);
        let default = exp.run(Method::DefaultConfig, 1);
        assert!(
            tuna.deployment.mean > default.deployment.mean,
            "TUNA {} vs default {}",
            tuna.deployment.mean,
            default.deployment.mean
        );
        assert!(tuna.tuning.is_some());
        assert!(default.tuning.is_none());
    }

    #[test]
    fn methods_have_distinct_names() {
        let names = [
            Method::Tuna.name(),
            Method::TunaNoOutlier.name(),
            Method::TunaNoAdjuster.name(),
            Method::Traditional.name(),
            Method::TraditionalExtended { samples: 1 }.name(),
            Method::NaiveDistributed { samples: 1 }.name(),
            Method::DefaultConfig.name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn traditional_runs_and_deploys() {
        let exp = Experiment::quick_demo();
        let t = exp.run(Method::Traditional, 2);
        let tuning = t.tuning.unwrap();
        assert_eq!(tuning.total_samples, exp.rounds);
        assert!(t.deployment.mean > 0.0);
    }

    #[test]
    fn run_many_varies_seeds() {
        let exp = Experiment::quick_demo();
        let runs = exp.run_many(Method::DefaultConfig, 3, 7);
        assert_eq!(runs.len(), 3);
        assert_ne!(runs[0].deployment.values, runs[1].deployment.values);
    }

    #[test]
    fn objective_follows_metric() {
        let tpcc = Experiment::paper_default(tuna_workloads::tpcc());
        assert_eq!(tpcc.objective(), Objective::Maximize);
        let tpch = Experiment::paper_default(tuna_workloads::tpch());
        assert_eq!(tpch.objective(), Objective::Minimize);
    }
}
