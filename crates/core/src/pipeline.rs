//! The TUNA pipeline (Figures 7 and 10).
//!
//! One iteration:
//!
//! 1. the optimizer suggests `(config, budget)`;
//! 2. the [`crate::scheduler::TaskScheduler`] plans new runs
//!    on nodes the config has not visited (reusing lower-budget samples);
//! 3. the [`crate::executor`] engine runs the SuT on those workers —
//!    serially or one parallel lane per worker, bit-identically;
//! 4. the [`crate::outlier::OutlierDetector`] classifies
//!    the config from all its samples;
//! 5. stable samples pass through the
//!    [`crate::adjuster::NoiseAdjuster`];
//! 6. the [`crate::aggregate::AggregationPolicy`]
//!    collapses them to one value (min);
//! 7. unstable configs get their reported performance halved;
//! 8. the optimizer is told the result.
//!
//! Configs completing the maximum budget feed the noise-adjuster training
//! set (inference happens before training, so no leakage — §6.6).

use std::collections::BTreeMap;

use crate::adjuster::{AdjusterConfig, NoiseAdjuster};
use crate::aggregate::AggregationPolicy;
use crate::executor::{self, ExecStats, ExecutionMode, RunRequest};
use crate::outlier::OutlierDetector;
use crate::sample::{Sample, SampleScratch};
use crate::scheduler::TaskScheduler;
use tuna_cloudsim::Cluster;
use tuna_optimizer::multifidelity::LadderParams;
use tuna_optimizer::{Objective, Optimizer};
use tuna_space::{Config, ConfigId};
use tuna_stats::rng::{hash_combine, Rng};
use tuna_sut::SystemUnderTest;
use tuna_workloads::Workload;

/// TUNA configuration.
#[derive(Debug, Clone)]
pub struct TunaConfig {
    /// Worker-cluster size (paper: 10, chosen for 95% detection
    /// confidence, Figure 9).
    pub cluster_size: usize,
    /// Multi-fidelity budget ladder.
    pub ladder: LadderParams,
    /// Whether the unstable-config detector is active.
    pub outlier_enabled: bool,
    /// Detector threshold.
    pub outlier_threshold: f64,
    /// Whether the noise-adjuster model is active.
    pub adjuster_enabled: bool,
    /// Aggregation policy.
    pub aggregation: AggregationPolicy,
    /// Value substituted for crashed runs (orientation-appropriate; e.g.
    /// the worst default-config p95 per §6.4).
    pub crash_penalty: f64,
    /// How each round's scheduled trials execute. Results are
    /// bit-identical across modes and worker counts (see
    /// [`crate::executor`]); parallel mode only changes wall-clock.
    pub mode: ExecutionMode,
}

impl TunaConfig {
    /// Paper-faithful defaults. The execution mode comes from the
    /// `TUNA_WORKERS` environment variable (serial when unset) — results
    /// do not depend on it.
    pub fn paper_default(crash_penalty: f64) -> Self {
        TunaConfig {
            cluster_size: 10,
            ladder: LadderParams::paper_default(),
            outlier_enabled: true,
            outlier_threshold: 0.30,
            adjuster_enabled: true,
            aggregation: AggregationPolicy::WorstCase,
            crash_penalty,
            mode: ExecutionMode::from_env(),
        }
    }

    /// Ablation: outlier detector removed (Figure 20).
    pub fn without_outlier(crash_penalty: f64) -> Self {
        TunaConfig {
            outlier_enabled: false,
            ..Self::paper_default(crash_penalty)
        }
    }

    /// Ablation: noise adjuster removed (Figure 19).
    pub fn without_adjuster(crash_penalty: f64) -> Self {
        TunaConfig {
            adjuster_enabled: false,
            ..Self::paper_default(crash_penalty)
        }
    }
}

/// Model accuracy bookkeeping for Figure 19b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelErrorRecord {
    /// Model generation at measurement time (0 = untrained).
    pub generation: usize,
    /// Mean relative error of the raw samples vs the config's
    /// ground-truth mean.
    pub raw_rel_err: f64,
    /// Mean relative error of the adjusted samples vs the same truth.
    pub adjusted_rel_err: f64,
}

/// Per-iteration trace record.
///
/// Contains no timing data, so two traces compare bit-identical across
/// execution modes; wall-clock accounting lives in
/// [`TunaPipeline::exec_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration index.
    pub round: usize,
    /// Config evaluated.
    pub config_id: ConfigId,
    /// Budget of the suggestion.
    pub budget: usize,
    /// Newly scheduled runs this iteration.
    pub new_samples: usize,
    /// Value reported to the optimizer.
    pub reported: f64,
    /// Whether the config was classified unstable.
    pub unstable: bool,
    /// Best raw metric value known to the optimizer after this round.
    pub best_so_far: Option<f64>,
    /// Total samples consumed so far.
    pub cumulative_samples: usize,
    /// Model accuracy snapshot (max-budget completions only).
    pub model_error: Option<ModelErrorRecord>,
}

/// Output of a tuning run.
///
/// Deliberately `PartialEq` and free of wall-clock data: the
/// serial-equivalence contract is that the *entire* result — trace, best
/// config, sample counts, unstable set — is bit-identical for any
/// [`ExecutionMode`].
#[derive(Debug, Clone, PartialEq)]
pub struct TuningResult {
    /// Best configuration found (highest-budget tier preferred).
    pub best_config: Config,
    /// Its reported metric value.
    pub best_value: f64,
    /// Per-iteration trace.
    pub trace: Vec<IterationRecord>,
    /// Total samples consumed.
    pub total_samples: usize,
    /// Distinct configs classified unstable at least once.
    pub n_unstable_configs: usize,
    /// Distinct configs evaluated.
    pub n_configs: usize,
    /// Noise-model accuracy records (Figure 19b).
    pub model_errors: Vec<ModelErrorRecord>,
}

/// The TUNA sampling pipeline.
pub struct TunaPipeline<'a> {
    config: TunaConfig,
    sut: &'a dyn SystemUnderTest,
    workload: &'a Workload,
    optimizer: Box<dyn Optimizer>,
    cluster: Cluster,
    scheduler: TaskScheduler,
    detector: OutlierDetector,
    adjuster: NoiseAdjuster,
    samples: BTreeMap<ConfigId, Vec<Sample>>,
    configs: BTreeMap<ConfigId, Config>,
    unstable_seen: BTreeMap<ConfigId, bool>,
    trained_configs: BTreeMap<ConfigId, bool>,
    trace: Vec<IterationRecord>,
    round: usize,
    exec: ExecStats,
    scratch: SampleScratch,
}

impl<'a> TunaPipeline<'a> {
    /// Creates a pipeline over an optimizer and a tuning cluster.
    ///
    /// # Panics
    ///
    /// Panics if the ladder's max budget exceeds the cluster size.
    pub fn new(
        config: TunaConfig,
        sut: &'a dyn SystemUnderTest,
        workload: &'a Workload,
        optimizer: Box<dyn Optimizer>,
        cluster: Cluster,
    ) -> Self {
        assert!(
            config.ladder.max_budget() <= config.cluster_size,
            "max budget exceeds cluster size"
        );
        assert_eq!(cluster.size(), config.cluster_size, "cluster size mismatch");
        let scheduler = TaskScheduler::new(config.cluster_size);
        let detector = OutlierDetector::new(config.outlier_threshold);
        let adjuster = NoiseAdjuster::new(AdjusterConfig::paper_default(config.cluster_size));
        TunaPipeline {
            config,
            sut,
            workload,
            optimizer,
            cluster,
            scheduler,
            detector,
            adjuster,
            samples: BTreeMap::new(),
            configs: BTreeMap::new(),
            unstable_seen: BTreeMap::new(),
            trained_configs: BTreeMap::new(),
            trace: Vec::new(),
            round: 0,
            exec: ExecStats::default(),
            scratch: SampleScratch::new(),
        }
    }

    /// The optimizer's objective.
    pub fn objective(&self) -> Objective {
        self.optimizer.objective()
    }

    /// Executes one pipeline iteration.
    pub fn step(&mut self, rng: &mut Rng) {
        let suggestion = self.optimizer.ask(rng);
        let id = suggestion.config.id();
        self.configs
            .entry(id)
            .or_insert_with(|| suggestion.config.clone());

        // Schedule new runs on unvisited, least-loaded workers and execute
        // them through the trial engine — one lane per worker. Run-level
        // randomness is forked per (config, machine) from the current rng
        // state rather than drawn sequentially, so serial and parallel
        // execution are bit-identical (see `crate::executor`).
        let assigned = self.scheduler.assign(id, suggestion.budget);
        let new_samples = assigned.len();
        let requests: Vec<RunRequest<'_>> = assigned
            .iter()
            .map(|&machine_idx| RunRequest {
                config: &suggestion.config,
                machine: machine_idx,
                stream: hash_combine(id.0, machine_idx as u64),
            })
            .collect();
        let (outcomes, batch) = executor::execute_batch(
            self.config.mode,
            self.sut,
            self.workload,
            &mut self.cluster,
            rng,
            &requests,
        );
        if !requests.is_empty() {
            self.exec.absorb(&batch);
        }
        for (machine_idx, outcome) in assigned.into_iter().zip(outcomes) {
            let raw = if outcome.crashed {
                self.config.crash_penalty
            } else {
                outcome.value
            };
            self.samples.entry(id).or_default().push(Sample::new(
                machine_idx,
                raw,
                outcome.metrics,
                outcome.crashed,
            ));
        }

        // Take the config's samples out of the map for this round — the
        // old path cloned the whole `Vec<Sample>` (metric vectors
        // included) every iteration; moving it out and back costs
        // nothing and keeps the borrows disjoint.
        let samples = self.samples.remove(&id).unwrap_or_default();
        if samples.is_empty() {
            return; // Nothing to report (degenerate suggestion).
        }
        let scratch = &mut self.scratch;
        scratch.raws.clear();
        scratch.raws.extend(samples.iter().map(|s| s.raw));

        // Outlier detection over *all* samples of the config (single
        // min/max/mean pass).
        let unstable =
            self.config.outlier_enabled && self.detector.classify(&scratch.raws).is_unstable();
        if unstable {
            self.unstable_seen.insert(id, true);
        } else {
            self.unstable_seen.entry(id).or_insert(false);
        }

        // Noise adjustment (bypassed for unstable configs and crashes).
        scratch.values.clear();
        if self.config.adjuster_enabled {
            for s in &samples {
                scratch.values.push(self.adjuster.adjust(s, unstable));
            }
        } else {
            scratch.values.extend_from_slice(&scratch.raws);
        }

        // Aggregate and penalize.
        let objective = self.optimizer.objective();
        let mut reported =
            self.config
                .aggregation
                .aggregate_with(&scratch.values, objective, &mut scratch.select);
        if unstable {
            reported = self.detector.penalize(reported, objective);
        }
        self.optimizer
            .tell(&suggestion.config, reported, suggestion.budget);

        // Max-budget completions feed the model (inference above happened
        // with the pre-update model: no leakage).
        let mut model_error = None;
        let at_max = self.scheduler.visited(id).len() >= self.config.ladder.max_budget();
        if at_max && !unstable && !self.trained_configs.contains_key(&id) {
            self.trained_configs.insert(id, true);
            let clean: Vec<&Sample> = samples.iter().filter(|s| !s.crashed).collect();
            if clean.len() >= 2 {
                // Inline mean over the clean raws (same left-to-right
                // summation as `summary::mean`, without the collect).
                let truth = clean.iter().map(|s| s.raw).sum::<f64>() / clean.len() as f64;
                if truth != 0.0 {
                    let raw_rel_err = clean
                        .iter()
                        .map(|s| (s.raw - truth).abs() / truth.abs())
                        .sum::<f64>()
                        / clean.len() as f64;
                    let adjusted_rel_err = clean
                        .iter()
                        .map(|s| (self.adjuster.adjust(s, false) - truth).abs() / truth.abs())
                        .sum::<f64>()
                        / clean.len() as f64;
                    model_error = Some(ModelErrorRecord {
                        generation: self.adjuster.generations(),
                        raw_rel_err,
                        adjusted_rel_err,
                    });
                }
            }
            if self.config.adjuster_enabled {
                self.adjuster.train_on_config(&samples, rng);
            }
        }
        self.samples.insert(id, samples);

        self.round += 1;
        // Observability side channel: fleet-wide round/unstable totals.
        // Counters never feed back into tuning.
        tuna_obs::global()
            .counter("tuna_pipeline_rounds_total", "tuning rounds executed")
            .inc();
        if unstable {
            tuna_obs::global()
                .counter(
                    "tuna_pipeline_unstable_total",
                    "rounds whose config was classified unstable",
                )
                .inc();
        }
        let best_so_far = self.optimizer.best().map(|(_, v)| v);
        self.trace.push(IterationRecord {
            round: self.round,
            config_id: id,
            budget: suggestion.budget,
            new_samples,
            reported,
            unstable,
            best_so_far,
            cumulative_samples: self.scheduler.total_assigned() as usize,
            model_error,
        });
    }

    /// Runs `rounds` iterations.
    pub fn run_rounds(&mut self, rounds: usize, rng: &mut Rng) {
        for _ in 0..rounds {
            self.step(rng);
        }
    }

    /// Runs until at least `sample_budget` samples have been consumed
    /// (the §6.5 equal-cost basis), with a hard iteration cap.
    pub fn run_until_samples(&mut self, sample_budget: usize, rng: &mut Rng) {
        let cap = sample_budget * 4 + 100;
        let mut iters = 0;
        while (self.scheduler.total_assigned() as usize) < sample_budget && iters < cap {
            self.step(rng);
            iters += 1;
        }
    }

    /// Finalizes the run.
    ///
    /// # Panics
    ///
    /// Panics if no iterations were executed.
    pub fn finish(self) -> TuningResult {
        let (best_config, best_value) = self
            .optimizer
            .best()
            .expect("finish() before any iteration");
        let n_unstable = self.unstable_seen.values().filter(|&&u| u).count();
        let model_errors = self
            .trace
            .iter()
            .filter_map(|r| r.model_error)
            .collect::<Vec<_>>();
        TuningResult {
            best_config,
            best_value,
            total_samples: self.scheduler.total_assigned() as usize,
            n_unstable_configs: n_unstable,
            n_configs: self.configs.len(),
            model_errors,
            trace: self.trace,
        }
    }

    /// The tuning cluster (for post-run inspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Cumulative trial-execution accounting (lane busy time, wall-clock,
    /// critical path). Kept out of [`TuningResult`] so results stay
    /// bit-comparable across execution modes.
    pub fn exec_stats(&self) -> &ExecStats {
        &self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Region, VmSku};
    use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
    use tuna_sut::postgres::Postgres;

    fn quick_pipeline<'a>(pg: &'a Postgres, workload: &'a Workload, seed: u64) -> TunaPipeline<'a> {
        let cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), seed);
        let optimizer = SmacOptimizer::multi_fidelity(
            pg.space().clone(),
            Objective::Maximize,
            SmacParams {
                n_init: 5,
                n_random_candidates: 40,
                ..SmacParams::default()
            },
            LadderParams::paper_default(),
        );
        TunaPipeline::new(
            TunaConfig::paper_default(1.0),
            pg,
            workload,
            Box::new(optimizer),
            cluster,
        )
    }

    #[test]
    fn pipeline_runs_and_produces_result() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut p = quick_pipeline(&pg, &w, 1);
        let mut rng = Rng::seed_from(2);
        p.run_rounds(40, &mut rng);
        let result = p.finish();
        assert_eq!(result.trace.len(), 40);
        assert!(result.total_samples >= 40);
        assert!(result.best_value > 300.0, "best {}", result.best_value);
        assert!(result.n_configs > 5);
    }

    #[test]
    fn budgets_follow_ladder_and_reuse_samples() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut p = quick_pipeline(&pg, &w, 3);
        let mut rng = Rng::seed_from(4);
        p.run_rounds(80, &mut rng);
        let result = p.finish();
        // Promotions happened.
        assert!(result.trace.iter().any(|r| r.budget == 3));
        // A budget-3 re-evaluation of a config sampled at budget 1 adds at
        // most 2 new samples.
        for r in result.trace.iter().filter(|r| r.budget == 3) {
            assert!(r.new_samples <= 2, "budget-3 round took {}", r.new_samples);
        }
        for r in result.trace.iter().filter(|r| r.budget == 10) {
            assert!(r.new_samples <= 7);
        }
    }

    #[test]
    fn run_until_samples_respects_budget() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut p = quick_pipeline(&pg, &w, 5);
        let mut rng = Rng::seed_from(6);
        p.run_until_samples(60, &mut rng);
        let result = p.finish();
        assert!(result.total_samples >= 60);
        assert!(
            result.total_samples < 90,
            "overshot: {}",
            result.total_samples
        );
    }

    #[test]
    fn unstable_configs_detected_under_plan_sensitive_workload() {
        // TPC-C's planner tie zone should surface unstable configs during
        // search; individual seeds can get lucky, so pool a few runs.
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut total_unstable = 0;
        for seed in [7u64, 8, 9] {
            let mut p = quick_pipeline(&pg, &w, seed);
            let mut rng = Rng::seed_from(seed + 1);
            p.run_rounds(150, &mut rng);
            total_unstable += p.finish().n_unstable_configs;
        }
        assert!(total_unstable > 0, "no unstable configs across 3 runs");
    }

    #[test]
    fn model_errors_recorded_at_max_budget() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut p = quick_pipeline(&pg, &w, 9);
        let mut rng = Rng::seed_from(10);
        p.run_rounds(150, &mut rng);
        let result = p.finish();
        assert!(
            !result.model_errors.is_empty(),
            "no configs completed max budget"
        );
        for rec in &result.model_errors {
            assert!(rec.raw_rel_err >= 0.0 && rec.raw_rel_err < 1.0);
            assert!(rec.adjusted_rel_err >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "max budget exceeds cluster size")]
    fn oversized_ladder_rejected() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let cluster = Cluster::new(5, VmSku::d8s_v5(), Region::westus2(), 1);
        let optimizer = SmacOptimizer::new(
            pg.space().clone(),
            Objective::Maximize,
            SmacParams::default(),
        );
        let mut cfg = TunaConfig::paper_default(1.0);
        cfg.cluster_size = 5;
        TunaPipeline::new(cfg, &pg, &w, Box::new(optimizer), cluster);
    }
}
