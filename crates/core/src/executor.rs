//! Parallel trial execution with a serial-equivalence guarantee.
//!
//! TUNA's detection guarantee rests on sampling each configuration on
//! *distinct* nodes of the worker cluster (§4.1, Figure 9), which makes the
//! runs of one scheduling round independent by construction: each run
//! touches exactly one [`Machine`] and no machine appears twice in a batch
//! for the same config. This module exploits that independence to execute a
//! round's `(config, machine)` assignments concurrently — one *lane* per
//! simulated worker — while producing **bit-identical** results to serial
//! execution.
//!
//! Two disciplines make the equivalence hold:
//!
//! 1. **Forked per-run RNGs.** Every [`RunRequest`] carries a `stream`
//!    label (for pipeline runs, `hash_combine(config_id, machine_idx)`);
//!    the engine derives that run's generator with [`Rng::fork`] from a
//!    shared base instead of drawing sequentially from one generator.
//!    Forking does not advance the base, so run randomness is a pure
//!    function of `(base state, stream)` — independent of execution order.
//! 2. **Disjoint machine lanes.** Requests are grouped by machine into
//!    lanes via [`Cluster::lanes_mut`]; lanes run concurrently but each
//!    lane executes its runs in plan order, so every machine observes the
//!    exact same sequence of measurement epochs as under serial execution.
//!
//! The engine is a scoped-thread worker pool (`std::thread::scope`, no
//! external dependencies): worker threads claim lanes from a shared queue,
//! execute them, and scatter outcomes back into plan order. Per-lane
//! wall-clock is recorded in [`BatchStats`] so speedup is measurable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use tuna_cloudsim::machine::Machine;
use tuna_cloudsim::Cluster;
use tuna_stats::rng::Rng;
use tuna_sut::{RunOutcome, SystemUnderTest};
use tuna_workloads::Workload;

/// How trial batches are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One thread executes runs in plan order.
    Serial,
    /// Up to `workers` OS threads execute machine lanes concurrently.
    /// Results are bit-identical to [`ExecutionMode::Serial`].
    Parallel {
        /// Worker-thread cap (effective count is `min(workers, lanes)`).
        workers: usize,
    },
}

impl ExecutionMode {
    /// Reads the mode from the `TUNA_WORKERS` environment variable:
    /// unset, `0` or `1` mean serial; `N > 1` means `Parallel { N }`.
    /// Unparseable values fall back to serial.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("TUNA_WORKERS").ok().as_deref())
    }

    /// [`ExecutionMode::from_env`]'s mapping, factored out of the
    /// environment read so it is testable without env races.
    fn parse(value: Option<&str>) -> Self {
        match value.and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n > 1 => ExecutionMode::Parallel { workers: n },
            _ => ExecutionMode::Serial,
        }
    }

    /// The worker-thread cap (1 for serial).
    pub fn workers(&self) -> usize {
        match *self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Parallel { workers } => workers.max(1),
        }
    }
}

/// One planned trial: run `config` on `cluster[machine]` with the run-level
/// generator `base.fork(stream)`.
#[derive(Debug, Clone, Copy)]
pub struct RunRequest<'a> {
    /// The configuration to evaluate.
    pub config: &'a tuna_space::Config,
    /// Machine index within the cluster.
    pub machine: usize,
    /// RNG fork label; must be unique within a batch for decorrelated
    /// runs (the pipeline uses `hash_combine(config_id, machine_idx)`).
    pub stream: u64,
}

/// Wall-clock accounting for one executed lane.
#[derive(Debug, Clone, Copy)]
pub struct LaneStats {
    /// Machine index the lane ran on.
    pub machine: usize,
    /// Number of runs in the lane.
    pub runs: usize,
    /// Wall-clock nanoseconds spent executing the lane.
    pub nanos: u128,
}

/// Wall-clock accounting for one batch.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Whole-batch wall-clock nanoseconds (including pool overhead).
    pub wall_nanos: u128,
    /// Per-lane accounting.
    pub lanes: Vec<LaneStats>,
}

impl BatchStats {
    /// Sum of per-lane busy time (the serial cost of the batch's work).
    pub fn busy_nanos(&self) -> u128 {
        self.lanes.iter().map(|l| l.nanos).sum()
    }

    /// The slowest lane (the batch's critical path).
    pub fn critical_nanos(&self) -> u128 {
        self.lanes.iter().map(|l| l.nanos).max().unwrap_or(0)
    }
}

/// Cumulative execution accounting across a pipeline's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Batches executed.
    pub batches: usize,
    /// Total runs executed.
    pub runs: usize,
    /// Total wall-clock nanoseconds across batches.
    pub wall_nanos: u128,
    /// Total lane-busy nanoseconds (what a single thread would have spent
    /// inside the SuT).
    pub busy_nanos: u128,
    /// Total critical-path nanoseconds (a lower bound on the wall-clock
    /// of a perfectly scheduled parallel execution).
    pub critical_nanos: u128,
}

impl ExecStats {
    /// Folds one batch into the totals.
    pub fn absorb(&mut self, batch: &BatchStats) {
        self.batches += 1;
        self.runs += batch.lanes.iter().map(|l| l.runs).sum::<usize>();
        self.wall_nanos += batch.wall_nanos;
        self.busy_nanos += batch.busy_nanos();
        self.critical_nanos += batch.critical_nanos();
    }

    /// Observed speedup over serial execution of the same work
    /// (`busy / wall`; 1.0 when nothing ran).
    pub fn speedup(&self) -> f64 {
        if self.wall_nanos == 0 {
            1.0
        } else {
            self.busy_nanos as f64 / self.wall_nanos as f64
        }
    }
}

/// Cached handles into the process-global metrics registry so the per
/// batch cost of instrumentation is a handful of relaxed atomic ops —
/// no lock, no name lookup. Observability only: nothing here feeds
/// back into execution.
struct ExecMetrics {
    batches: tuna_obs::Counter,
    runs: tuna_obs::Counter,
    steals: tuna_obs::Counter,
    occupancy: tuna_obs::Gauge,
    lanes: tuna_obs::Histogram,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = tuna_obs::global();
        ExecMetrics {
            batches: reg.counter("tuna_executor_batches_total", "trial batches executed"),
            runs: reg.counter("tuna_executor_runs_total", "trial runs executed"),
            steals: reg.counter(
                "tuna_executor_steals_total",
                "lanes claimed by secondary pool workers (work stolen off the first thread)",
            ),
            occupancy: reg.gauge(
                "tuna_executor_lane_occupancy_pct",
                "last batch's pool occupancy: lane-busy time over workers x wall time",
            ),
            lanes: reg.histogram(
                "tuna_executor_lanes_per_batch",
                "machine lanes per executed batch",
                &[1, 2, 4, 8, 16, 32, 64],
            ),
        }
    })
}

/// A lane: one machine plus the (plan-ordered) request indices it runs.
struct Lane<'a> {
    machine_idx: usize,
    machine: &'a mut Machine,
    requests: Vec<usize>,
}

/// Executes a batch of trial runs and returns the outcomes in plan order
/// plus wall-clock accounting.
///
/// Serial and parallel modes produce bit-identical outcomes for any worker
/// count: per-run randomness comes from `base.fork(request.stream)` and
/// each machine executes its runs in plan order either way. `base` is not
/// advanced.
///
/// # Panics
///
/// Panics if a request's machine index is out of bounds, or (propagated)
/// if the SuT panics.
pub fn execute_batch(
    mode: ExecutionMode,
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    cluster: &mut Cluster,
    base: &Rng,
    requests: &[RunRequest<'_>],
) -> (Vec<RunOutcome>, BatchStats) {
    if requests.is_empty() {
        return (Vec::new(), BatchStats::default());
    }

    // Group requests into per-machine lanes, preserving plan order both
    // across lanes (first appearance) and within each lane.
    let mut machine_order: Vec<usize> = Vec::new();
    let mut lane_requests: Vec<Vec<usize>> = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        match machine_order.iter().position(|&m| m == req.machine) {
            Some(l) => lane_requests[l].push(i),
            None => {
                machine_order.push(req.machine);
                lane_requests.push(vec![i]);
            }
        }
    }

    let workers = mode.workers().min(machine_order.len());
    let batch_start = Instant::now();
    let (mut outcomes, lanes, steals) = if workers <= 1 {
        let (outcomes, lanes) = execute_lanes_serial(
            sut,
            workload,
            cluster,
            base,
            requests,
            &machine_order,
            &lane_requests,
        );
        (outcomes, lanes, 0)
    } else {
        execute_lanes_parallel(
            sut,
            workload,
            cluster,
            base,
            requests,
            &machine_order,
            lane_requests,
            workers,
        )
    };
    let stats = BatchStats {
        wall_nanos: batch_start.elapsed().as_nanos(),
        lanes,
    };

    let metrics = exec_metrics();
    metrics.batches.inc();
    metrics.runs.add(requests.len() as u64);
    metrics.steals.add(steals);
    metrics.lanes.observe(stats.lanes.len() as u64);
    if stats.wall_nanos > 0 {
        let pool_nanos = stats.wall_nanos.saturating_mul(workers as u128);
        let pct = stats.busy_nanos().saturating_mul(100) / pool_nanos.max(1);
        metrics.occupancy.set(u64::try_from(pct).unwrap_or(100));
    }

    let ordered: Vec<RunOutcome> = outcomes
        .iter_mut()
        .map(|slot| slot.take().expect("every request produces an outcome"))
        .collect();
    (ordered, stats)
}

/// Runs one request with its forked generator.
fn run_one(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    machine: &mut Machine,
    base: &Rng,
    req: &RunRequest<'_>,
) -> RunOutcome {
    let mut rng = base.fork(req.stream);
    sut.run(req.config, workload, machine, &mut rng)
}

fn execute_lanes_serial(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    cluster: &mut Cluster,
    base: &Rng,
    requests: &[RunRequest<'_>],
    machine_order: &[usize],
    lane_requests: &[Vec<usize>],
) -> (Vec<Option<RunOutcome>>, Vec<LaneStats>) {
    let mut outcomes: Vec<Option<RunOutcome>> = requests.iter().map(|_| None).collect();
    // Lane by lane, each lane's requests in plan order — the exact
    // per-machine sequence the parallel path executes.
    let mut lanes: Vec<LaneStats> = machine_order
        .iter()
        .zip(lane_requests)
        .map(|(&machine, reqs)| {
            let start = Instant::now();
            for &i in reqs {
                let req = &requests[i];
                outcomes[i] = Some(run_one(
                    sut,
                    workload,
                    cluster.machine_mut(machine),
                    base,
                    req,
                ));
            }
            LaneStats {
                machine,
                runs: reqs.len(),
                nanos: start.elapsed().as_nanos(),
            }
        })
        .collect();
    lanes.sort_by_key(|l| l.machine);
    (outcomes, lanes)
}

#[allow(clippy::too_many_arguments)]
fn execute_lanes_parallel(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    cluster: &mut Cluster,
    base: &Rng,
    requests: &[RunRequest<'_>],
    machine_order: &[usize],
    lane_requests: Vec<Vec<usize>>,
    workers: usize,
) -> (Vec<Option<RunOutcome>>, Vec<LaneStats>, u64) {
    let machines = cluster.lanes_mut(machine_order);
    let mut lanes: Vec<Lane<'_>> = machines
        .into_iter()
        .zip(machine_order.iter().zip(lane_requests))
        .map(|(machine, (&machine_idx, reqs))| Lane {
            machine_idx,
            machine,
            requests: reqs,
        })
        .collect();
    let n_lanes = lanes.len();

    // Workers claim lanes through an atomic cursor over a locked slot
    // vector; each lane is claimed exactly once, so the locks are
    // uncontended and exist only to move the `&mut Machine` across
    // threads safely.
    let slots: Vec<Mutex<Option<Lane<'_>>>> =
        lanes.drain(..).map(|l| Mutex::new(Some(l))).collect();
    let cursor = AtomicUsize::new(0);

    // What one worker thread brings home: outcomes tagged with their
    // lane index, plus per-lane timing.
    type WorkerHarvest = (Vec<(usize, RunOutcome)>, Vec<LaneStats>, u64);
    let mut per_worker: Vec<WorkerHarvest> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|wi| {
                let slots = &slots;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, RunOutcome)> = Vec::new();
                    let mut lane_stats: Vec<LaneStats> = Vec::new();
                    let mut claimed: u64 = 0;
                    loop {
                        let l = cursor.fetch_add(1, Ordering::Relaxed);
                        if l >= n_lanes {
                            break;
                        }
                        claimed += 1;
                        let lane = slots[l]
                            .lock()
                            .expect("lane mutex poisoned")
                            .take()
                            .expect("lane claimed twice");
                        let start = Instant::now();
                        for &i in &lane.requests {
                            let req = &requests[i];
                            let outcome = run_one(sut, workload, lane.machine, base, req);
                            produced.push((i, outcome));
                        }
                        lane_stats.push(LaneStats {
                            machine: lane.machine_idx,
                            runs: lane.requests.len(),
                            nanos: start.elapsed().as_nanos(),
                        });
                    }
                    // A lane run by any thread but the first would have
                    // serialized behind it in a single-threaded pool —
                    // that is the "stolen" work the steal counter sees.
                    (produced, lane_stats, if wi == 0 { 0 } else { claimed })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked"))
            .collect()
    });

    let mut outcomes: Vec<Option<RunOutcome>> = requests.iter().map(|_| None).collect();
    let mut lane_stats: Vec<LaneStats> = Vec::with_capacity(n_lanes);
    let mut steals: u64 = 0;
    for (produced, stats, stolen) in &mut per_worker {
        for (i, outcome) in produced.drain(..) {
            outcomes[i] = Some(outcome);
        }
        lane_stats.append(stats);
        steals += *stolen;
    }
    // Deterministic reporting order regardless of which worker ran what.
    lane_stats.sort_by_key(|l| l.machine);
    (outcomes, lane_stats, steals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Region, VmSku};
    use tuna_space::Config;
    use tuna_stats::rng::hash_combine;
    use tuna_sut::postgres::Postgres;

    fn cluster(n: usize, seed: u64) -> Cluster {
        Cluster::new(n, VmSku::d8s_v5(), Region::westus2(), seed)
    }

    fn plan(
        configs: &[Config],
        machines_per_config: usize,
        cluster_size: usize,
    ) -> Vec<(usize, u64, usize)> {
        // (config index, stream, machine) triples spread round-robin.
        let mut entries = Vec::new();
        for (c, cfg) in configs.iter().enumerate() {
            for k in 0..machines_per_config {
                let m = (c + k * 3) % cluster_size;
                entries.push((c, hash_combine(cfg.id().0, m as u64), m));
            }
        }
        entries
    }

    fn run_plan(mode: ExecutionMode, seed: u64) -> Vec<u64> {
        let pg = Postgres::new();
        let workload = tuna_workloads::tpcc();
        let mut cluster = cluster(8, seed);
        let base = Rng::seed_from(hash_combine(seed, 1));
        let mut sample_rng = Rng::seed_from(hash_combine(seed, 2));
        let configs: Vec<Config> = (0..12)
            .map(|_| pg.space().sample(&mut sample_rng))
            .collect();
        let entries = plan(&configs, 3, 8);
        let requests: Vec<RunRequest<'_>> = entries
            .iter()
            .map(|&(c, stream, machine)| RunRequest {
                config: &configs[c],
                machine,
                stream,
            })
            .collect();
        let (outcomes, stats) = execute_batch(mode, &pg, &workload, &mut cluster, &base, &requests);
        assert_eq!(outcomes.len(), requests.len());
        assert_eq!(
            stats.lanes.iter().map(|l| l.runs).sum::<usize>(),
            requests.len()
        );
        outcomes.iter().map(|o| o.value.to_bits()).collect()
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        for seed in [1u64, 7, 42] {
            let serial = run_plan(ExecutionMode::Serial, seed);
            for workers in [1usize, 2, 4, 8, 16] {
                let par = run_plan(ExecutionMode::Parallel { workers }, seed);
                assert_eq!(serial, par, "workers={workers} seed={seed} diverged");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pg = Postgres::new();
        let workload = tuna_workloads::tpcc();
        let mut c = cluster(2, 1);
        let base = Rng::seed_from(3);
        let (outcomes, stats) =
            execute_batch(ExecutionMode::Serial, &pg, &workload, &mut c, &base, &[]);
        assert!(outcomes.is_empty());
        assert_eq!(stats.wall_nanos, 0);
        assert!(stats.lanes.is_empty());
    }

    #[test]
    fn base_rng_is_not_advanced() {
        let pg = Postgres::new();
        let workload = tuna_workloads::tpcc();
        let mut c = cluster(2, 1);
        let base = Rng::seed_from(9);
        let before = base.clone();
        let cfg = pg.default_config();
        let requests = [RunRequest {
            config: &cfg,
            machine: 0,
            stream: 1,
        }];
        execute_batch(
            ExecutionMode::Serial,
            &pg,
            &workload,
            &mut c,
            &base,
            &requests,
        );
        assert_eq!(base, before, "fork-only discipline violated");
    }

    #[test]
    fn lane_stats_cover_every_machine_once() {
        let pg = Postgres::new();
        let workload = tuna_workloads::tpcc();
        let mut c = cluster(4, 5);
        let base = Rng::seed_from(5);
        let cfg = pg.default_config();
        let requests: Vec<RunRequest<'_>> = (0..4)
            .chain(0..4)
            .map(|m| RunRequest {
                config: &cfg,
                machine: m,
                stream: m as u64,
            })
            .collect();
        let (_, stats) = execute_batch(
            ExecutionMode::Parallel { workers: 4 },
            &pg,
            &workload,
            &mut c,
            &base,
            &requests,
        );
        let mut machines: Vec<usize> = stats.lanes.iter().map(|l| l.machine).collect();
        machines.sort_unstable();
        assert_eq!(machines, vec![0, 1, 2, 3]);
        assert!(stats.lanes.iter().all(|l| l.runs == 2));
        assert!(stats.wall_nanos >= stats.critical_nanos());
    }

    #[test]
    fn exec_stats_accumulate_and_speedup_defined() {
        let mut stats = ExecStats::default();
        assert_eq!(stats.speedup(), 1.0);
        stats.absorb(&BatchStats {
            wall_nanos: 50,
            lanes: vec![
                LaneStats {
                    machine: 0,
                    runs: 2,
                    nanos: 40,
                },
                LaneStats {
                    machine: 1,
                    runs: 1,
                    nanos: 35,
                },
            ],
        });
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.busy_nanos, 75);
        assert_eq!(stats.critical_nanos, 40);
        assert!((stats.speedup() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_env_parses_worker_counts() {
        // Exercise the parsing mapping directly (not via the real
        // environment — tests run in parallel).
        assert_eq!(ExecutionMode::parse(None), ExecutionMode::Serial);
        assert_eq!(ExecutionMode::parse(Some("0")), ExecutionMode::Serial);
        assert_eq!(ExecutionMode::parse(Some("1")), ExecutionMode::Serial);
        assert_eq!(
            ExecutionMode::parse(Some("4")),
            ExecutionMode::Parallel { workers: 4 }
        );
        assert_eq!(
            ExecutionMode::parse(Some(" 8\n")),
            ExecutionMode::Parallel { workers: 8 }
        );
        assert_eq!(ExecutionMode::parse(Some("lots")), ExecutionMode::Serial);
        assert_eq!(ExecutionMode::Serial.workers(), 1);
        assert_eq!(ExecutionMode::Parallel { workers: 4 }.workers(), 4);
        assert_eq!(ExecutionMode::Parallel { workers: 0 }.workers(), 1);
    }
}
