//! Declarative study-grid campaigns (the §6 evaluation as data).
//!
//! The paper's evaluation is a grid of (SuT × workload × method × seeds ×
//! cluster shapes); historically every figure binary hand-rolled that loop.
//! A [`Campaign`] instead *declares* the grid — workloads on one axis,
//! [`Arm`]s (method recipes) on another, `runs` independent seeds on the
//! third — and [`CampaignRunner`] expands it into cells and executes them:
//!
//! - **Deterministic cells.** Each cell's randomness is a pure function of
//!   the campaign seed and the cell's coordinates (the per-run seed is
//!   derived by `hash_combine` exactly as the pre-campaign binaries did,
//!   so migrated figures reproduce their historical output bit-for-bit).
//!   No RNG state flows between cells, so execution order cannot matter.
//! - **Work-stealing over cells.** The runner reuses the executor's
//!   [`ExecutionMode`] vocabulary but parallelizes at the *cell* level:
//!   worker threads claim whole cells from a shared cursor (the same
//!   idiom as [`crate::executor`]'s lane pool). Trials inside a campaign
//!   cell always run serially — the scaling axis is the grid itself, and
//!   results are bit-identical for any worker count either way.
//! - **A checksummed, resumable [`ResultStore`].** Every finished cell is
//!   appended to a CSV journal with an FNV-1a digest over its rows;
//!   [`ResultStore::finalize`] rewrites the file in cell order and emits a
//!   JSON mirror. Re-running a half-finished campaign skips completed
//!   cells and produces byte-identical files to an uninterrupted run.
//!
//! # Examples
//!
//! ```
//! use tuna_core::campaign::{Arm, Campaign, CampaignRunner, Recipe, ResultStore};
//! use tuna_core::experiment::Method;
//!
//! let campaign = Campaign::protocol(
//!     "demo",
//!     1,
//!     vec![tuna_workloads::tpcc()],
//!     &[("TUNA", Method::Tuna), ("Default", Method::DefaultConfig)],
//! )
//! .with_runs(1)
//! .with_rounds(3);
//! let mut store = ResultStore::in_memory(&campaign);
//! let result = CampaignRunner::serial().run(&campaign, &mut store);
//! assert_eq!(result.cells.len(), 2);
//! assert!(result.complete);
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::aggregate::AggregationPolicy;
use crate::baselines::{run_arena, run_naive_distributed};
use crate::deploy::{default_worst_case_with, evaluate_deployment_with};
use crate::executor::ExecutionMode;
use crate::experiment::{Experiment, Method, RunSummary, SolverId};
use crate::pipeline::{TunaConfig, TunaPipeline, TuningResult};
use crate::report::{summarize_method, MethodSummary};
use tuna_cloudsim::{Cluster, Region};
use tuna_optimizer::multifidelity::LadderParams;
use tuna_stats::fnv::Checksum;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_workloads::Workload;

/// Store format version (first CSV header line and JSON `version`).
pub const STORE_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Campaign declaration
// ---------------------------------------------------------------------------

/// A tuning-cluster shape override for pinned recipes: size plus the
/// budget ladder that fits it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterShape {
    /// Worker-cluster size.
    pub size: usize,
    /// Budget ladder whose max rung fits the cluster.
    pub ladder: LadderParams,
}

/// A pinned TUNA pipeline run on an explicit sample budget (the §6.5
/// equal-cost basis and the ablation studies). The seed labels are part
/// of the declaration so that studies migrated from pre-campaign binaries
/// keep their historical derivations — and therefore their exact numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBudgetSpec {
    /// Total sample budget (`run_until_samples`).
    pub samples: usize,
    /// Per-run seed label: `hash_combine(campaign.seed, seed_salt + run)`.
    pub seed_salt: u64,
    /// Pipeline RNG label: `Rng::seed_from(hash_combine(seed, rng_label))`.
    pub rng_label: u64,
    /// Deployment derivation label.
    pub deploy_label: u64,
    /// Aggregation-policy override (§4.4 ablation).
    pub aggregation: Option<AggregationPolicy>,
    /// Outlier-threshold override (§4.2 ablation).
    pub outlier_threshold: Option<f64>,
    /// Cluster-shape override (§5.1 ablation).
    pub cluster: Option<ClusterShape>,
}

impl SampleBudgetSpec {
    /// A plain equal-cost TUNA run with no config overrides.
    pub fn new(samples: usize, seed_salt: u64, rng_label: u64, deploy_label: u64) -> Self {
        SampleBudgetSpec {
            samples,
            seed_salt,
            rng_label,
            deploy_label,
            aggregation: None,
            outlier_threshold: None,
            cluster: None,
        }
    }
}

/// A TUNA-vs-naive-distributed convergence pair (§6.5.2): both arms of
/// one run share a single RNG stream (the pipeline consumes it first,
/// naive distributed continues it), as the historical Figure 17 driver
/// did, so the pair is one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceSpec {
    /// Sample budget granted to each arm.
    pub samples: usize,
    /// Per-run seed label: `hash_combine(campaign.seed, seed_salt + run)`.
    pub seed_salt: u64,
    /// Shared RNG label.
    pub rng_label: u64,
}

/// A head-to-head arena cell: one (noise regime × solver) point of an
/// arena grid. Registry solvers tune through [`run_arena`], which hands
/// every member of a match group the *same* machine snapshot and noise
/// draw ([`tuna_optimizer::solver::Capabilities::match_size`] sets the
/// group width — 2 for the tournament solver's matches). The sentinel
/// solver name [`ArenaSpec::TUNA`] runs the full TUNA pipeline instead,
/// so the grid can compare TUNA's noise-filtering against match-based
/// noise cancellation under each regime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaSpec {
    /// Solver registry name, or [`ArenaSpec::TUNA`] for the pipeline.
    pub solver: String,
    /// Noise regime: a built-in [`Region`] name overriding the
    /// experiment's region.
    pub region: String,
    /// Total sample budget.
    pub samples: usize,
}

impl ArenaSpec {
    /// Sentinel solver name selecting the full TUNA pipeline.
    pub const TUNA: &'static str = "tuna";

    /// Creates a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if `solver` is neither [`ArenaSpec::TUNA`] nor a registry
    /// name, or `region` is not a built-in region.
    pub fn new(solver: &str, region: &str, samples: usize) -> Self {
        if solver != Self::TUNA {
            SolverId::new(solver).unwrap_or_else(|e| panic!("arena arm: {e}"));
        }
        assert!(
            Region::by_name(region).is_some(),
            "arena arm: unknown region {region:?}"
        );
        ArenaSpec {
            solver: solver.to_string(),
            region: region.to_string(),
            samples,
        }
    }

    /// The per-arm seed salt: FNV-1a over (region, solver), so arena
    /// arms can never collide with each other or with hand-salted
    /// protocol arms no matter which grid they appear in.
    fn seed_salt(&self) -> u64 {
        let mut c = Checksum::new();
        c.push_str(&self.region);
        c.push_str(&self.solver);
        c.value()
    }
}

/// How one arm of the grid evaluates a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Recipe {
    /// The full §6 protocol via [`Experiment::run`]: tune with `method`,
    /// deploy the winner on fresh VMs. The per-run seed is
    /// `hash_combine(campaign.seed, run)`, or
    /// `hash_combine(hash_combine(campaign.seed, salt), run)` when a salt
    /// is pinned — exactly [`Experiment::run_many`]'s derivation.
    Protocol {
        /// Sampling methodology.
        method: Method,
        /// Optional extra seed label (pre-campaign binaries salted
        /// per-arm seeds when mixing protocol and pinned arms).
        seed_salt: Option<u64>,
    },
    /// A pinned sample-budget TUNA pipeline plus deployment.
    SampleBudget(SampleBudgetSpec),
    /// A TUNA + naive-distributed convergence pair.
    Convergence(ConvergenceSpec),
    /// A head-to-head arena run (noise regime × solver).
    Arena(ArenaSpec),
}

impl Recipe {
    /// The §6 protocol with the default seed derivation.
    pub fn protocol(method: Method) -> Self {
        Recipe::Protocol {
            method,
            seed_salt: None,
        }
    }

    fn tag(&self) -> u64 {
        match self {
            Recipe::Protocol { .. } => 1,
            Recipe::SampleBudget(_) => 2,
            Recipe::Convergence(_) => 3,
            Recipe::Arena(_) => 4,
        }
    }
}

/// One arm of the grid: a display label plus the recipe that runs it.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Display label (also the CSV `arm` column; must not contain commas
    /// or newlines).
    pub label: String,
    /// Cell recipe.
    pub recipe: Recipe,
}

impl Arm {
    /// Creates an arm.
    ///
    /// # Panics
    ///
    /// Panics if the label contains a comma or newline (it is a CSV cell).
    pub fn new(label: impl Into<String>, recipe: Recipe) -> Self {
        let label = label.into();
        assert!(
            !label.contains(',') && !label.contains('\n'),
            "arm label {label:?} must not contain commas or newlines"
        );
        Arm { label, recipe }
    }
}

/// A declarative study grid: workloads × arms × runs.
///
/// A campaign is pure data — the grid it declares expands to
/// `workloads × arms × runs` cells, each a pure function of the
/// campaign (via [`Campaign::digest`]) and the cell's coordinates, so
/// two equal campaigns always produce byte-identical results:
///
/// ```
/// use tuna_core::campaign::Campaign;
/// use tuna_core::experiment::Method;
///
/// let campaign = Campaign::protocol(
///     "demo",
///     7,
///     vec![tuna_workloads::tpcc()],
///     &[("TUNA", Method::Tuna), ("Default", Method::DefaultConfig)],
/// )
/// .with_runs(3);
/// assert_eq!(campaign.n_cells(), 6, "1 workload x 2 arms x 3 runs");
/// assert_eq!(campaign.digest(), campaign.clone().digest());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (store header + JSON; no commas/newlines).
    pub name: String,
    /// Root seed.
    pub seed: u64,
    /// Independent tuning runs (seeds) per (workload, arm).
    pub runs: usize,
    /// Tuning rounds for [`Recipe::Protocol`] arms ([`Experiment::rounds`]).
    pub rounds: usize,
    /// Solver (registry name) driving protocol and sample-budget arms.
    pub optimizer: SolverId,
    /// Workload axis (each workload determines its SuT).
    pub workloads: Vec<Workload>,
    /// Method axis.
    pub arms: Vec<Arm>,
}

impl Campaign {
    /// A protocol-only campaign over `(label, method)` arms.
    pub fn protocol(
        name: impl Into<String>,
        seed: u64,
        workloads: Vec<Workload>,
        methods: &[(&str, Method)],
    ) -> Self {
        Campaign {
            name: name.into(),
            seed,
            runs: 1,
            rounds: 96,
            optimizer: SolverId::smac(),
            workloads,
            arms: methods
                .iter()
                .map(|(label, m)| Arm::new(*label, Recipe::protocol(*m)))
                .collect(),
        }
    }

    /// An arena campaign gridding noise regimes × solvers: every
    /// `(region, solver)` pair becomes one arm labeled
    /// `"{region}/{solver}"`. Solver names are registry names plus the
    /// [`ArenaSpec::TUNA`] sentinel for the full pipeline.
    ///
    /// # Panics
    ///
    /// Panics if a solver or region name is unknown (see
    /// [`ArenaSpec::new`]).
    pub fn arena(
        name: impl Into<String>,
        seed: u64,
        workloads: Vec<Workload>,
        regions: &[&str],
        solvers: &[&str],
        samples: usize,
    ) -> Self {
        let arms = regions
            .iter()
            .flat_map(|region| {
                solvers.iter().map(move |solver| {
                    Arm::new(
                        format!("{region}/{solver}"),
                        Recipe::Arena(ArenaSpec::new(solver, region, samples)),
                    )
                })
            })
            .collect();
        Campaign {
            name: name.into(),
            seed,
            runs: 1,
            rounds: 96,
            optimizer: SolverId::smac(),
            workloads,
            arms,
        }
    }

    /// Sets the number of runs per cell group.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the protocol arms' tuning rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the solver driving protocol and sample-budget arms.
    pub fn with_optimizer(mut self, optimizer: SolverId) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Total number of grid cells.
    pub fn n_cells(&self) -> usize {
        self.workloads.len() * self.arms.len() * self.runs
    }

    /// Maps a cell index to `(workload, arm, run)` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn coords(&self, cell: usize) -> (usize, usize, usize) {
        assert!(cell < self.n_cells(), "cell {cell} out of range");
        let per_workload = self.arms.len() * self.runs;
        (
            cell / per_workload,
            (cell % per_workload) / self.runs,
            cell % self.runs,
        )
    }

    /// How many journal rows [`execute_cell`] produces for `cell`: one
    /// per summary, except convergence cells which store a TUNA/naive
    /// pair. The torn-tail repair in [`ResultStore::open`] uses this to
    /// tell a mid-append kill (fewer rows than the recipe produces —
    /// repairable) from corruption (full row count, bad checksum —
    /// refused).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn rows_per_cell(&self, cell: usize) -> usize {
        let (_, arm, _) = self.coords(cell);
        match self.arms[arm].recipe {
            Recipe::Convergence(_) => 2,
            Recipe::Protocol { .. } | Recipe::SampleBudget(_) | Recipe::Arena(_) => 1,
        }
    }

    /// Digest over the campaign declaration. Stored in the CSV header and
    /// JSON document; a resume against a store written by a *different*
    /// declaration is refused instead of silently mixing grids.
    pub fn digest(&self) -> String {
        let mut c = Checksum::new();
        c.push_str(&self.name);
        c.push_u64(self.seed);
        c.push_u64(self.runs as u64);
        c.push_u64(self.rounds as u64);
        // Store-format v1 pinned 1/2 for the original smac/gp enum;
        // solvers registered since fold their FNV-1a name hash, which
        // cannot collide with the small hand-numbered range.
        c.push_u64(match self.optimizer.as_str() {
            "smac" => 1,
            "gp" => 2,
            _ => self.optimizer.name_hash(),
        });
        for w in &self.workloads {
            c.push_str(w.name);
        }
        for arm in &self.arms {
            c.push_str(&arm.label);
            c.push_u64(arm.recipe.tag());
            match &arm.recipe {
                Recipe::Protocol { method, seed_salt } => {
                    c.push_str(method.name());
                    if let Method::TraditionalExtended { samples }
                    | Method::NaiveDistributed { samples } = method
                    {
                        c.push_u64(*samples as u64);
                    }
                    c.push_u64(seed_salt.map_or(u64::MAX, |s| s));
                }
                Recipe::SampleBudget(s) => {
                    c.push_u64(s.samples as u64);
                    c.push_u64(s.seed_salt);
                    c.push_u64(s.rng_label);
                    c.push_u64(s.deploy_label);
                    c.push_u64(s.aggregation.map_or(0, |a| 1 + a as u64));
                    c.push_f64(s.outlier_threshold.unwrap_or(f64::NEG_INFINITY));
                    c.push_u64(s.cluster.is_some() as u64);
                    if let Some(shape) = &s.cluster {
                        c.push_u64(shape.size as u64);
                        c.push_u64(shape.ladder.eta as u64);
                        c.push_u64(shape.ladder.min_rung_size as u64);
                        c.push_u64(shape.ladder.budgets.len() as u64);
                        for &b in &shape.ladder.budgets {
                            c.push_u64(b as u64);
                        }
                    }
                }
                Recipe::Convergence(s) => {
                    c.push_u64(s.samples as u64);
                    c.push_u64(s.seed_salt);
                    c.push_u64(s.rng_label);
                }
                Recipe::Arena(s) => {
                    c.push_str(&s.solver);
                    c.push_str(&s.region);
                    c.push_u64(s.samples as u64);
                }
            }
        }
        c.hex()
    }

    /// The experiment template for one workload (protocol defaults with
    /// this campaign's rounds/optimizer; trial execution pinned to
    /// `exec`). Figure binaries read protocol constants (deployment VM
    /// counts, metric orientation) off this template.
    pub fn experiment(&self, workload: usize, exec: ExecutionMode) -> Experiment {
        let mut exp = Experiment::paper_default(self.workloads[workload].clone());
        exp.rounds = self.rounds;
        exp.optimizer = self.optimizer.clone();
        exp.exec = exec;
        exp
    }
}

// ---------------------------------------------------------------------------
// Cell results and rows
// ---------------------------------------------------------------------------

/// One scalar result row of a cell. Protocol and sample-budget cells
/// produce exactly one row; convergence cells produce one per trace arm.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// Row label (the arm label, or the trace arm for pairs).
    pub label: String,
    /// The derived per-run seed the cell actually used.
    pub seed: u64,
    /// Samples the tuning phase consumed (0 for the default config).
    pub samples: u64,
    /// Best reported tuning value (absent for the default config).
    pub best: Option<f64>,
    /// Deployment mean (absent for tuning-only rows).
    pub mean: Option<f64>,
    /// Deployment standard deviation.
    pub std: Option<f64>,
    /// Worst deployment value.
    pub min: Option<f64>,
    /// Best deployment value.
    pub max: Option<f64>,
    /// Crashed deployment runs.
    pub crashes: Option<u64>,
}

impl CellRow {
    fn fold(&self, c: &mut Checksum) {
        fn opt_f64(c: &mut Checksum, v: Option<f64>) {
            c.push_u64(v.is_some() as u64);
            c.push_f64(v.unwrap_or(0.0));
        }
        c.push_str(&self.label);
        c.push_u64(self.seed);
        c.push_u64(self.samples);
        opt_f64(c, self.best);
        opt_f64(c, self.mean);
        opt_f64(c, self.std);
        opt_f64(c, self.min);
        opt_f64(c, self.max);
        c.push_u64(self.crashes.is_some() as u64);
        c.push_u64(self.crashes.unwrap_or(0));
    }

    fn of_summary(label: &str, seed: u64, run: &RunSummary) -> CellRow {
        CellRow {
            label: label.to_string(),
            seed,
            samples: run.tuning.as_ref().map_or(0, |t| t.total_samples as u64),
            best: run.tuning.as_ref().map(|t| t.best_value),
            mean: Some(run.deployment.mean),
            std: Some(run.deployment.std),
            min: Some(run.deployment.five.min),
            max: Some(run.deployment.five.max),
            crashes: Some(run.deployment.crashes as u64),
        }
    }

    fn of_trace(label: &str, seed: u64, result: &TuningResult) -> CellRow {
        CellRow {
            label: label.to_string(),
            seed,
            samples: result.total_samples as u64,
            best: Some(result.best_value),
            mean: None,
            std: None,
            min: None,
            max: None,
            crashes: None,
        }
    }
}

/// The durable record of one finished cell: its rows plus their FNV-1a
/// digest.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Cell index within the campaign grid.
    pub cell: usize,
    /// Result rows.
    pub rows: Vec<CellRow>,
    /// FNV-1a digest over the rows ([`CellRecord::compute_checksum`]).
    pub checksum: String,
}

impl CellRecord {
    fn new(cell: usize, rows: Vec<CellRow>) -> Self {
        let checksum = Self::compute_checksum(&rows);
        CellRecord {
            cell,
            rows,
            checksum,
        }
    }

    /// Recomputes the digest from the rows (resume verifies stored
    /// records against this).
    pub fn compute_checksum(rows: &[CellRow]) -> String {
        let mut c = Checksum::new();
        for row in rows {
            row.fold(&mut c);
        }
        c.hex()
    }
}

/// In-memory payload of an executed cell — the rich results the figure
/// binaries post-process (deployment distributions, convergence traces).
/// Cells restored from a store have no payload.
#[derive(Debug, Clone)]
pub enum CellPayload {
    /// A tune-plus-deploy outcome.
    Run(RunSummary),
    /// A TUNA / naive-distributed convergence pair.
    Pair {
        /// The TUNA pipeline's trace.
        tuna: TuningResult,
        /// The naive-distributed trace.
        naive: TuningResult,
    },
}

/// One cell of a finished campaign.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell index.
    pub cell: usize,
    /// Workload axis index.
    pub workload: usize,
    /// Arm axis index.
    pub arm: usize,
    /// Run (seed) index.
    pub run: usize,
    /// Durable record (rows + checksum).
    pub record: CellRecord,
    /// Rich in-memory results; `None` when restored from a store.
    pub payload: Option<CellPayload>,
    /// Whether the cell was skipped because the store already had it.
    pub resumed: bool,
}

/// A finished (or truncated) campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Campaign declaration digest.
    pub digest: String,
    /// Cells in grid order. Truncated runs (a `cell_limit`) only contain
    /// the cells that have records.
    pub cells: Vec<CellResult>,
    /// Whether every grid cell has a record.
    pub complete: bool,
    /// Campaign-level checksum: FNV-1a over per-cell checksums in grid
    /// order (only meaningful when `complete`).
    pub checksum: String,
    /// Cells executed this run.
    pub executed: usize,
    /// Cells restored from the store.
    pub resumed: usize,
}

impl CampaignResult {
    fn find(&self, workload: usize, arm: usize) -> impl Iterator<Item = &CellResult> {
        self.cells
            .iter()
            .filter(move |c| c.workload == workload && c.arm == arm)
    }

    /// The run summaries of a protocol/sample-budget cell group, in run
    /// order. `None` if any cell is missing or carries no payload (e.g.
    /// restored from a store).
    pub fn run_summaries(&self, workload: usize, arm: usize) -> Option<Vec<&RunSummary>> {
        let mut out = Vec::new();
        for cell in self.find(workload, arm) {
            match &cell.payload {
                Some(CellPayload::Run(summary)) => out.push(summary),
                _ => return None,
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// All rows of a cell group, in cell (and therefore run) order.
    pub fn group_rows(&self, workload: usize, arm: usize) -> Vec<&CellRow> {
        self.find(workload, arm)
            .flat_map(|c| c.record.rows.iter())
            .collect()
    }

    /// [`summarize_method`] over a cell group. Computed from payloads when
    /// the cells ran in-process; falls back to the stored rows (which
    /// serialize floats losslessly) for resumed cells, so a fully resumed
    /// protocol campaign prints bit-identical tables.
    pub fn method_summary(&self, workload: usize, arm: usize) -> Option<MethodSummary> {
        if let Some(runs) = self.run_summaries(workload, arm) {
            return Some(summarize_method(
                &runs.into_iter().cloned().collect::<Vec<_>>(),
            ));
        }
        let rows = self.group_rows(workload, arm);
        if rows.is_empty() {
            return None;
        }
        let mut means = Vec::with_capacity(rows.len());
        let mut stds = Vec::with_capacity(rows.len());
        let mut worst = f64::INFINITY;
        let mut best = f64::NEG_INFINITY;
        let mut crashes = 0usize;
        for row in &rows {
            means.push(row.mean?);
            stds.push(row.std?);
            worst = worst.min(row.min?);
            best = best.max(row.max?);
            crashes += row.crashes? as usize;
        }
        Some(MethodSummary {
            mean_of_means: tuna_stats::summary::mean(&means),
            mean_std: tuna_stats::summary::mean(&stds),
            worst,
            best,
            crashes,
            n_runs: rows.len(),
        })
    }

    /// The convergence pairs of an arm, in run order.
    pub fn pairs(
        &self,
        workload: usize,
        arm: usize,
    ) -> Option<Vec<(&TuningResult, &TuningResult)>> {
        let mut out = Vec::new();
        for cell in self.find(workload, arm) {
            match &cell.payload {
                Some(CellPayload::Pair { tuna, naive }) => out.push((tuna, naive)),
                _ => return None,
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

// ---------------------------------------------------------------------------
// Result store
// ---------------------------------------------------------------------------

/// Streamed, checksummed cell storage with resume.
///
/// Backed by a CSV file when opened with [`ResultStore::open`]: finished
/// cells are appended as they complete (in completion order — the
/// journal), and [`ResultStore::finalize`] rewrites the file sorted by
/// cell index plus a JSON mirror next to it. Because rows are pure
/// functions of the campaign declaration, an interrupted-then-resumed
/// campaign finalizes to byte-identical files.
#[derive(Debug)]
pub struct ResultStore {
    path: Option<PathBuf>,
    records: BTreeMap<usize, CellRecord>,
    campaign_digest: String,
    header: String,
    repaired: bool,
}

impl ResultStore {
    /// A store with no backing file (no resume; checksums only).
    pub fn in_memory(campaign: &Campaign) -> Self {
        ResultStore {
            path: None,
            records: BTreeMap::new(),
            campaign_digest: campaign.digest(),
            header: Self::header_line(campaign),
            repaired: false,
        }
    }

    /// Whether [`ResultStore::open`] dropped (and rewrote away) a torn
    /// tail. Observability only — the repair itself is already done.
    pub fn repaired(&self) -> bool {
        self.repaired
    }

    fn header_line(campaign: &Campaign) -> String {
        format!(
            "# tuna-campaign v{STORE_VERSION} name={} seed={} cells={} digest={}",
            campaign.name,
            campaign.seed,
            campaign.n_cells(),
            campaign.digest()
        )
    }

    /// Opens (or creates) a CSV-backed store for `campaign` at `path`.
    /// An existing file is parsed and its cells are skipped on the next
    /// run.
    ///
    /// A journal whose *tail* was torn by a kill mid-append — an
    /// unterminated final line, or a final cell group with fewer rows
    /// than its recipe produces — is repaired, not refused: the torn
    /// tail is dropped (re-executing only that cell on resume) and the
    /// journal is atomically rewritten to its verified prefix so later
    /// appends land on a clean file. Because cells are pure functions
    /// of the declaration, the repaired-and-resumed store finalizes
    /// byte-identically to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns an error when the existing file belongs to a different
    /// campaign declaration (digest mismatch), is malformed *before*
    /// the tail, or fails a per-cell checksum re-verification — torn
    /// tails are repairable, mid-file corruption is not.
    pub fn open(path: impl Into<PathBuf>, campaign: &Campaign) -> Result<Self, String> {
        let path = path.into();
        let mut store = ResultStore {
            path: Some(path.clone()),
            records: BTreeMap::new(),
            campaign_digest: campaign.digest(),
            header: Self::header_line(campaign),
            repaired: false,
        };
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            if store.load(&text, campaign)? {
                store.rewrite_journal(campaign)?;
                store.repaired = true;
                tuna_obs::global()
                    .counter(
                        "tuna_store_repairs_total",
                        "torn result-journal tails dropped and rewritten on open",
                    )
                    .inc();
            }
        } else if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        Ok(store)
    }

    /// Parses journal text into records; returns whether a torn tail
    /// was dropped (so [`ResultStore::open`] knows to rewrite the
    /// file).
    fn load(&mut self, text: &str, campaign: &Campaign) -> Result<bool, String> {
        // A kill mid-append truncates the file at an arbitrary byte, so
        // an unterminated final line is a torn write, never data: a
        // prefix of a row must not be parsed (it could even still look
        // like a row). Every complete line ends in '\n' because the
        // writer emits whole lines.
        let complete = text.rfind('\n').map_or("", |i| &text[..=i]);
        let mut repaired = complete.len() != text.len();

        let mut pending: BTreeMap<usize, (Vec<CellRow>, String)> = BTreeMap::new();
        let mut file_order: Vec<usize> = Vec::new();
        let mut saw_header = false;
        for (lineno, line) in complete.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line == CSV_COLUMNS {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                saw_header = true;
                let digest = rest
                    .split_whitespace()
                    .find_map(|kv| kv.strip_prefix("digest="))
                    .ok_or_else(|| format!("line {}: header lacks digest", lineno + 1))?;
                if digest != self.campaign_digest {
                    return Err(format!(
                        "store digest {digest} does not match campaign '{}' digest {} — \
                         the file belongs to a different declaration; move it aside to start over",
                        campaign.name, self.campaign_digest
                    ));
                }
                continue;
            }
            let (cell, row, checksum) =
                parse_csv_row(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if cell >= campaign.n_cells() {
                return Err(format!("line {}: cell {cell} out of range", lineno + 1));
            }
            let entry = pending.entry(cell).or_insert_with(|| {
                file_order.push(cell);
                (Vec::new(), checksum.clone())
            });
            if entry.1 != checksum {
                return Err(format!(
                    "line {}: cell {cell} rows disagree on their checksum",
                    lineno + 1
                ));
            }
            entry.0.push(row);
        }
        // Rows without a verified header could belong to any declaration
        // whose cell indices happen to fit — refuse rather than resume
        // foreign results.
        if !pending.is_empty() && !saw_header {
            return Err(format!(
                "store has data rows but no '# tuna-campaign ... digest=' header, so it \
                 cannot be verified against campaign '{}'; move it aside to start over",
                campaign.name
            ));
        }
        // The journal is grouped by cell in append order, so only the
        // *last* group can have been torn by a kill: a group short of
        // its recipe's row count there is a repairable tear, anywhere
        // else it is corruption.
        let tail_cell = file_order.last().copied();
        for (cell, (rows, checksum)) in pending {
            let expected_rows = campaign.rows_per_cell(cell);
            if rows.len() < expected_rows && Some(cell) == tail_cell {
                repaired = true;
                continue;
            }
            if rows.len() != expected_rows {
                return Err(format!(
                    "cell {cell}: {} rows where the declaration produces {expected_rows} \
                     (corrupt store)",
                    rows.len()
                ));
            }
            let recomputed = CellRecord::compute_checksum(&rows);
            if recomputed != checksum {
                return Err(format!(
                    "cell {cell}: stored checksum {checksum} != recomputed {recomputed} \
                     (corrupt or hand-edited store)"
                ));
            }
            self.records.insert(
                cell,
                CellRecord {
                    cell,
                    rows,
                    checksum,
                },
            );
        }
        Ok(repaired)
    }

    /// Atomically rewrites the journal to exactly the verified records —
    /// the repair half of torn-tail recovery, so a later append lands on
    /// a clean file instead of concatenating with the torn bytes.
    fn rewrite_journal(&self, campaign: &Campaign) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut csv = String::new();
        csv.push_str(&self.header);
        csv.push('\n');
        csv.push_str(CSV_COLUMNS);
        csv.push('\n');
        for record in self.records.values() {
            write_csv_record(&mut csv, campaign, record);
        }
        write_atomic(path, &csv)
    }

    /// The backing CSV path, if any.
    pub fn csv_path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The JSON mirror path, if file-backed.
    pub fn json_path(&self) -> Option<PathBuf> {
        self.path.as_ref().map(|p| p.with_extension("json"))
    }

    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no cells have completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record of a completed cell.
    pub fn get(&self, cell: usize) -> Option<&CellRecord> {
        self.records.get(&cell)
    }

    /// Records a finished cell, appending it to the journal when
    /// file-backed. The journal line order follows completion order;
    /// [`ResultStore::finalize`] canonicalizes it. Public so external
    /// schedulers (the serve daemon) can stream cells they executed via
    /// [`execute_cell`] into the same store format the runner writes.
    pub fn record(&mut self, campaign: &Campaign, record: CellRecord) {
        if let Some(path) = &self.path {
            let mut text = String::new();
            // Write the header before the first row of a fresh journal —
            // including a pre-created empty file, which has no header yet
            // (journals without one are refused on load).
            let file_is_empty = path.metadata().map_or(true, |m| m.len() == 0);
            if self.records.is_empty() && file_is_empty {
                text.push_str(&self.header);
                text.push('\n');
                text.push_str(CSV_COLUMNS);
                text.push('\n');
            }
            write_csv_record(&mut text, campaign, &record);
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = f.write_all(text.as_bytes());
            }
        }
        self.records.insert(record.cell, record);
    }

    /// Campaign-level checksum: FNV-1a over per-cell checksums in cell
    /// order.
    pub fn campaign_checksum(&self) -> String {
        let mut c = Checksum::new();
        for record in self.records.values() {
            c.push_u64(record.cell as u64);
            c.push_str(&record.checksum);
        }
        c.hex()
    }

    /// Rewrites the CSV sorted by cell index and writes the JSON mirror.
    /// Idempotent; called by the runner after every (possibly truncated)
    /// run so interrupted stores stay canonical.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn finalize(&self, campaign: &Campaign) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut csv = String::new();
        csv.push_str(&self.header);
        csv.push('\n');
        csv.push_str(CSV_COLUMNS);
        csv.push('\n');
        for record in self.records.values() {
            write_csv_record(&mut csv, campaign, record);
        }
        // Atomic replace (write-temp-then-rename): an interrupt during
        // finalize must not destroy the journal of completed cells —
        // surviving interrupts is this store's whole point.
        write_atomic(path, &csv)?;
        let json_path = self.json_path().expect("file-backed store");
        write_atomic(&json_path, &self.to_json(campaign))?;
        Ok(())
    }

    /// Serializes the store to the canonical JSON layout (fixed schema,
    /// lossless floats, the shared [`tuna_stats::json`] writer — no
    /// serde).
    pub fn to_json(&self, campaign: &Campaign) -> String {
        use tuna_stats::json::fmt_opt_f64 as opt_f64;
        let complete = self.records.len() == campaign.n_cells();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {STORE_VERSION},\n"));
        out.push_str(&format!("  \"name\": {},\n", json_quote(&campaign.name)));
        out.push_str(&format!("  \"seed\": {},\n", campaign.seed));
        out.push_str(&format!("  \"digest\": \"{}\",\n", self.campaign_digest));
        out.push_str(&format!("  \"cells\": {},\n", campaign.n_cells()));
        out.push_str(&format!("  \"completed\": {},\n", self.records.len()));
        out.push_str(&format!(
            "  \"checksum\": {},\n",
            if complete {
                format!("\"{}\"", self.campaign_checksum())
            } else {
                "null".to_string()
            }
        ));
        out.push_str("  \"rows\": [\n");
        let total_rows: usize = self.records.values().map(|r| r.rows.len()).sum();
        let mut i = 0usize;
        for record in self.records.values() {
            let (w, a, run) = campaign.coords(record.cell);
            for row in &record.rows {
                i += 1;
                out.push_str(&format!(
                    "    {{\"cell\": {}, \"workload\": {}, \"arm\": {}, \
                     \"label\": {}, \"run\": {}, \"seed\": {}, \"samples\": {}, \
                     \"best\": {}, \"mean\": {}, \"std\": {}, \"min\": {}, \"max\": {}, \
                     \"crashes\": {}, \"checksum\": \"{}\"}}{}\n",
                    record.cell,
                    json_quote(campaign.workloads[w].name),
                    json_quote(&campaign.arms[a].label),
                    json_quote(&row.label),
                    run,
                    row.seed,
                    row.samples,
                    opt_f64(row.best),
                    opt_f64(row.mean),
                    opt_f64(row.std),
                    opt_f64(row.min),
                    opt_f64(row.max),
                    row.crashes.map_or("null".to_string(), |c| c.to_string()),
                    record.checksum,
                    if i == total_rows { "" } else { "," }
                ));
            }
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Writes `text` to `path` via a sibling temp file plus rename, so an
/// interrupt mid-write leaves the previous file intact. Shared with the
/// serve daemon's spec/marker persistence — crash-safety code should
/// have one implementation.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        )
    })
}

// Quoting of identifiers in the JSON mirror (labels exclude
// commas/newlines but not quotes) goes through the shared writer.
use tuna_stats::json::quote as json_quote;

const CSV_COLUMNS: &str =
    "cell,workload,arm,label,run,seed,samples,best,mean,std,min,max,crashes,checksum";

fn write_csv_record(out: &mut String, campaign: &Campaign, record: &CellRecord) {
    fn opt_f64(v: Option<f64>) -> String {
        v.map_or(String::new(), |x| format!("{x:?}"))
    }
    let (w, a, run) = campaign.coords(record.cell);
    for row in &record.rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            record.cell,
            campaign.workloads[w].name,
            campaign.arms[a].label,
            row.label,
            run,
            row.seed,
            row.samples,
            opt_f64(row.best),
            opt_f64(row.mean),
            opt_f64(row.std),
            opt_f64(row.min),
            opt_f64(row.max),
            row.crashes.map_or(String::new(), |c| c.to_string()),
            record.checksum,
        ));
    }
}

fn parse_csv_row(line: &str) -> Result<(usize, CellRow, String), String> {
    fn opt_f64(s: &str) -> Result<Option<f64>, String> {
        if s.is_empty() {
            Ok(None)
        } else {
            s.parse().map(Some).map_err(|_| format!("bad float {s:?}"))
        }
    }
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 14 {
        return Err(format!("expected 14 fields, found {}", fields.len()));
    }
    let cell: usize = fields[0]
        .parse()
        .map_err(|_| format!("bad cell index {:?}", fields[0]))?;
    let row = CellRow {
        label: fields[3].to_string(),
        seed: fields[5]
            .parse()
            .map_err(|_| format!("bad seed {:?}", fields[5]))?,
        samples: fields[6]
            .parse()
            .map_err(|_| format!("bad samples {:?}", fields[6]))?,
        best: opt_f64(fields[7])?,
        mean: opt_f64(fields[8])?,
        std: opt_f64(fields[9])?,
        min: opt_f64(fields[10])?,
        max: opt_f64(fields[11])?,
        crashes: if fields[12].is_empty() {
            None
        } else {
            Some(
                fields[12]
                    .parse()
                    .map_err(|_| format!("bad crashes {:?}", fields[12]))?,
            )
        },
    };
    Ok((cell, row, fields[13].to_string()))
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Executes a campaign's cells, work-stealing whole cells across worker
/// threads.
#[derive(Debug, Clone, Copy)]
pub struct CampaignRunner {
    /// Cell-level execution mode: [`ExecutionMode::Serial`] runs cells in
    /// grid order on the calling thread; `Parallel { workers }` lets up to
    /// `workers` threads claim cells from a shared cursor. Results and
    /// store contents are bit-identical either way.
    pub mode: ExecutionMode,
    /// Stop after this many *newly executed* cells (checkpointing /
    /// interrupt simulation). `None` runs the whole grid.
    pub cell_limit: Option<usize>,
}

impl CampaignRunner {
    /// A serial runner.
    pub fn serial() -> Self {
        CampaignRunner {
            mode: ExecutionMode::Serial,
            cell_limit: None,
        }
    }

    /// A runner whose cell-level worker count comes from `TUNA_WORKERS`
    /// (the same knob the trial executor reads; campaigns scale across
    /// cells instead of within rounds).
    pub fn from_env() -> Self {
        CampaignRunner {
            mode: ExecutionMode::from_env(),
            cell_limit: None,
        }
    }

    /// A runner with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        CampaignRunner {
            mode: if workers > 1 {
                ExecutionMode::Parallel { workers }
            } else {
                ExecutionMode::Serial
            },
            cell_limit: None,
        }
    }

    /// Caps the number of cells executed this run.
    pub fn with_cell_limit(mut self, limit: usize) -> Self {
        self.cell_limit = Some(limit);
        self
    }

    /// Runs every cell of `campaign` that `store` does not already hold,
    /// streams finished cells into the store, finalizes it, and returns
    /// the combined result in grid order.
    ///
    /// # Panics
    ///
    /// Panics if a cell's recipe is inconsistent with the grid (e.g. a
    /// ladder that exceeds its cluster), or (propagated) if a SuT panics.
    pub fn run(&self, campaign: &Campaign, store: &mut ResultStore) -> CampaignResult {
        assert_eq!(
            store.campaign_digest,
            campaign.digest(),
            "store was opened for a different campaign declaration"
        );
        let n_cells = campaign.n_cells();
        let pending: Vec<usize> = (0..n_cells).filter(|i| store.get(*i).is_none()).collect();
        let to_run: Vec<usize> = match self.cell_limit {
            Some(limit) => pending.iter().copied().take(limit).collect(),
            None => pending,
        };
        let resumed_before = store.len();

        // Trials inside campaign cells always execute serially: the
        // campaign's scaling axis is the grid, and the executor's
        // serial-equivalence contract makes this numerically irrelevant.
        let inner = ExecutionMode::Serial;
        let workers = self.mode.workers().min(to_run.len().max(1));
        let executed: Vec<(usize, CellRecord, CellPayload)> = if workers <= 1 {
            let mut out = Vec::with_capacity(to_run.len());
            for &cell in &to_run {
                let (record, payload) = execute_cell(campaign, cell, inner);
                store.record(campaign, record.clone());
                out.push((cell, record, payload));
            }
            out
        } else {
            let cursor = AtomicUsize::new(0);
            let shared_store = Mutex::new(&mut *store);
            let mut harvests: Vec<Vec<(usize, CellRecord, CellPayload)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            let cursor = &cursor;
                            let to_run = &to_run;
                            let shared_store = &shared_store;
                            scope.spawn(move || {
                                let mut produced = Vec::new();
                                loop {
                                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                                    let Some(&cell) = to_run.get(i) else {
                                        break;
                                    };
                                    let (record, payload) = execute_cell(campaign, cell, inner);
                                    shared_store
                                        .lock()
                                        .expect("store mutex poisoned")
                                        .record(campaign, record.clone());
                                    produced.push((cell, record, payload));
                                }
                                produced
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("campaign worker panicked"))
                        .collect()
                });
            let mut out: Vec<(usize, CellRecord, CellPayload)> = Vec::with_capacity(to_run.len());
            for harvest in &mut harvests {
                out.append(harvest);
            }
            out
        };
        let executed_count = executed.len();
        let mut payloads: BTreeMap<usize, CellPayload> = BTreeMap::new();
        for (cell, _, payload) in executed {
            payloads.insert(cell, payload);
        }

        if let Err(e) = store.finalize(campaign) {
            eprintln!("campaign '{}': store finalize failed: {e}", campaign.name);
        }

        let mut cells = Vec::with_capacity(store.len());
        for (&cell, record) in &store.records {
            let (workload, arm, run) = campaign.coords(cell);
            let payload = payloads.remove(&cell);
            let resumed = payload.is_none();
            cells.push(CellResult {
                cell,
                workload,
                arm,
                run,
                record: record.clone(),
                payload,
                resumed,
            });
        }
        let complete = cells.len() == n_cells;
        CampaignResult {
            digest: campaign.digest(),
            checksum: store.campaign_checksum(),
            cells,
            complete,
            executed: executed_count,
            resumed: resumed_before,
        }
    }
}

// ---------------------------------------------------------------------------
// Cell execution
// ---------------------------------------------------------------------------

/// Runs one cell. Pure function of `(campaign, cell)` — all randomness is
/// derived from the campaign seed and the cell coordinates, never from
/// shared mutable state, so any execution order (and any worker count)
/// produces identical records. Public so external schedulers (the serve
/// daemon's fair-share multiplexer) can execute cells out of band and
/// [`ResultStore::record`] them.
pub fn execute_cell(
    campaign: &Campaign,
    cell: usize,
    inner: ExecutionMode,
) -> (CellRecord, CellPayload) {
    let (w, a, run) = campaign.coords(cell);
    let arm = &campaign.arms[a];
    let exp = campaign.experiment(w, inner);
    match &arm.recipe {
        Recipe::Protocol { method, seed_salt } => {
            let base = match seed_salt {
                None => campaign.seed,
                Some(salt) => hash_combine(campaign.seed, *salt),
            };
            let seed = hash_combine(base, run as u64);
            let summary = exp.run(*method, seed);
            let rows = vec![CellRow::of_summary(&arm.label, seed, &summary)];
            (CellRecord::new(cell, rows), CellPayload::Run(summary))
        }
        Recipe::SampleBudget(spec) => {
            let seed = hash_combine(campaign.seed, spec.seed_salt + run as u64);
            let summary = run_sample_budget(&exp, spec, seed, inner);
            let rows = vec![CellRow::of_summary(&arm.label, seed, &summary)];
            (CellRecord::new(cell, rows), CellPayload::Run(summary))
        }
        Recipe::Convergence(spec) => {
            let seed = hash_combine(campaign.seed, spec.seed_salt + run as u64);
            let (tuna, naive) = run_convergence(&exp, spec, seed, inner);
            let rows = vec![
                CellRow::of_trace("TUNA", seed, &tuna),
                CellRow::of_trace("naive", seed, &naive),
            ];
            (
                CellRecord::new(cell, rows),
                CellPayload::Pair { tuna, naive },
            )
        }
        Recipe::Arena(spec) => {
            let seed = hash_combine(hash_combine(campaign.seed, spec.seed_salt()), run as u64);
            let summary = run_arena_cell(&exp, spec, seed, inner);
            let rows = vec![CellRow::of_summary(&arm.label, seed, &summary)];
            (CellRecord::new(cell, rows), CellPayload::Run(summary))
        }
    }
}

/// Extracts the convergence trace of a freshly executed cell: one
/// best-cost-so-far series per tuner that ran (two for convergence
/// pairs, none for non-tuning arms such as a static default config).
/// This is what the serve layer appends to a study's trace sidecar —
/// the payload only exists in memory at completion time.
///
/// # Panics
///
/// Panics if `cell` is out of range for `campaign`.
pub fn cell_trace(campaign: &Campaign, cell: usize, payload: &CellPayload) -> tuna_obs::CellTrace {
    fn series_of(label: &str, t: &TuningResult) -> tuna_obs::ArmTrace {
        tuna_obs::ArmTrace {
            label: label.to_string(),
            series: t
                .trace
                .iter()
                .filter_map(|ir| ir.best_so_far.map(|b| (ir.round as u64, b)))
                .collect(),
        }
    }
    let (w, a, run) = campaign.coords(cell);
    let arms = match payload {
        CellPayload::Run(summary) => match &summary.tuning {
            Some(t) => vec![series_of(summary.method, t)],
            None => Vec::new(),
        },
        CellPayload::Pair { tuna, naive } => {
            vec![series_of("TUNA", tuna), series_of("naive", naive)]
        }
    };
    tuna_obs::CellTrace {
        cell: cell as u64,
        workload: campaign.workloads[w].name.to_string(),
        arm: campaign.arms[a].label.clone(),
        run: run as u64,
        arms,
    }
}

/// The pinned equal-cost/ablation pipeline: the §6.5.1 driver loop with
/// the spec's overrides applied, then a deployment of the winner.
fn run_sample_budget(
    exp: &Experiment,
    spec: &SampleBudgetSpec,
    seed: u64,
    inner: ExecutionMode,
) -> RunSummary {
    let sut = exp.make_sut();
    let cluster_size = spec.cluster.as_ref().map_or(exp.cluster_size, |c| c.size);
    let ladder = spec
        .cluster
        .as_ref()
        .map_or_else(LadderParams::paper_default, |c| c.ladder.clone());
    let base = Cluster::new(cluster_size, exp.sku.clone(), exp.region.clone(), seed);
    let mut rng = Rng::seed_from(hash_combine(seed, spec.rng_label));
    let crash_penalty = default_worst_case_with(inner, sut.as_ref(), &exp.workload, &base, &rng);

    let mut cfg = TunaConfig::paper_default(crash_penalty);
    cfg.mode = inner;
    cfg.cluster_size = cluster_size;
    cfg.ladder = ladder.clone();
    if let Some(aggregation) = spec.aggregation {
        cfg.aggregation = aggregation;
    }
    if let Some(threshold) = spec.outlier_threshold {
        cfg.outlier_threshold = threshold;
    }
    let mut params = exp.solver_params(true);
    params.ladder = ladder;
    let optimizer = exp
        .optimizer
        .build(sut.space().clone(), exp.objective(), &params);
    let mut pipeline = TunaPipeline::new(cfg, sut.as_ref(), &exp.workload, optimizer, base.clone());
    pipeline.run_until_samples(spec.samples, &mut rng);
    let result = pipeline.finish();
    let deployment = evaluate_deployment_with(
        inner,
        sut.as_ref(),
        &exp.workload,
        &result.best_config,
        &base,
        spec.deploy_label,
        exp.deploy_vms,
        exp.deploy_repeats,
        crash_penalty,
        &rng,
    );
    RunSummary {
        method: "campaign",
        best_config: result.best_config.clone(),
        tuning: Some(result),
        deployment,
    }
}

/// The §6.5.2 convergence pair: a TUNA pipeline and a naive-distributed
/// run sharing one RNG stream (pipeline first), as the historical
/// Figure 17 driver derived them.
fn run_convergence(
    exp: &Experiment,
    spec: &ConvergenceSpec,
    seed: u64,
    inner: ExecutionMode,
) -> (TuningResult, TuningResult) {
    let sut = exp.make_sut();
    let base = Cluster::new(exp.cluster_size, exp.sku.clone(), exp.region.clone(), seed);
    let mut rng = Rng::seed_from(hash_combine(seed, spec.rng_label));
    let crash_penalty = default_worst_case_with(inner, sut.as_ref(), &exp.workload, &base, &rng);

    let optimizer = exp.optimizer.build(
        sut.space().clone(),
        exp.objective(),
        &exp.solver_params(true),
    );
    let mut cfg = TunaConfig::paper_default(crash_penalty);
    cfg.mode = inner;
    let mut pipeline = TunaPipeline::new(cfg, sut.as_ref(), &exp.workload, optimizer, base.clone());
    pipeline.run_until_samples(spec.samples, &mut rng);
    let tuna = pipeline.finish();

    let naive_opt = exp.optimizer.build(
        sut.space().clone(),
        exp.objective(),
        &exp.solver_params(false),
    );
    let naive = run_naive_distributed(
        inner,
        sut.as_ref(),
        &exp.workload,
        naive_opt,
        base,
        spec.samples,
        crash_penalty,
        &mut rng,
    );
    (tuna, naive)
}

/// One arena cell: region override, then either the full TUNA pipeline
/// (the [`ArenaSpec::TUNA`] sentinel) or [`run_arena`] with the named
/// registry solver on a single-machine arena, then a deployment of the
/// winner — so arena rows carry the same deploy statistics as protocol
/// rows and land in the same store columns.
fn run_arena_cell(
    exp: &Experiment,
    spec: &ArenaSpec,
    seed: u64,
    inner: ExecutionMode,
) -> RunSummary {
    // RNG labels for the arena recipe's independent streams.
    const ARENA_CLUSTER_LABEL: u64 = 0xA7_0001;
    const ARENA_RNG_LABEL: u64 = 0xA7_0002;
    const ARENA_MATCH_LABEL: u64 = 0xA7_0003;
    const ARENA_DEPLOY_LABEL: u64 = 0xA7_0004;

    let mut exp = exp.clone();
    exp.region = Region::by_name(&spec.region)
        .unwrap_or_else(|| panic!("arena cell: unknown region {:?}", spec.region));
    let sut = exp.make_sut();
    let base = Cluster::new(
        exp.cluster_size,
        exp.sku.clone(),
        exp.region.clone(),
        hash_combine(seed, ARENA_CLUSTER_LABEL),
    );
    let mut rng = Rng::seed_from(hash_combine(seed, ARENA_RNG_LABEL));
    let crash_penalty = default_worst_case_with(inner, sut.as_ref(), &exp.workload, &base, &rng);

    let (best_config, tuning) = if spec.solver == ArenaSpec::TUNA {
        let mut cfg = TunaConfig::paper_default(crash_penalty);
        cfg.mode = inner;
        cfg.cluster_size = exp.cluster_size;
        let optimizer = SolverId::smac().build(
            sut.space().clone(),
            exp.objective(),
            &exp.solver_params(true),
        );
        let mut pipeline =
            TunaPipeline::new(cfg, sut.as_ref(), &exp.workload, optimizer, base.clone());
        pipeline.run_until_samples(spec.samples, &mut rng);
        let result = pipeline.finish();
        (result.best_config.clone(), result)
    } else {
        let id = SolverId::new(&spec.solver).unwrap_or_else(|e| panic!("arena cell: {e}"));
        let match_size = id.capabilities().match_size;
        let solver = id.build(
            sut.space().clone(),
            exp.objective(),
            &exp.solver_params(false),
        );
        // Matches play on one machine so both sides share its noise draw.
        let arena = Cluster::new(
            1,
            exp.sku.clone(),
            exp.region.clone(),
            hash_combine(seed, ARENA_MATCH_LABEL),
        );
        let result = run_arena(
            sut.as_ref(),
            &exp.workload,
            solver,
            arena,
            spec.samples,
            match_size,
            crash_penalty,
            &mut rng,
        );
        (result.best_config.clone(), result)
    };

    let deployment = evaluate_deployment_with(
        inner,
        sut.as_ref(),
        &exp.workload,
        &best_config,
        &base,
        ARENA_DEPLOY_LABEL,
        exp.deploy_vms,
        exp.deploy_repeats,
        crash_penalty,
        &rng,
    );
    RunSummary {
        method: "arena",
        best_config,
        tuning: Some(tuning),
        deployment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign(name: &str) -> Campaign {
        Campaign::protocol(
            name,
            5,
            vec![tuna_workloads::tpcc()],
            &[("TUNA", Method::Tuna), ("Default", Method::DefaultConfig)],
        )
        .with_runs(2)
        .with_rounds(3)
    }

    #[test]
    fn coords_roundtrip() {
        let c = tiny_campaign("coords");
        assert_eq!(c.n_cells(), 4);
        assert_eq!(c.coords(0), (0, 0, 0));
        assert_eq!(c.coords(1), (0, 0, 1));
        assert_eq!(c.coords(2), (0, 1, 0));
        assert_eq!(c.coords(3), (0, 1, 1));
    }

    #[test]
    fn digest_tracks_declaration() {
        let a = tiny_campaign("digest");
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.runs = 3;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.arms[0] = Arm::new(
            "TUNA",
            Recipe::Protocol {
                method: Method::Tuna,
                seed_salt: Some(7),
            },
        );
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    #[should_panic(expected = "must not contain commas")]
    fn comma_labels_rejected() {
        Arm::new("a,b", Recipe::protocol(Method::Tuna));
    }

    #[test]
    fn protocol_cells_match_run_many() {
        let campaign = tiny_campaign("protocol");
        let mut store = ResultStore::in_memory(&campaign);
        let result = CampaignRunner::serial().run(&campaign, &mut store);
        assert!(result.complete);
        assert_eq!(result.executed, 4);

        // Cell (0, arm 0, run 1) must equal Experiment::run_many's second
        // run bit-for-bit.
        let mut exp = Experiment::paper_default(tuna_workloads::tpcc());
        exp.rounds = 3;
        exp.exec = ExecutionMode::Serial;
        let direct = exp.run_many(Method::Tuna, 2, 5);
        let summaries = result.run_summaries(0, 0).expect("payloads present");
        assert_eq!(summaries.len(), 2);
        for (got, want) in summaries.iter().zip(&direct) {
            assert_eq!(got.deployment.values, want.deployment.values);
            assert_eq!(got.best_config, want.best_config);
        }
        let ms = result.method_summary(0, 0).unwrap();
        assert!(ms.n_runs == 2 && ms.mean_of_means > 0.0);
    }

    #[test]
    fn serial_and_parallel_checksums_match() {
        let campaign = tiny_campaign("modes");
        let mut serial_store = ResultStore::in_memory(&campaign);
        let serial = CampaignRunner::serial().run(&campaign, &mut serial_store);
        for workers in [2, 4] {
            let mut par_store = ResultStore::in_memory(&campaign);
            let par = CampaignRunner::with_workers(workers).run(&campaign, &mut par_store);
            assert_eq!(serial.checksum, par.checksum, "workers={workers}");
            for (s, p) in serial.cells.iter().zip(&par.cells) {
                assert_eq!(s.record, p.record, "workers={workers} cell {}", s.cell);
            }
        }
    }

    #[test]
    fn store_roundtrip_and_resume() {
        let campaign = tiny_campaign("resume");
        let dir = std::env::temp_dir().join(format!("tuna-campaign-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("resume/campaign.csv");

        // Uninterrupted reference.
        let ref_path = dir.join("reference/campaign.csv");
        let mut ref_store = ResultStore::open(&ref_path, &campaign).unwrap();
        let reference = CampaignRunner::serial().run(&campaign, &mut ref_store);

        // Interrupted after 1 cell, then resumed.
        let mut store = ResultStore::open(&path, &campaign).unwrap();
        let partial = CampaignRunner::serial()
            .with_cell_limit(1)
            .run(&campaign, &mut store);
        assert!(!partial.complete);
        assert_eq!(partial.executed, 1);
        drop(store);

        let mut store = ResultStore::open(&path, &campaign).unwrap();
        assert_eq!(store.len(), 1);
        let resumed = CampaignRunner::serial().run(&campaign, &mut store);
        assert!(resumed.complete);
        assert_eq!(resumed.executed, 3);
        assert_eq!(resumed.resumed, 1);
        assert_eq!(resumed.checksum, reference.checksum);

        // Byte-identical files.
        let a = std::fs::read_to_string(&ref_path).unwrap();
        let b = std::fs::read_to_string(&path).unwrap();
        assert_eq!(a, b, "resumed CSV differs from uninterrupted CSV");
        let aj = std::fs::read_to_string(ref_path.with_extension("json")).unwrap();
        let bj = std::fs::read_to_string(path.with_extension("json")).unwrap();
        assert_eq!(aj, bj, "resumed JSON differs from uninterrupted JSON");

        // A fully resumed campaign executes nothing and keeps the files.
        let mut store = ResultStore::open(&path, &campaign).unwrap();
        let replay = CampaignRunner::serial().run(&campaign, &mut store);
        assert!(replay.complete);
        assert_eq!(replay.executed, 0);
        assert_eq!(replay.checksum, reference.checksum);
        assert!(replay.cells.iter().all(|c| c.resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_store_is_refused() {
        let campaign = tiny_campaign("original");
        let dir =
            std::env::temp_dir().join(format!("tuna-campaign-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign.csv");
        let mut store = ResultStore::open(&path, &campaign).unwrap();
        CampaignRunner::serial()
            .with_cell_limit(1)
            .run(&campaign, &mut store);
        drop(store);

        let other = tiny_campaign("original").with_runs(3);
        let err = ResultStore::open(&path, &other).unwrap_err();
        assert!(err.contains("different declaration"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_store_is_refused() {
        let campaign = tiny_campaign("corrupt");
        let dir =
            std::env::temp_dir().join(format!("tuna-campaign-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign.csv");
        let mut store = ResultStore::open(&path, &campaign).unwrap();
        CampaignRunner::serial()
            .with_cell_limit(1)
            .run(&campaign, &mut store);
        drop(store);

        // The arm and label columns are both "TUNA"; only the label
        // feeds the cell checksum, so tamper the adjacent pair.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("TUNA,TUNA", "TUNA,TUNX", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        let err = ResultStore::open(&path, &campaign).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A two-cell campaign whose first cell journals *two* rows (a
    /// convergence pair) and whose second journals one — so torn tails
    /// can land mid-group, not just mid-line.
    fn torn_campaign(name: &str) -> Campaign {
        let mut campaign = tiny_campaign(name);
        campaign.arms = vec![
            Arm::new(
                "pair",
                Recipe::Convergence(ConvergenceSpec {
                    samples: 10,
                    seed_salt: 41,
                    rng_label: 3,
                }),
            ),
            Arm::new("Default", Recipe::protocol(Method::DefaultConfig)),
        ];
        campaign.runs = 1;
        campaign
    }

    #[test]
    fn torn_tail_is_repaired_at_every_byte_offset() {
        let campaign = torn_campaign("torn");
        let dir = std::env::temp_dir().join(format!("tuna-campaign-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted reference run (also caches the pure per-cell
        // records, so each truncation below resumes from the journal
        // write path without paying for re-execution).
        let ref_path = dir.join("reference.csv");
        let mut ref_store = ResultStore::open(&ref_path, &campaign).unwrap();
        let result = CampaignRunner::serial().run(&campaign, &mut ref_store);
        assert!(result.complete);
        let records: Vec<CellRecord> = (0..campaign.n_cells())
            .map(|c| ref_store.get(c).expect("complete run").clone())
            .collect();
        let ref_csv = std::fs::read_to_string(&ref_path).unwrap();
        let ref_json = std::fs::read_to_string(ref_path.with_extension("json")).unwrap();

        // Kill at every byte offset: the truncated journal must open
        // (repair, not refuse), keep only verified whole cells, and
        // after re-recording the lost cells finalize byte-identically.
        let path = dir.join("truncated.csv");
        for offset in 0..=ref_csv.len() {
            let _ = std::fs::remove_file(path.with_extension("json"));
            std::fs::write(&path, &ref_csv.as_bytes()[..offset]).unwrap();
            let mut store = ResultStore::open(&path, &campaign)
                .unwrap_or_else(|e| panic!("offset {offset}: refused instead of repaired: {e}"));
            for (cell, record) in records.iter().enumerate() {
                if let Some(kept) = store.get(cell) {
                    assert_eq!(kept, record, "offset {offset}: kept cell {cell} differs");
                } else {
                    store.record(&campaign, record.clone());
                }
            }
            store.finalize(&campaign).unwrap();
            assert_eq!(
                std::fs::read_to_string(&path).unwrap(),
                ref_csv,
                "offset {offset}: resumed CSV differs from uninterrupted"
            );
            assert_eq!(
                std::fs::read_to_string(path.with_extension("json")).unwrap(),
                ref_json,
                "offset {offset}: resumed JSON differs from uninterrupted"
            );
        }

        // Spot-check the repair boundary: cutting the final byte tears
        // only the tail cell; the complete first cell survives.
        std::fs::write(&path, &ref_csv.as_bytes()[..ref_csv.len() - 1]).unwrap();
        let store = ResultStore::open(&path, &campaign).unwrap();
        assert_eq!(store.len(), 1, "only the torn tail cell is lost");
        assert!(store.get(0).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_resume_reexecutes_only_the_lost_cell() {
        let campaign = torn_campaign("torn-rerun");
        let dir =
            std::env::temp_dir().join(format!("tuna-campaign-torn-rerun-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ref_path = dir.join("reference.csv");
        let mut ref_store = ResultStore::open(&ref_path, &campaign).unwrap();
        CampaignRunner::serial().run(&campaign, &mut ref_store);
        let ref_csv = std::fs::read_to_string(&ref_path).unwrap();

        // Tear mid-way through the *last* cell's line: the first cell's
        // pair is intact and must be kept, the tail cell re-executes.
        let path = dir.join("torn.csv");
        std::fs::write(&path, &ref_csv.as_bytes()[..ref_csv.len() - 3]).unwrap();
        let mut store = ResultStore::open(&path, &campaign).unwrap();
        assert_eq!(store.len(), 1);
        let resumed = CampaignRunner::serial().run(&campaign, &mut store);
        assert!(resumed.complete);
        assert_eq!(resumed.executed, 1, "only the torn cell re-executes");
        assert_eq!(resumed.resumed, 1);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_csv);
        assert_eq!(
            std::fs::read_to_string(path.with_extension("json")).unwrap(),
            std::fs::read_to_string(ref_path.with_extension("json")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_group_mid_file_is_still_refused() {
        let campaign = torn_campaign("torn-midfile");
        let dir =
            std::env::temp_dir().join(format!("tuna-campaign-midfile-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign.csv");
        let mut store = ResultStore::open(&path, &campaign).unwrap();
        CampaignRunner::serial().run(&campaign, &mut store);
        drop(store);

        // Delete the second row of the first cell's pair: the group is
        // short *before* the journal tail, which no kill-during-append
        // can produce — that is corruption and must be refused.
        let text = std::fs::read_to_string(&path).unwrap();
        let gutted: String = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert_ne!(text, gutted);
        std::fs::write(&path, gutted).unwrap();
        let err = ResultStore::open(&path, &campaign).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_journal_is_refused_but_empty_precreated_file_works() {
        let campaign = tiny_campaign("headerless");
        let dir =
            std::env::temp_dir().join(format!("tuna-campaign-headerless-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // A pre-created *empty* file still gets a header on first record.
        let empty = dir.join("empty.csv");
        std::fs::write(&empty, "").unwrap();
        let mut store = ResultStore::open(&empty, &campaign).unwrap();
        CampaignRunner::serial()
            .with_cell_limit(1)
            .run(&campaign, &mut store);
        drop(store);
        let text = std::fs::read_to_string(&empty).unwrap();
        assert!(text.starts_with("# tuna-campaign"), "{text}");
        assert!(ResultStore::open(&empty, &campaign).is_ok());

        // Data rows with the header stripped cannot be verified against
        // any declaration and must be refused.
        let headerless: String = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        let stripped = dir.join("stripped.csv");
        std::fs::write(&stripped, headerless).unwrap();
        let err = ResultStore::open(&stripped, &campaign).unwrap_err();
        assert!(err.contains("no '# tuna-campaign"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_mirror_escapes_labels() {
        assert_eq!(super::json_quote("plain"), "\"plain\"");
        assert_eq!(super::json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(super::json_quote("tab\there"), "\"tab\\there\"");

        let mut campaign = tiny_campaign("json-escape");
        campaign.name = "quoted \"name\"".to_string();
        campaign.runs = 1;
        campaign.arms = vec![Arm::new(
            "p=\"0.5\"",
            Recipe::protocol(Method::DefaultConfig),
        )];
        let mut store = ResultStore::in_memory(&campaign);
        CampaignRunner::serial().run(&campaign, &mut store);
        let json = store.to_json(&campaign);
        assert!(json.contains("\"name\": \"quoted \\\"name\\\"\""), "{json}");
        assert!(json.contains("\"arm\": \"p=\\\"0.5\\\"\""), "{json}");
    }

    #[test]
    fn digest_tracks_ladder_shape() {
        let spec = |eta: usize, min_rung: usize| {
            let mut c = tiny_campaign("ladder");
            c.arms = vec![Arm::new(
                "shape",
                Recipe::SampleBudget(SampleBudgetSpec {
                    cluster: Some(ClusterShape {
                        size: 5,
                        ladder: LadderParams {
                            budgets: vec![1, 2, 5],
                            eta,
                            min_rung_size: min_rung,
                        },
                    }),
                    ..SampleBudgetSpec::new(25, 1, 2, 3)
                }),
            )];
            c
        };
        assert_eq!(spec(3, 3).digest(), spec(3, 3).digest());
        assert_ne!(spec(3, 3).digest(), spec(2, 3).digest());
        assert_ne!(spec(3, 3).digest(), spec(3, 5).digest());
    }

    fn tiny_arena(name: &str) -> Campaign {
        Campaign::arena(
            name,
            9,
            vec![tuna_workloads::tpcc()],
            &["westus2", "centralus"],
            &["tuna", "smac", "gp", "random", "tournament"],
            16,
        )
    }

    #[test]
    fn arena_grid_crosses_regions_and_solvers() {
        let c = tiny_arena("arena-grid");
        assert_eq!(c.n_cells(), 2 * 5);
        assert_eq!(c.arms[0].label, "westus2/tuna");
        assert_eq!(c.arms[9].label, "centralus/tournament");
        // Every (region, solver) pair derives a distinct seed salt.
        let mut salts: Vec<u64> = c
            .arms
            .iter()
            .map(|a| match &a.recipe {
                Recipe::Arena(s) => s.seed_salt(),
                _ => unreachable!(),
            })
            .collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), c.arms.len(), "arena seed salts collide");
        // The digest distinguishes arena declarations.
        let mut other = c.clone();
        other.arms[0] = Arm::new("x", Recipe::Arena(ArenaSpec::new("smac", "eastus", 16)));
        assert_ne!(c.digest(), other.digest());
    }

    #[test]
    #[should_panic(expected = "unknown solver")]
    fn arena_unknown_solver_rejected() {
        ArenaSpec::new("adam", "westus2", 8);
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn arena_unknown_region_rejected() {
        ArenaSpec::new("smac", "marsnorth1", 8);
    }

    #[test]
    fn arena_campaign_is_bit_identical_across_worker_counts() {
        let campaign = tiny_arena("arena-workers");
        let mut serial_store = ResultStore::in_memory(&campaign);
        let serial = CampaignRunner::serial().run(&campaign, &mut serial_store);
        assert!(serial.complete);
        assert!(serial
            .cells
            .iter()
            .all(|c| { c.record.rows[0].mean.is_some_and(|m| m.is_finite()) }));
        let mut par_store = ResultStore::in_memory(&campaign);
        let par = CampaignRunner::with_workers(4).run(&campaign, &mut par_store);
        assert_eq!(serial.checksum, par.checksum);
        for (s, p) in serial.cells.iter().zip(&par.cells) {
            assert_eq!(s.record, p.record, "cell {}", s.cell);
        }
    }

    #[test]
    fn convergence_cells_produce_pairs() {
        let mut campaign = tiny_campaign("pairs");
        campaign.arms = vec![Arm::new(
            "TUNA vs naive",
            Recipe::Convergence(ConvergenceSpec {
                samples: 30,
                seed_salt: 700,
                rng_label: 3,
            }),
        )];
        campaign.runs = 1;
        let mut store = ResultStore::in_memory(&campaign);
        let result = CampaignRunner::serial().run(&campaign, &mut store);
        assert!(result.complete);
        let pairs = result.pairs(0, 0).expect("pair payloads");
        assert_eq!(pairs.len(), 1);
        let (tuna, naive) = pairs[0];
        assert!(tuna.total_samples >= 30);
        assert!(naive.total_samples <= 30);
        assert_eq!(result.cells[0].record.rows.len(), 2);
        assert!(result.run_summaries(0, 0).is_none());
    }
}
