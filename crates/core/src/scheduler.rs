//! Multi-fidelity task scheduling across the worker cluster (§4.1, §5.1).
//!
//! TUNA reuses samples taken at lower budgets when a config is promoted:
//! raising a config from budget 1 to budget 3 schedules only two new runs,
//! and those runs must land on nodes the config has *not* yet visited so
//! the detection guarantee (distinct-node samples) holds. The scheduler
//! tracks per-config visited sets and balances new work onto the
//! least-loaded eligible workers.

use std::collections::BTreeMap;

use tuna_space::ConfigId;

/// Tracks which workers each config has sampled and worker load.
#[derive(Debug, Clone)]
pub struct TaskScheduler {
    cluster_size: usize,
    visited: BTreeMap<ConfigId, Vec<usize>>,
    load: Vec<u64>,
}

impl TaskScheduler {
    /// Creates a scheduler for a cluster of `cluster_size` workers.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0`.
    pub fn new(cluster_size: usize) -> Self {
        assert!(cluster_size > 0, "empty cluster");
        TaskScheduler {
            cluster_size,
            visited: BTreeMap::new(),
            load: vec![0; cluster_size],
        }
    }

    /// The cluster size.
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// Workers already holding samples for `config`.
    pub fn visited(&self, config: ConfigId) -> &[usize] {
        self.visited.get(&config).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Plans the new runs needed to bring `config` to `budget` distinct
    /// nodes, choosing the least-loaded unvisited workers. Returns the
    /// worker indices to run on (empty if the budget is already met).
    ///
    /// # Panics
    ///
    /// Panics if `budget` exceeds the cluster size.
    pub fn assign(&mut self, config: ConfigId, budget: usize) -> Vec<usize> {
        assert!(
            budget <= self.cluster_size,
            "budget {budget} exceeds cluster {}",
            self.cluster_size
        );
        let visited = self.visited.entry(config).or_default();
        if visited.len() >= budget {
            return Vec::new();
        }
        let needed = budget - visited.len();
        let mut eligible: Vec<usize> = (0..self.cluster_size)
            .filter(|i| !visited.contains(i))
            .collect();
        // Least-loaded first; ties broken by index for determinism.
        eligible.sort_by_key(|&i| (self.load[i], i));
        let chosen: Vec<usize> = eligible.into_iter().take(needed).collect();
        for &i in &chosen {
            self.load[i] += 1;
            visited.push(i);
        }
        chosen
    }

    /// Total runs assigned so far.
    pub fn total_assigned(&self) -> u64 {
        self.load.iter().sum()
    }

    /// Per-worker assigned run counts.
    pub fn load(&self) -> &[u64] {
        &self.load
    }

    /// Difference between the most- and least-loaded workers.
    ///
    /// Fresh (never-promoted) assignments keep this at most 1: a batch of
    /// size `b` takes the `b` globally least-loaded workers, raising every
    /// minimum-load worker before touching any other. Promotions can
    /// exceed 1 because the visited-set exclusion can force new runs onto
    /// already-loaded workers.
    pub fn load_spread(&self) -> u64 {
        let max = self.load.iter().copied().max().unwrap_or(0);
        let min = self.load.iter().copied().min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_space::{Config, ParamValue};

    fn cfg(v: i64) -> ConfigId {
        Config::new(vec![ParamValue::Int(v)]).id()
    }

    #[test]
    fn budget_one_assigns_one_worker() {
        let mut s = TaskScheduler::new(10);
        let w = s.assign(cfg(1), 1);
        assert_eq!(w.len(), 1);
        assert_eq!(s.visited(cfg(1)), w.as_slice());
    }

    #[test]
    fn promotion_reuses_prior_samples() {
        // The §5.1 example: budget 3 after budget 1 needs only 2 new runs,
        // and they must avoid the original node.
        let mut s = TaskScheduler::new(10);
        let first = s.assign(cfg(1), 1);
        let next = s.assign(cfg(1), 3);
        assert_eq!(next.len(), 2);
        assert!(!next.contains(&first[0]), "reused node {}", first[0]);
        assert_eq!(s.visited(cfg(1)).len(), 3);
    }

    #[test]
    fn full_budget_covers_cluster_distinctly() {
        let mut s = TaskScheduler::new(10);
        s.assign(cfg(1), 1);
        s.assign(cfg(1), 3);
        s.assign(cfg(1), 10);
        let mut v = s.visited(cfg(1)).to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 10, "distinct-node guarantee violated");
    }

    #[test]
    fn met_budget_assigns_nothing() {
        let mut s = TaskScheduler::new(10);
        s.assign(cfg(1), 3);
        assert!(s.assign(cfg(1), 3).is_empty());
        assert!(s.assign(cfg(1), 2).is_empty());
    }

    #[test]
    fn load_balances_across_workers() {
        let mut s = TaskScheduler::new(4);
        for v in 0..40 {
            s.assign(cfg(v), 1);
        }
        // 40 single-node configs over 4 workers: each gets ~10.
        for &l in s.load() {
            assert_eq!(l, 10, "load {:?}", s.load());
        }
    }

    #[test]
    fn independent_configs_tracked_separately() {
        let mut s = TaskScheduler::new(10);
        s.assign(cfg(1), 5);
        s.assign(cfg(2), 5);
        assert_eq!(s.visited(cfg(1)).len(), 5);
        assert_eq!(s.visited(cfg(2)).len(), 5);
        assert_eq!(s.total_assigned(), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds cluster")]
    fn over_budget_panics() {
        TaskScheduler::new(5).assign(cfg(1), 6);
    }
}
