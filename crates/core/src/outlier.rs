//! Unstable-configuration detection (§4.2).
//!
//! Given the samples a config gathered across nodes, the detector computes
//! the *relative range* `(max - min) / mean` and classifies the config
//! unstable when it exceeds a threshold (30% in the paper — the trough
//! between the stable and unstable peaks of Figure 8). Unstable configs
//! receive a penalty — the paper halves the reported performance — so the
//! optimizer learns to avoid the region, and the noise-adjuster model is
//! bypassed for them.

use tuna_optimizer::Objective;
use tuna_stats::online::Welford;
use tuna_stats::summary::relative_range;

/// Stability classification of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stability {
    /// Relative range at or below the threshold.
    Stable {
        /// The observed relative range.
        relative_range: f64,
    },
    /// Relative range above the threshold.
    Unstable {
        /// The observed relative range.
        relative_range: f64,
    },
}

impl Stability {
    /// Whether the config was classified unstable.
    pub fn is_unstable(&self) -> bool {
        matches!(self, Stability::Unstable { .. })
    }

    /// The underlying relative range.
    pub fn relative_range(&self) -> f64 {
        match self {
            Stability::Stable { relative_range } | Stability::Unstable { relative_range } => {
                *relative_range
            }
        }
    }
}

/// The relative-range outlier detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierDetector {
    /// Classification threshold (paper: 0.30; any value in 0.15-0.30 is
    /// reasonable per §4.2).
    pub threshold: f64,
}

impl Default for OutlierDetector {
    fn default() -> Self {
        OutlierDetector { threshold: 0.30 }
    }
}

impl OutlierDetector {
    /// Creates a detector with a custom threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive and finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "invalid threshold {threshold}"
        );
        OutlierDetector { threshold }
    }

    /// Classifies a config from its cross-node samples.
    ///
    /// Fewer than two samples are trivially stable (no range exists yet).
    /// Runs in a single min/max/mean pass over `values`.
    pub fn classify(&self, values: &[f64]) -> Stability {
        self.stability_of(relative_range(values))
    }

    /// Classifies a config from a streaming [`Welford`] accumulator —
    /// the O(1)-memory path for callers that never materialize the
    /// sample window (e.g. the longitudinal-study driver and the
    /// perf-gate micro-kernels). Matches [`OutlierDetector::classify`]
    /// run over the same observations up to accumulator rounding.
    pub fn classify_online(&self, acc: &Welford) -> Stability {
        self.stability_of(acc.relative_range())
    }

    fn stability_of(&self, rr: f64) -> Stability {
        if rr > self.threshold {
            Stability::Unstable { relative_range: rr }
        } else {
            Stability::Stable { relative_range: rr }
        }
    }

    /// Applies the paper's penalty — halving the reported performance —
    /// in the metric's native orientation: throughput is halved, runtime
    /// and latency are doubled.
    pub fn penalize(&self, value: f64, objective: Objective) -> f64 {
        match objective {
            Objective::Maximize => value * 0.5,
            Objective::Minimize => value * 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_walkthrough_is_stable() {
        // §5.2: {500, 450, 530} has relative range 16.2% < 30%.
        let d = OutlierDetector::default();
        let s = d.classify(&[500.0, 450.0, 530.0]);
        assert!(!s.is_unstable());
        assert!((s.relative_range() - 0.162).abs() < 0.001);
    }

    #[test]
    fn seventy_percent_degradation_is_unstable() {
        // A config that degrades 70% on one node (§3.2.1's worst cases).
        let d = OutlierDetector::default();
        let s = d.classify(&[1000.0, 980.0, 1010.0, 300.0, 990.0]);
        assert!(s.is_unstable());
    }

    #[test]
    fn single_sample_trivially_stable() {
        let d = OutlierDetector::default();
        assert!(!d.classify(&[100.0]).is_unstable());
        assert!(!d.classify(&[]).is_unstable());
    }

    #[test]
    fn outlier_count_does_not_matter() {
        // One extreme outlier and two outliers with the same extremes give
        // the same classification (§4.2's design requirement).
        let d = OutlierDetector::default();
        let one = d.classify(&[100.0, 100.0, 100.0, 100.0, 40.0]);
        let two = d.classify(&[100.0, 100.0, 100.0, 40.0, 40.0]);
        assert!(one.is_unstable() && two.is_unstable());
    }

    #[test]
    fn threshold_boundary() {
        let d = OutlierDetector::new(0.30);
        // Exactly at the threshold stays stable (strictly-greater rule).
        let vals = [1.0, 1.0 + 0.30];
        let rr = tuna_stats::summary::relative_range(&vals);
        let s = d.classify(&vals);
        assert_eq!(s.is_unstable(), rr > 0.30);
    }

    #[test]
    fn online_classification_matches_batch() {
        let d = OutlierDetector::default();
        for values in [
            &[500.0, 450.0, 530.0][..],
            &[1000.0, 980.0, 1010.0, 300.0, 990.0][..],
            &[100.0][..],
            &[][..],
        ] {
            let mut acc = Welford::new();
            for &v in values {
                acc.push(v);
            }
            let batch = d.classify(values);
            let online = d.classify_online(&acc);
            assert_eq!(batch.is_unstable(), online.is_unstable(), "{values:?}");
            assert!(
                (batch.relative_range() - online.relative_range()).abs() < 1e-12,
                "{values:?}"
            );
        }
    }

    #[test]
    fn penalty_orientation() {
        let d = OutlierDetector::default();
        assert_eq!(d.penalize(1000.0, Objective::Maximize), 500.0);
        assert_eq!(d.penalize(50.0, Objective::Minimize), 100.0);
    }

    #[test]
    #[should_panic(expected = "invalid threshold")]
    fn rejects_bad_threshold() {
        OutlierDetector::new(0.0);
    }
}
