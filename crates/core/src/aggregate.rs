//! Sample aggregation policies (§4.4).
//!
//! TUNA reports a single value per config to the optimizer. The paper
//! selects **min** (worst case) because mean and median can hide outliers,
//! and because optimizing the worst case is what makes the eventual
//! deployment robust; with the outlier detector bounding the spread of
//! stable configs to 30%, the worst case is a tight lower bound.
//!
//! "Worst case" is orientation-aware: minimum throughput, but maximum
//! runtime/latency.

use tuna_optimizer::Objective;
use tuna_stats::summary;

/// How cross-node samples collapse to one reported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationPolicy {
    /// The paper's choice: the worst observed value.
    WorstCase,
    /// Arithmetic mean.
    Mean,
    /// Median.
    Median,
    /// The best observed value (for ablations).
    BestCase,
}

impl AggregationPolicy {
    /// Aggregates `values` under the given objective.
    ///
    /// Convenience wrapper over [`AggregationPolicy::aggregate_with`];
    /// hot loops should hold a scratch buffer and call that instead.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn aggregate(&self, values: &[f64], objective: Objective) -> f64 {
        self.aggregate_with(values, objective, &mut Vec::new())
    }

    /// Aggregates `values` with a caller-owned scratch buffer.
    ///
    /// The min/max/mean policies are single allocation-free passes; the
    /// median policy selects into `scratch` (expected O(n), no
    /// allocation once the scratch has warmed up). Results are
    /// bit-identical to [`AggregationPolicy::aggregate`].
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn aggregate_with(
        &self,
        values: &[f64],
        objective: Objective,
        scratch: &mut Vec<f64>,
    ) -> f64 {
        assert!(!values.is_empty(), "aggregate of no samples");
        match self {
            AggregationPolicy::WorstCase => match objective {
                Objective::Maximize => summary::min(values).expect("non-empty"),
                Objective::Minimize => summary::max(values).expect("non-empty"),
            },
            AggregationPolicy::Mean => summary::mean(values),
            AggregationPolicy::Median => summary::median_with(values, scratch),
            AggregationPolicy::BestCase => match objective {
                Objective::Maximize => summary::max(values).expect("non-empty"),
                Objective::Minimize => summary::min(values).expect("non-empty"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALUES: [f64; 3] = [500.0, 450.0, 530.0];

    #[test]
    fn worst_case_is_min_for_throughput() {
        // The Figure 10 walkthrough reports min = 450 (pre-adjustment).
        let v = AggregationPolicy::WorstCase.aggregate(&VALUES, Objective::Maximize);
        assert_eq!(v, 450.0);
    }

    #[test]
    fn worst_case_is_max_for_latency() {
        let v = AggregationPolicy::WorstCase.aggregate(&VALUES, Objective::Minimize);
        assert_eq!(v, 530.0);
    }

    #[test]
    fn mean_and_median() {
        assert!(
            (AggregationPolicy::Mean.aggregate(&VALUES, Objective::Maximize) - 493.333).abs()
                < 0.001
        );
        assert_eq!(
            AggregationPolicy::Median.aggregate(&VALUES, Objective::Maximize),
            500.0
        );
    }

    #[test]
    fn best_case_flips_worst() {
        assert_eq!(
            AggregationPolicy::BestCase.aggregate(&VALUES, Objective::Maximize),
            530.0
        );
        assert_eq!(
            AggregationPolicy::BestCase.aggregate(&VALUES, Objective::Minimize),
            450.0
        );
    }

    #[test]
    fn worst_case_penalizes_unstable_configs_more_than_mean() {
        // An unstable config with one deep outlier: min punishes it, mean
        // hides it — the §4.4 rationale.
        let unstable = [1000.0, 990.0, 200.0];
        let min = AggregationPolicy::WorstCase.aggregate(&unstable, Objective::Maximize);
        let mean = AggregationPolicy::Mean.aggregate(&unstable, Objective::Maximize);
        assert!(min < mean * 0.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_panics() {
        AggregationPolicy::Mean.aggregate(&[], Objective::Maximize);
    }

    #[test]
    fn scratch_variant_is_bit_identical() {
        let values = [500.0, 450.0, 530.0, 470.0, 510.0, 490.0];
        let mut scratch = Vec::new();
        for policy in [
            AggregationPolicy::WorstCase,
            AggregationPolicy::Mean,
            AggregationPolicy::Median,
            AggregationPolicy::BestCase,
        ] {
            for objective in [Objective::Maximize, Objective::Minimize] {
                assert_eq!(
                    policy.aggregate_with(&values, objective, &mut scratch),
                    policy.aggregate(&values, objective),
                    "{policy:?} {objective:?}"
                );
            }
        }
    }
}
