//! Deployment evaluation (§6 protocol).
//!
//! The paper's headline comparison is *not* tuning-time performance: the
//! best config found by each method is deployed onto a set of ten fresh
//! VMs and the distribution of its performance there is reported (mean,
//! standard deviation, boxplots). Crashed runs are replaced by a
//! conservative penalty — the worst value the default config produced —
//! following the §6.4 methodology.

use crate::executor::{self, ExecutionMode, RunRequest};
use tuna_cloudsim::Cluster;
use tuna_space::Config;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_stats::summary::{self, FiveNumber};
use tuna_sut::SystemUnderTest;
use tuna_workloads::Workload;

/// Deployment outcome of one configuration.
#[derive(Debug, Clone)]
pub struct DeployStats {
    /// All measured values (repeats × VMs), crash-penalized.
    pub values: Vec<f64>,
    /// Mean value.
    pub mean: f64,
    /// Standard deviation across deployment measurements — the paper's
    /// stability metric.
    pub std: f64,
    /// Boxplot statistics.
    pub five: FiveNumber,
    /// Number of crashed runs.
    pub crashes: usize,
    /// Relative range across deployment VMs.
    pub relative_range: f64,
}

/// Deploys `config` on `n_vms` freshly provisioned machines (derived from
/// `base_cluster` with decorrelated placements), measuring `repeats` epochs
/// per VM. Crashed runs contribute `crash_penalty` instead of their value.
///
/// Execution mode comes from the `TUNA_WORKERS` environment variable; use
/// [`evaluate_deployment_with`] for explicit control. Results are
/// identical either way.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_deployment(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    config: &Config,
    base_cluster: &Cluster,
    deploy_label: u64,
    n_vms: usize,
    repeats: usize,
    crash_penalty: f64,
    rng: &Rng,
) -> DeployStats {
    evaluate_deployment_with(
        ExecutionMode::from_env(),
        sut,
        workload,
        config,
        base_cluster,
        deploy_label,
        n_vms,
        repeats,
        crash_penalty,
        rng,
    )
}

/// [`evaluate_deployment`] with an explicit [`ExecutionMode`]: each
/// deployment VM is one executor lane running `repeats` epochs in order,
/// and per-run randomness is forked from `rng` by
/// `(config, deploy_label, vm, repeat)` — so the measured distribution is
/// bit-identical for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_deployment_with(
    mode: ExecutionMode,
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    config: &Config,
    base_cluster: &Cluster,
    deploy_label: u64,
    n_vms: usize,
    repeats: usize,
    crash_penalty: f64,
    rng: &Rng,
) -> DeployStats {
    let mut cluster = base_cluster.fresh_cluster(n_vms, deploy_label);
    let requests: Vec<RunRequest<'_>> = (0..n_vms)
        .flat_map(|i| {
            (0..repeats).map(move |r| RunRequest {
                config,
                machine: i,
                stream: hash_combine(
                    config.id().0,
                    hash_combine(deploy_label, hash_combine(i as u64, r as u64)),
                ),
            })
        })
        .collect();
    let (outcomes, _) = executor::execute_batch(mode, sut, workload, &mut cluster, rng, &requests);
    let mut values = Vec::with_capacity(n_vms * repeats);
    let mut crashes = 0;
    for outcome in outcomes {
        if outcome.crashed {
            crashes += 1;
            values.push(crash_penalty);
        } else {
            values.push(outcome.value);
        }
    }
    DeployStats {
        mean: summary::mean(&values),
        std: summary::std_dev(&values),
        five: FiveNumber::of(&values),
        relative_range: summary::relative_range(&values),
        crashes,
        values,
    }
}

/// Profiles the default configuration on fresh nodes and returns the
/// *worst* observed value (orientation-aware) — the §6.4 crash penalty.
pub fn default_worst_case(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    base_cluster: &Cluster,
    rng: &Rng,
) -> f64 {
    default_worst_case_with(ExecutionMode::from_env(), sut, workload, base_cluster, rng)
}

/// [`default_worst_case`] with an explicit [`ExecutionMode`].
pub fn default_worst_case_with(
    mode: ExecutionMode,
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    base_cluster: &Cluster,
    rng: &Rng,
) -> f64 {
    let stats = evaluate_deployment_with(
        mode,
        sut,
        workload,
        &sut.default_config(),
        base_cluster,
        0xDEFA_0000,
        5,
        2,
        // Crashes during profiling contribute a baseline-derived backstop.
        workload.metric.nominal() * 2.0,
        rng,
    );
    if workload.metric.higher_is_better() {
        stats.five.min
    } else {
        stats.five.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Region, VmSku};
    use tuna_sut::postgres::Postgres;
    use tuna_sut::redis::Redis;
    use tuna_sut::SystemUnderTest;

    fn base() -> Cluster {
        Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 9)
    }

    #[test]
    fn deployment_shapes() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let rng = Rng::seed_from(1);
        let stats =
            evaluate_deployment(&pg, &w, &pg.default_config(), &base(), 1, 10, 3, 1.0, &rng);
        assert_eq!(stats.values.len(), 30);
        assert!(stats.mean > 500.0);
        assert!(stats.std >= 0.0);
        assert!(stats.five.min <= stats.five.max);
        assert_eq!(stats.crashes, 0);
    }

    #[test]
    fn different_labels_different_vms() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let rng = Rng::seed_from(2);
        let a = evaluate_deployment(&pg, &w, &pg.default_config(), &base(), 1, 10, 1, 1.0, &rng);
        let b = evaluate_deployment(&pg, &w, &pg.default_config(), &base(), 2, 10, 1, 1.0, &rng);
        assert_ne!(a.values, b.values);
    }

    #[test]
    fn redis_crashes_replaced_by_penalty() {
        let rd = Redis::new();
        let w = tuna_workloads::ycsb_c();
        // Force frequent crashes: noeviction below dataset size.
        let broken = rd.default_config().with(
            rd.space().index_of("maxmemory_mb").unwrap(),
            tuna_space::ParamValue::Int(4_096),
        );
        let rng = Rng::seed_from(3);
        let penalty = 0.908;
        let stats = evaluate_deployment(&rd, &w, &broken, &base(), 3, 10, 2, penalty, &rng);
        assert_eq!(stats.crashes, 20);
        assert!(stats.values.iter().all(|&v| v == penalty));
    }

    #[test]
    fn default_worst_case_orientation() {
        let pg = Postgres::new();
        let rng = Rng::seed_from(4);
        // Throughput: worst = lowest.
        let tpcc = tuna_workloads::tpcc();
        let worst_tps = default_worst_case(&pg, &tpcc, &base(), &rng);
        assert!(worst_tps < 900.0 && worst_tps > 300.0, "{worst_tps}");
        // Runtime: worst = highest.
        let tpch = tuna_workloads::tpch();
        let worst_rt = default_worst_case(&pg, &tpch, &base(), &rng);
        assert!(worst_rt > 100.0, "{worst_rt}");
    }
}
