//! Sample records flowing through the TUNA pipeline.

use tuna_metrics::MetricVector;

/// One measurement of a configuration on a worker.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Worker index within the tuning cluster (0-based).
    pub machine_idx: usize,
    /// Raw metric value as measured.
    pub raw: f64,
    /// Value after noise adjustment (equals `raw` until adjusted).
    pub adjusted: f64,
    /// Guest metrics collected during the run.
    pub metrics: MetricVector,
    /// Whether the SuT crashed during this run.
    pub crashed: bool,
}

impl Sample {
    /// Creates a sample with `adjusted == raw`.
    pub fn new(machine_idx: usize, raw: f64, metrics: MetricVector, crashed: bool) -> Self {
        Sample {
            machine_idx,
            raw,
            adjusted: raw,
            metrics,
            crashed,
        }
    }
}

/// Reusable buffers for the per-iteration sampling hot path.
///
/// [`crate::pipeline::TunaPipeline::step`] runs outlier detection,
/// noise adjustment and aggregation over every sample a config has
/// gathered, once per round; these scratch vectors let that loop run
/// allocation-free at steady state instead of building three fresh
/// `Vec`s per iteration.
#[derive(Debug, Default)]
pub struct SampleScratch {
    /// Raw metric values of the config's samples.
    pub raws: Vec<f64>,
    /// Noise-adjusted values (input to aggregation).
    pub values: Vec<f64>,
    /// Selection scratch for order-statistic aggregation policies.
    pub select: Vec<f64>,
}

impl SampleScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjusted_starts_at_raw() {
        let m = MetricVector::new(vec![0.0; tuna_metrics::SCHEMA.len()]);
        let s = Sample::new(3, 42.0, m, false);
        assert_eq!(s.adjusted, 42.0);
        assert_eq!(s.machine_idx, 3);
        assert!(!s.crashed);
    }
}
