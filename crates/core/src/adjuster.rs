//! The noise-adjuster model (§4.3, Algorithms 1 and 2).
//!
//! A `RandomForestRegressor ∘ Standardize` pipeline trained *within a
//! single tuning run* (no transfer) on the configs that reached the
//! highest budget: features are the guest metrics plus a one-hot machine
//! id; the target is the sample's relative error `P_cw / E[P_c] - 1`.
//! At inference the prediction is divided out of the raw sample
//! (`p / (s + 1)`), yielding a de-noised estimate of the config's mean
//! performance. Unstable configs bypass the model — they fall outside the
//! training distribution and are already penalized by the detector.

use crate::sample::Sample;
use tuna_ml::forest::{ForestParams, RandomForest};
use tuna_ml::pipeline::StandardizedRegressor;
use tuna_ml::Regressor;
use tuna_stats::rng::Rng;
use tuna_stats::summary;

/// Noise-adjuster hyperparameters.
#[derive(Debug, Clone)]
pub struct AdjusterConfig {
    /// Number of workers in the tuning cluster (one-hot width).
    pub cluster_size: usize,
    /// Random-forest parameters.
    pub forest: ForestParams,
    /// Maximum adjustment magnitude guardrail; the paper ships without one
    /// (§7 lists it as future work), so the default is `None`.
    pub max_adjustment: Option<f64>,
}

impl AdjusterConfig {
    /// Paper-faithful defaults for a 10-worker cluster.
    pub fn paper_default(cluster_size: usize) -> Self {
        AdjusterConfig {
            cluster_size,
            forest: ForestParams {
                n_trees: 32,
                ..ForestParams::default()
            },
            max_adjustment: None,
        }
    }
}

/// The trainable noise adjuster.
#[derive(Debug, Clone)]
pub struct NoiseAdjuster {
    config: AdjusterConfig,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<f64>,
    model: Option<StandardizedRegressor<RandomForest>>,
    generations: usize,
}

impl NoiseAdjuster {
    /// Creates an untrained adjuster.
    pub fn new(config: AdjusterConfig) -> Self {
        NoiseAdjuster {
            config,
            train_x: Vec::new(),
            train_y: Vec::new(),
            model: None,
            generations: 0,
        }
    }

    /// Whether a model is available for inference.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Number of retrain generations so far.
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Number of training rows accumulated.
    pub fn n_training_rows(&self) -> usize {
        self.train_x.len()
    }

    fn features(&self, sample: &Sample) -> Vec<f64> {
        let mut row = sample.metrics.values().to_vec();
        for i in 0..self.config.cluster_size {
            row.push(if i == sample.machine_idx { 1.0 } else { 0.0 });
        }
        row
    }

    /// Algorithm 1: ingest a config's max-budget samples as training data
    /// (target = percent error vs the config's own mean) and rebuild the
    /// model. Crashed samples are skipped.
    pub fn train_on_config(&mut self, samples: &[Sample], rng: &mut Rng) {
        let raws: Vec<f64> = samples
            .iter()
            .filter(|s| !s.crashed)
            .map(|s| s.raw)
            .collect();
        if raws.len() < 2 {
            return;
        }
        let mean = summary::mean(&raws);
        if mean == 0.0 {
            return;
        }
        for s in samples.iter().filter(|s| !s.crashed) {
            self.train_x.push(self.features(s));
            self.train_y.push(s.raw / mean - 1.0);
        }
        // Retraining a forest is cheap: rebuild on every new data point
        // as the paper does.
        let mut model = StandardizedRegressor::new(RandomForest::new(self.config.forest));
        if model
            .fit(
                &self.train_x,
                &self.train_y,
                &mut rng.fork(self.generations as u64),
            )
            .is_ok()
        {
            self.model = Some(model);
            self.generations += 1;
        }
    }

    /// Algorithm 2: predicts the sample's relative error and divides it
    /// out. Returns the raw value when the model is untrained, the config
    /// is flagged as an outlier, or the sample crashed.
    pub fn adjust(&self, sample: &Sample, is_outlier: bool) -> f64 {
        if is_outlier || sample.crashed {
            return sample.raw;
        }
        let Some(model) = &self.model else {
            return sample.raw;
        };
        let mut s = model.predict(&self.features(sample));
        if let Some(cap) = self.config.max_adjustment {
            s = s.clamp(-cap, cap);
        }
        if s <= -0.95 {
            return sample.raw; // Degenerate prediction guardrail.
        }
        sample.raw / (s + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_metrics::{MetricVector, SCHEMA};

    /// Builds a synthetic sample whose first metric column encodes the
    /// noise that perturbs the raw value: raw = base * (1 + noise), and
    /// metric[0] = noise (a perfectly informative counter).
    fn synthetic_sample(machine: usize, base: f64, noise: f64) -> Sample {
        let mut m = vec![0.5; SCHEMA.len()];
        m[0] = noise;
        Sample::new(machine, base * (1.0 + noise), MetricVector::new(m), false)
    }

    fn trained_adjuster(n_configs: usize, rng: &mut Rng) -> NoiseAdjuster {
        let mut adj = NoiseAdjuster::new(AdjusterConfig::paper_default(10));
        for c in 0..n_configs {
            let base = 500.0 + 50.0 * (c as f64);
            let samples: Vec<Sample> = (0..10)
                .map(|w| {
                    let noise = 0.1 * rng.next_gaussian();
                    synthetic_sample(w, base, noise)
                })
                .collect();
            adj.train_on_config(&samples, rng);
        }
        adj
    }

    #[test]
    fn untrained_passes_through() {
        let adj = NoiseAdjuster::new(AdjusterConfig::paper_default(10));
        let s = synthetic_sample(0, 500.0, 0.08);
        assert_eq!(adj.adjust(&s, false), s.raw);
        assert!(!adj.is_trained());
    }

    #[test]
    fn outliers_bypass_model() {
        let mut rng = Rng::seed_from(1);
        let adj = trained_adjuster(12, &mut rng);
        let s = synthetic_sample(0, 500.0, 0.2);
        assert_eq!(adj.adjust(&s, true), s.raw);
    }

    #[test]
    fn crashed_samples_bypass_model() {
        let mut rng = Rng::seed_from(2);
        let adj = trained_adjuster(12, &mut rng);
        let mut s = synthetic_sample(0, 500.0, 0.2);
        s.crashed = true;
        assert_eq!(adj.adjust(&s, false), s.raw);
    }

    #[test]
    fn learns_to_remove_metric_correlated_noise() {
        // With a perfectly informative noise counter, the adjusted values
        // should be much closer to the config's true base than the raws.
        let mut rng = Rng::seed_from(3);
        let adj = trained_adjuster(25, &mut rng);
        assert!(adj.is_trained());

        let base = 777.0;
        let mut raw_err = 0.0;
        let mut adj_err = 0.0;
        let n = 200;
        for _ in 0..n {
            let noise = 0.1 * rng.next_gaussian();
            let s = synthetic_sample(rng.below(10), base, noise);
            raw_err += (s.raw - base).abs() / base;
            adj_err += (adj.adjust(&s, false) - base).abs() / base;
        }
        raw_err /= n as f64;
        adj_err /= n as f64;
        assert!(
            adj_err < raw_err * 0.6,
            "model removed too little noise: raw {raw_err:.4} adj {adj_err:.4}"
        );
    }

    #[test]
    fn training_skips_crashed_and_tiny_configs() {
        let mut rng = Rng::seed_from(4);
        let mut adj = NoiseAdjuster::new(AdjusterConfig::paper_default(10));
        // One sample only: no mean to speak of.
        adj.train_on_config(&[synthetic_sample(0, 100.0, 0.0)], &mut rng);
        assert!(!adj.is_trained());
        // All crashed: nothing to learn.
        let mut s1 = synthetic_sample(0, 100.0, 0.0);
        let mut s2 = synthetic_sample(1, 100.0, 0.0);
        s1.crashed = true;
        s2.crashed = true;
        adj.train_on_config(&[s1, s2], &mut rng);
        assert!(!adj.is_trained());
    }

    #[test]
    fn guardrail_caps_adjustment() {
        let mut rng = Rng::seed_from(5);
        let mut cfg = AdjusterConfig::paper_default(10);
        cfg.max_adjustment = Some(0.01);
        let mut adj = NoiseAdjuster::new(cfg);
        for c in 0..15 {
            let base = 500.0 + 10.0 * c as f64;
            let samples: Vec<Sample> = (0..10)
                .map(|w| synthetic_sample(w, base, 0.2 * rng.next_gaussian()))
                .collect();
            adj.train_on_config(&samples, &mut rng);
        }
        let s = synthetic_sample(0, 500.0, 0.3);
        let adjusted = adj.adjust(&s, false);
        // With a 1% cap the adjusted value stays within ~1% of raw.
        assert!((adjusted / s.raw - 1.0).abs() < 0.011);
    }

    #[test]
    fn generations_count_retrains() {
        let mut rng = Rng::seed_from(6);
        let adj = trained_adjuster(5, &mut rng);
        assert_eq!(adj.generations(), 5);
        assert_eq!(adj.n_training_rows(), 50);
    }
}
