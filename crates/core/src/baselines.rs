//! The paper's comparison baselines (§6, §6.5).
//!
//! - [`run_traditional`]: the state-of-the-art prior setup — a single node
//!   sequentially evaluating suggested configurations with no repeats.
//! - Extended traditional (§6.5.1) is `run_traditional` with the sample
//!   budget raised to TUNA's total sample count.
//! - [`run_naive_distributed`] (§6.5.2): every config runs on every node
//!   of the cluster, min-aggregated — robust but extremely sample-hungry.
//! - [`run_arena`]: head-to-head arena sampling for registry solvers —
//!   each round's group of configs shares one machine snapshot and one
//!   noise draw, so tournament matches compare configs with machine
//!   noise cancelled (DarwinGame-style).

use crate::executor::{self, ExecutionMode, RunRequest};
use crate::pipeline::{IterationRecord, TuningResult};
use tuna_cloudsim::Cluster;
use tuna_optimizer::{Solver, Suggestion};
use tuna_stats::rng::{hash_combine, Rng};
use tuna_sut::SystemUnderTest;
use tuna_workloads::Workload;

/// Traditional single-node sampling: one sample per suggestion, all on the
/// same worker (worker 0 of `cluster`). Inherently serial — there is only
/// one lane — but run randomness follows the same fork discipline as the
/// executor (`rng.fork(hash_combine(round, config_id))`).
pub fn run_traditional(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    mut optimizer: Box<dyn Solver>,
    mut cluster: Cluster,
    samples: usize,
    crash_penalty: f64,
    rng: &mut Rng,
) -> TuningResult {
    let mut trace = Vec::with_capacity(samples);
    let mut n_configs = 0;
    for round in 0..samples {
        let suggestion = optimizer.ask(rng);
        n_configs += 1;
        let mut run_rng = rng.fork(hash_combine(round as u64, suggestion.config.id().0));
        let outcome = sut.run(
            &suggestion.config,
            workload,
            cluster.machine_mut(0),
            &mut run_rng,
        );
        let value = if outcome.crashed {
            crash_penalty
        } else {
            outcome.value
        };
        optimizer.tell(&suggestion.config, value, 1);
        trace.push(IterationRecord {
            round: round + 1,
            config_id: suggestion.config.id(),
            budget: 1,
            new_samples: 1,
            reported: value,
            unstable: false,
            best_so_far: optimizer.best().map(|(_, v)| v),
            cumulative_samples: round + 1,
            model_error: None,
        });
    }
    let (best_config, best_value) = optimizer.best().expect("at least one sample");
    TuningResult {
        best_config,
        best_value,
        trace,
        total_samples: samples,
        n_unstable_configs: 0,
        n_configs,
        model_errors: Vec::new(),
    }
}

/// Naive distributed sampling: every suggestion runs on *all* workers
/// (one executor lane per worker, parallelizable via `mode`); the worst
/// observation is reported (same aggregation as TUNA so the §6.5.2
/// comparison isolates the scheduling policy). Results are bit-identical
/// across execution modes.
#[allow(clippy::too_many_arguments)]
pub fn run_naive_distributed(
    mode: ExecutionMode,
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    mut optimizer: Box<dyn Solver>,
    mut cluster: Cluster,
    sample_budget: usize,
    crash_penalty: f64,
    rng: &mut Rng,
) -> TuningResult {
    let n = cluster.size();
    let objective = optimizer.objective();
    let mut trace = Vec::new();
    let mut total = 0usize;
    let mut round = 0usize;
    let mut n_configs = 0usize;
    while total + n <= sample_budget {
        let suggestion = optimizer.ask(rng);
        n_configs += 1;
        let id = suggestion.config.id();
        let requests: Vec<RunRequest<'_>> = (0..n)
            .map(|i| RunRequest {
                config: &suggestion.config,
                machine: i,
                stream: hash_combine(round as u64, hash_combine(id.0, i as u64)),
            })
            .collect();
        let (outcomes, _) =
            executor::execute_batch(mode, sut, workload, &mut cluster, rng, &requests);
        let values: Vec<f64> = outcomes
            .iter()
            .map(|o| if o.crashed { crash_penalty } else { o.value })
            .collect();
        total += n;
        round += 1;
        let reported = crate::aggregate::AggregationPolicy::WorstCase.aggregate(&values, objective);
        // Told at the cluster budget so `best()` trusts these fully.
        optimizer.tell(&suggestion.config, reported, n);
        trace.push(IterationRecord {
            round,
            config_id: suggestion.config.id(),
            budget: n,
            new_samples: n,
            reported,
            unstable: false,
            best_so_far: optimizer.best().map(|(_, v)| v),
            cumulative_samples: total,
            model_error: None,
        });
    }
    let (best_config, best_value) = optimizer.best().expect("at least one round");
    TuningResult {
        best_config,
        best_value,
        trace,
        total_samples: total,
        n_unstable_configs: 0,
        n_configs,
        model_errors: Vec::new(),
    }
}

/// Domain salt for the per-round shared noise stream of [`run_arena`].
const ARENA_STREAM_SALT: u64 = 0xA1_2E4A;

/// Head-to-head arena sampling for registry solvers.
///
/// Each round asks the solver for `match_size` configs (see
/// `tuna_optimizer::solver::Capabilities::match_size`) and evaluates the
/// whole group on worker 0 from the *same machine snapshot with the same
/// noise stream* — every member of a match sees identical placement,
/// interference and measurement noise, so the comparison is pure config
/// signal (the DarwinGame premise). The machine then advances by one
/// epoch (the last run's evolution is kept), exactly one step per round
/// like [`run_traditional`]. With `match_size == 1` this degenerates to
/// single-node sampling with per-round noise streams.
///
/// # Panics
///
/// Panics if `match_size == 0` or no full group fits in `samples`.
#[allow(clippy::too_many_arguments)]
pub fn run_arena(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    mut solver: Box<dyn Solver>,
    mut cluster: Cluster,
    samples: usize,
    match_size: usize,
    crash_penalty: f64,
    rng: &mut Rng,
) -> TuningResult {
    assert!(match_size >= 1, "match_size must be positive");
    let mut trace = Vec::with_capacity(samples);
    let mut total = 0usize;
    let mut round = 0usize;
    let mut n_configs = 0usize;
    while total + match_size <= samples {
        let group: Vec<Suggestion> = (0..match_size).map(|_| solver.ask(rng)).collect();
        n_configs += group.len();
        let shared_rng = rng.fork(hash_combine(round as u64, ARENA_STREAM_SALT));
        let snapshot = cluster.machine(0).clone();
        for suggestion in &group {
            // Rewind to the round's snapshot so every group member plays
            // the identical machine; the last member's evolution sticks.
            *cluster.machine_mut(0) = snapshot.clone();
            let mut run_rng = shared_rng.clone();
            let outcome = sut.run(
                &suggestion.config,
                workload,
                cluster.machine_mut(0),
                &mut run_rng,
            );
            let value = if outcome.crashed {
                crash_penalty
            } else {
                outcome.value
            };
            solver.tell(&suggestion.config, value, suggestion.budget);
            total += 1;
            trace.push(IterationRecord {
                round: round + 1,
                config_id: suggestion.config.id(),
                budget: suggestion.budget,
                new_samples: 1,
                reported: value,
                unstable: false,
                best_so_far: solver.best().map(|(_, v)| v),
                cumulative_samples: total,
                model_error: None,
            });
        }
        round += 1;
    }
    let (best_config, best_value) = solver.best().expect("at least one finite sample");
    TuningResult {
        best_config,
        best_value,
        trace,
        total_samples: total,
        n_unstable_configs: 0,
        n_configs,
        model_errors: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Region, VmSku};
    use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
    use tuna_optimizer::Objective;
    use tuna_sut::postgres::Postgres;

    fn cluster(seed: u64, n: usize) -> Cluster {
        Cluster::new(n, VmSku::d8s_v5(), Region::westus2(), seed)
    }

    fn smac(pg: &Postgres) -> Box<dyn Solver> {
        Box::new(SmacOptimizer::new(
            pg.space().clone(),
            Objective::Maximize,
            SmacParams {
                n_init: 5,
                n_random_candidates: 40,
                ..SmacParams::default()
            },
        ))
    }

    #[test]
    fn traditional_consumes_exactly_one_sample_per_round() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut rng = Rng::seed_from(1);
        let result = run_traditional(&pg, &w, smac(&pg), cluster(1, 1), 30, 1.0, &mut rng);
        assert_eq!(result.total_samples, 30);
        assert_eq!(result.trace.len(), 30);
        assert!(result.best_value > 300.0);
        assert!(result.trace.iter().all(|r| r.budget == 1));
    }

    #[test]
    fn naive_distributed_uses_full_cluster_per_round() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut rng = Rng::seed_from(2);
        let result = run_naive_distributed(
            ExecutionMode::Serial,
            &pg,
            &w,
            smac(&pg),
            cluster(2, 10),
            100,
            1.0,
            &mut rng,
        );
        assert_eq!(result.total_samples, 100);
        assert_eq!(result.trace.len(), 10);
        assert!(result.trace.iter().all(|r| r.new_samples == 10));
    }

    #[test]
    fn naive_distributed_parallel_matches_serial() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let run = |mode| {
            let mut rng = Rng::seed_from(5);
            run_naive_distributed(mode, &pg, &w, smac(&pg), cluster(5, 10), 80, 1.0, &mut rng)
        };
        let serial = run(ExecutionMode::Serial);
        for workers in [2, 4, 10] {
            assert_eq!(
                serial,
                run(ExecutionMode::Parallel { workers }),
                "naive distributed diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn arena_match_sides_see_identical_noise() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use tuna_optimizer::History;
        use tuna_space::{Config, ConfigSpace};
        use tuna_sut::SystemUnderTest;

        // A solver proposing the same config for both sides of each match
        // must observe byte-identical values: same machine, same draw.
        struct Fixed {
            space: ConfigSpace,
            config: Config,
            history: History,
            told: Rc<RefCell<Vec<f64>>>,
        }
        impl Solver for Fixed {
            fn ask(&mut self, _rng: &mut Rng) -> Suggestion {
                Suggestion {
                    config: self.config.clone(),
                    budget: 1,
                }
            }
            fn tell(&mut self, config: &Config, raw_value: f64, budget: usize) {
                self.told.borrow_mut().push(raw_value);
                self.history.push(config.clone(), raw_value, budget);
            }
            fn best(&self) -> Option<(Config, f64)> {
                self.history.best().map(|r| (r.config.clone(), r.cost))
            }
            fn space(&self) -> &ConfigSpace {
                &self.space
            }
            fn objective(&self) -> Objective {
                Objective::Minimize
            }
            fn n_observations(&self) -> usize {
                self.history.len()
            }
        }

        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let told = Rc::new(RefCell::new(Vec::new()));
        let solver = Box::new(Fixed {
            space: pg.space().clone(),
            config: pg.default_config(),
            history: History::new(),
            told: Rc::clone(&told),
        });
        let mut rng = Rng::seed_from(9);
        let result = run_arena(&pg, &w, solver, cluster(9, 1), 20, 2, 1.0, &mut rng);
        assert_eq!(result.total_samples, 20);
        let vals = told.borrow();
        assert_eq!(vals.len(), 20);
        for pair in vals.chunks(2) {
            assert_eq!(pair[0].to_bits(), pair[1].to_bits(), "match sides diverged");
        }
        let distinct: std::collections::HashSet<u64> =
            vals.chunks(2).map(|p| p[0].to_bits()).collect();
        assert!(distinct.len() > 1, "noise draw never changed across rounds");
    }

    #[test]
    fn arena_tournament_runs_deterministically() {
        use tuna_optimizer::solver::{SolverParams, SolverRegistry};
        let run = || {
            let pg = Postgres::new();
            let w = tuna_workloads::tpcc();
            let solver = SolverRegistry::builtin()
                .build(
                    "tournament",
                    pg.space().clone(),
                    Objective::Maximize,
                    &SolverParams::default(),
                )
                .unwrap();
            let mut rng = Rng::seed_from(21);
            run_arena(&pg, &w, solver, cluster(21, 1), 32, 2, 1.0, &mut rng)
        };
        let a = run();
        assert_eq!(a, run(), "same-seed arena runs diverged");
        assert!(a.best_value.is_finite());
        assert_eq!(a.total_samples, 32);
    }

    #[test]
    fn best_so_far_improves_monotonically_traditional() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut rng = Rng::seed_from(3);
        let result = run_traditional(&pg, &w, smac(&pg), cluster(3, 1), 40, 1.0, &mut rng);
        let mut prev = f64::NEG_INFINITY;
        for r in &result.trace {
            let b = r.best_so_far.unwrap();
            assert!(b >= prev - 1e-9, "best-so-far regressed");
            prev = b;
        }
    }
}
