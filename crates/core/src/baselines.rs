//! The paper's comparison baselines (§6, §6.5).
//!
//! - [`run_traditional`]: the state-of-the-art prior setup — a single node
//!   sequentially evaluating suggested configurations with no repeats.
//! - Extended traditional (§6.5.1) is `run_traditional` with the sample
//!   budget raised to TUNA's total sample count.
//! - [`run_naive_distributed`] (§6.5.2): every config runs on every node
//!   of the cluster, min-aggregated — robust but extremely sample-hungry.

use crate::executor::{self, ExecutionMode, RunRequest};
use crate::pipeline::{IterationRecord, TuningResult};
use tuna_cloudsim::Cluster;
use tuna_optimizer::Optimizer;
use tuna_stats::rng::{hash_combine, Rng};
use tuna_sut::SystemUnderTest;
use tuna_workloads::Workload;

/// Traditional single-node sampling: one sample per suggestion, all on the
/// same worker (worker 0 of `cluster`). Inherently serial — there is only
/// one lane — but run randomness follows the same fork discipline as the
/// executor (`rng.fork(hash_combine(round, config_id))`).
pub fn run_traditional(
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    mut optimizer: Box<dyn Optimizer>,
    mut cluster: Cluster,
    samples: usize,
    crash_penalty: f64,
    rng: &mut Rng,
) -> TuningResult {
    let mut trace = Vec::with_capacity(samples);
    let mut n_configs = 0;
    for round in 0..samples {
        let suggestion = optimizer.ask(rng);
        n_configs += 1;
        let mut run_rng = rng.fork(hash_combine(round as u64, suggestion.config.id().0));
        let outcome = sut.run(
            &suggestion.config,
            workload,
            cluster.machine_mut(0),
            &mut run_rng,
        );
        let value = if outcome.crashed {
            crash_penalty
        } else {
            outcome.value
        };
        optimizer.tell(&suggestion.config, value, 1);
        trace.push(IterationRecord {
            round: round + 1,
            config_id: suggestion.config.id(),
            budget: 1,
            new_samples: 1,
            reported: value,
            unstable: false,
            best_so_far: optimizer.best().map(|(_, v)| v),
            cumulative_samples: round + 1,
            model_error: None,
        });
    }
    let (best_config, best_value) = optimizer.best().expect("at least one sample");
    TuningResult {
        best_config,
        best_value,
        trace,
        total_samples: samples,
        n_unstable_configs: 0,
        n_configs,
        model_errors: Vec::new(),
    }
}

/// Naive distributed sampling: every suggestion runs on *all* workers
/// (one executor lane per worker, parallelizable via `mode`); the worst
/// observation is reported (same aggregation as TUNA so the §6.5.2
/// comparison isolates the scheduling policy). Results are bit-identical
/// across execution modes.
#[allow(clippy::too_many_arguments)]
pub fn run_naive_distributed(
    mode: ExecutionMode,
    sut: &dyn SystemUnderTest,
    workload: &Workload,
    mut optimizer: Box<dyn Optimizer>,
    mut cluster: Cluster,
    sample_budget: usize,
    crash_penalty: f64,
    rng: &mut Rng,
) -> TuningResult {
    let n = cluster.size();
    let objective = optimizer.objective();
    let mut trace = Vec::new();
    let mut total = 0usize;
    let mut round = 0usize;
    let mut n_configs = 0usize;
    while total + n <= sample_budget {
        let suggestion = optimizer.ask(rng);
        n_configs += 1;
        let id = suggestion.config.id();
        let requests: Vec<RunRequest<'_>> = (0..n)
            .map(|i| RunRequest {
                config: &suggestion.config,
                machine: i,
                stream: hash_combine(round as u64, hash_combine(id.0, i as u64)),
            })
            .collect();
        let (outcomes, _) =
            executor::execute_batch(mode, sut, workload, &mut cluster, rng, &requests);
        let values: Vec<f64> = outcomes
            .iter()
            .map(|o| if o.crashed { crash_penalty } else { o.value })
            .collect();
        total += n;
        round += 1;
        let reported = crate::aggregate::AggregationPolicy::WorstCase.aggregate(&values, objective);
        // Told at the cluster budget so `best()` trusts these fully.
        optimizer.tell(&suggestion.config, reported, n);
        trace.push(IterationRecord {
            round,
            config_id: suggestion.config.id(),
            budget: n,
            new_samples: n,
            reported,
            unstable: false,
            best_so_far: optimizer.best().map(|(_, v)| v),
            cumulative_samples: total,
            model_error: None,
        });
    }
    let (best_config, best_value) = optimizer.best().expect("at least one round");
    TuningResult {
        best_config,
        best_value,
        trace,
        total_samples: total,
        n_unstable_configs: 0,
        n_configs,
        model_errors: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Region, VmSku};
    use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
    use tuna_optimizer::Objective;
    use tuna_sut::postgres::Postgres;

    fn cluster(seed: u64, n: usize) -> Cluster {
        Cluster::new(n, VmSku::d8s_v5(), Region::westus2(), seed)
    }

    fn smac(pg: &Postgres) -> Box<dyn Optimizer> {
        Box::new(SmacOptimizer::new(
            pg.space().clone(),
            Objective::Maximize,
            SmacParams {
                n_init: 5,
                n_random_candidates: 40,
                ..SmacParams::default()
            },
        ))
    }

    #[test]
    fn traditional_consumes_exactly_one_sample_per_round() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut rng = Rng::seed_from(1);
        let result = run_traditional(&pg, &w, smac(&pg), cluster(1, 1), 30, 1.0, &mut rng);
        assert_eq!(result.total_samples, 30);
        assert_eq!(result.trace.len(), 30);
        assert!(result.best_value > 300.0);
        assert!(result.trace.iter().all(|r| r.budget == 1));
    }

    #[test]
    fn naive_distributed_uses_full_cluster_per_round() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut rng = Rng::seed_from(2);
        let result = run_naive_distributed(
            ExecutionMode::Serial,
            &pg,
            &w,
            smac(&pg),
            cluster(2, 10),
            100,
            1.0,
            &mut rng,
        );
        assert_eq!(result.total_samples, 100);
        assert_eq!(result.trace.len(), 10);
        assert!(result.trace.iter().all(|r| r.new_samples == 10));
    }

    #[test]
    fn naive_distributed_parallel_matches_serial() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let run = |mode| {
            let mut rng = Rng::seed_from(5);
            run_naive_distributed(mode, &pg, &w, smac(&pg), cluster(5, 10), 80, 1.0, &mut rng)
        };
        let serial = run(ExecutionMode::Serial);
        for workers in [2, 4, 10] {
            assert_eq!(
                serial,
                run(ExecutionMode::Parallel { workers }),
                "naive distributed diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn best_so_far_improves_monotonically_traditional() {
        let pg = Postgres::new();
        let w = tuna_workloads::tpcc();
        let mut rng = Rng::seed_from(3);
        let result = run_traditional(&pg, &w, smac(&pg), cluster(3, 1), 40, 1.0, &mut rng);
        let mut prev = f64::NEG_INFINITY;
        for r in &result.trace {
            let b = r.best_so_far.unwrap();
            assert!(b >= prev - 1e-9, "best-so-far regressed");
            prev = b;
        }
    }
}
