//! TUNA — Tuning Unstable and Noisy Cloud Applications.
//!
//! The paper's sampling methodology (EuroSys '25), reproduced end to end:
//! TUNA sits between a black-box optimizer and a cluster of workers and
//! changes *what data the optimizer sees*:
//!
//! 1. [`scheduler`] — multi-fidelity task placement: a config's budget is
//!    the number of distinct nodes it has been measured on; samples taken
//!    at lower budgets are reused and new samples land on nodes the config
//!    has not visited (§4.1, §5.1).
//! 2. [`outlier`] — the unstable-configuration detector: relative range
//!    above 30% marks a config unstable; its reported performance is
//!    penalized so the optimizer avoids the region (§4.2).
//! 3. [`adjuster`] — the noise-adjuster model: a random forest over guest
//!    metrics + one-hot machine id predicts each sample's relative error
//!    and divides it out (Algorithms 1-2, §4.3).
//! 4. [`aggregate`] — the min (worst-case) aggregation policy (§4.4).
//!
//! [`executor`] turns each round's `(config, machine)` plan into trial
//! runs — serially or on a scoped-thread worker pool with one lane per
//! simulated worker, bit-identically (forked per-run RNGs, disjoint
//! machine lanes). [`pipeline`] wires these into the ask/run/tell loop of
//! Figure 7/10,
//! [`baselines`] implements the paper's comparison points (traditional
//! single-node sampling, extended traditional, naive distributed), and
//! [`deploy`]/[`experiment`] reproduce the evaluation protocol: tune, then
//! deploy the best config on ten fresh VMs and report the distribution.
//! [`campaign`] lifts that protocol into a declarative study grid:
//! (workload × method × seed) cells executed by a work-stealing runner
//! and streamed into a checksummed, resumable result store.
//!
//! # Examples
//!
//! ```
//! use tuna_core::experiment::{Experiment, Method};
//!
//! let exp = Experiment::quick_demo();
//! let summary = exp.run(Method::Tuna, 0);
//! assert!(summary.deployment.mean > 0.0);
//! ```

pub mod adjuster;
pub mod aggregate;
pub mod baselines;
pub mod campaign;
pub mod deploy;
pub mod executor;
pub mod experiment;
pub mod outlier;
pub mod pipeline;
pub mod report;
pub mod sample;
pub mod scheduler;

pub use adjuster::NoiseAdjuster;
pub use aggregate::AggregationPolicy;
pub use campaign::{Campaign, CampaignRunner, ResultStore};
pub use executor::{ExecStats, ExecutionMode};
pub use outlier::{OutlierDetector, Stability};
pub use pipeline::{TunaConfig, TunaPipeline};
