//! Microbenchmarks and application benchmarks for the measurement study.
//!
//! Mirrors the paper's §3.2 instrument set: per-component microbenchmarks
//! (sysbench prime verification for CPU, fio random writes for disk, Intel
//! MLC for memory bandwidth, OSBench thread creation for OS, stress-ng for
//! cache) plus end-to-end application benchmarks (pgbench read/write,
//! redis-benchmark write-heavy).

use crate::components::ComponentVec;
use crate::machine::Machine;

/// Whether larger or smaller benchmark readings are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchDirection {
    /// Higher readings are better (throughput, bandwidth).
    HigherIsBetter,
    /// Lower readings are better (latency, creation time).
    LowerIsBetter,
}

/// A benchmark from the longitudinal-study instrument set.
#[derive(Debug, Clone, PartialEq)]
pub struct Microbenchmark {
    /// Display name, e.g. `"sysbench-cpu-prime"`.
    pub name: &'static str,
    /// Component utilization the benchmark drives.
    pub demand: ComponentVec,
    /// Nominal reading on a perfectly nominal machine (units vary:
    /// events/s, MB/s, GB/s, microseconds, ...).
    pub nominal: f64,
    /// Reading direction.
    pub direction: BenchDirection,
    /// Whether this is an end-to-end application benchmark.
    pub application: bool,
}

impl Microbenchmark {
    /// CPU: sysbench prime verification (events/s).
    pub fn sysbench_cpu() -> Self {
        Microbenchmark {
            name: "sysbench-cpu-prime",
            demand: ComponentVec::new(1.0, 0.0, 0.005, 0.005, 0.003),
            nominal: 9_800.0,
            direction: BenchDirection::HigherIsBetter,
            application: false,
        }
    }

    /// Disk: fio random writes via libaio (MB/s).
    pub fn fio_randwrite() -> Self {
        Microbenchmark {
            name: "fio-randwrite-aio",
            demand: ComponentVec::new(0.04, 1.0, 0.02, 0.0, 0.01),
            nominal: 410.0,
            direction: BenchDirection::HigherIsBetter,
            application: false,
        }
    }

    /// Memory: Intel MLC max bandwidth 1:1 R/W (GB/s). The Figure 6 series
    /// sits in the 60-75 GB/s band.
    pub fn mlc_bandwidth() -> Self {
        Microbenchmark {
            name: "mlc-maxbw-1to1",
            demand: ComponentVec::new(0.15, 0.0, 1.0, 0.25, 0.0),
            nominal: 69.0,
            direction: BenchDirection::HigherIsBetter,
            application: false,
        }
    }

    /// OS: OSBench thread creation (microseconds per thread, lower is
    /// better).
    pub fn osbench_threads() -> Self {
        Microbenchmark {
            name: "osbench-create-threads",
            demand: ComponentVec::new(0.03, 0.0, 0.02, 0.01, 1.0),
            nominal: 18.5,
            direction: BenchDirection::LowerIsBetter,
            application: false,
        }
    }

    /// Cache: stress-ng cache stressor (bogo-ops/s).
    pub fn stressng_cache() -> Self {
        Microbenchmark {
            name: "stress-ng-cache",
            demand: ComponentVec::new(0.05, 0.0, 0.05, 1.0, 0.01),
            nominal: 1_450_000.0,
            direction: BenchDirection::HigherIsBetter,
            application: false,
        }
    }

    /// Application: pgbench read/write, dataset >> memory (tx/s).
    pub fn pgbench_rw() -> Self {
        Microbenchmark {
            name: "pgbench-rw",
            demand: ComponentVec::new(0.35, 0.85, 0.45, 0.35, 0.25),
            nominal: 6_200.0,
            direction: BenchDirection::HigherIsBetter,
            application: true,
        }
    }

    /// Application: redis-benchmark write-heavy (requests/s); saturates a
    /// core, so it is credit-sensitive on burstable SKUs.
    pub fn redis_benchmark() -> Self {
        Microbenchmark {
            name: "redis-benchmark-write",
            demand: ComponentVec::new(0.90, 0.05, 0.70, 0.60, 0.40),
            nominal: 143_000.0,
            direction: BenchDirection::HigherIsBetter,
            application: true,
        }
    }

    /// The five primary per-component microbenchmarks of Figure 4, in the
    /// figure's order (CPU, Disk, Mem, OS, Cache).
    pub fn primary_five() -> Vec<Microbenchmark> {
        vec![
            Self::sysbench_cpu(),
            Self::fio_randwrite(),
            Self::mlc_bandwidth(),
            Self::osbench_threads(),
            Self::stressng_cache(),
        ]
    }

    /// The full instrument set used by the study driver.
    pub fn catalog() -> Vec<Microbenchmark> {
        let mut v = Self::primary_five();
        v.push(Self::pgbench_rw());
        v.push(Self::redis_benchmark());
        v
    }

    /// Runs the benchmark for one measurement epoch on `machine` and
    /// returns the reading in the benchmark's native units.
    pub fn run(&self, machine: &mut Machine) -> f64 {
        let snap = machine.observe(&self.demand);
        let speed = self.demand.normalized().weighted_geomean(&snap.speeds);
        let scaled = machine.perf_scale().powf(0.5); // Microbenches partially scale with HW.
        match self.direction {
            BenchDirection::HigherIsBetter => self.nominal * speed * scaled,
            BenchDirection::LowerIsBetter => self.nominal / (speed * scaled),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use crate::sku::VmSku;
    use tuna_stats::online::Welford;
    use tuna_stats::rng::Rng;

    fn machine(seed: u64) -> Machine {
        Machine::provision(
            0,
            &VmSku::d8s_v5(),
            &Region::westus2(),
            &Rng::seed_from(seed),
        )
    }

    /// CoV of a benchmark across many freshly provisioned VMs.
    fn fleet_cov(bench: &Microbenchmark, n: usize) -> f64 {
        let parent = Rng::seed_from(1234);
        let sku = VmSku::d8s_v5();
        let region = Region::westus2();
        let mut w = Welford::new();
        for id in 0..n as u64 {
            let mut m = Machine::provision(id, &sku, &region, &parent);
            w.push(bench.run(&mut m));
        }
        w.cov()
    }

    #[test]
    fn component_covs_ordered_like_figure4() {
        let cpu = fleet_cov(&Microbenchmark::sysbench_cpu(), 800);
        let disk = fleet_cov(&Microbenchmark::fio_randwrite(), 800);
        let mem = fleet_cov(&Microbenchmark::mlc_bandwidth(), 800);
        let os = fleet_cov(&Microbenchmark::osbench_threads(), 800);
        let cache = fleet_cov(&Microbenchmark::stressng_cache(), 800);
        assert!(cpu < 0.01, "cpu CoV {cpu}");
        assert!(disk < 0.01, "disk CoV {disk}");
        assert!(mem > 0.02 && mem < 0.09, "mem CoV {mem}");
        assert!(os > 0.05 && os < 0.16, "os CoV {os}");
        assert!(cache > 0.08 && cache < 0.22, "cache CoV {cache}");
        assert!(cpu < disk && disk < mem && mem < os && os < cache);
    }

    #[test]
    fn readings_near_nominal() {
        let mut m = machine(5);
        for b in Microbenchmark::catalog() {
            let r = b.run(&mut m);
            assert!(
                r > b.nominal * 0.5 && r < b.nominal * 1.5,
                "{}: {r} vs nominal {}",
                b.name,
                b.nominal
            );
        }
    }

    #[test]
    fn lower_is_better_inverts() {
        // A slow machine should give *higher* thread-creation time.
        let parent = Rng::seed_from(9);
        let crowded_region = Region::centralus();
        let bench = Microbenchmark::osbench_threads();
        let mut slow_readings = Vec::new();
        let mut fast_readings = Vec::new();
        for id in 0..300 {
            let mut m = Machine::provision(id, &VmSku::d8s_v5(), &crowded_region, &parent);
            let crowded = m.is_crowded();
            let r = bench.run(&mut m);
            if crowded {
                slow_readings.push(r);
            } else {
                fast_readings.push(r);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&slow_readings) > avg(&fast_readings));
    }

    #[test]
    fn catalog_has_unique_names() {
        let names: Vec<&str> = Microbenchmark::catalog().iter().map(|b| b.name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn application_flags() {
        assert!(!Microbenchmark::sysbench_cpu().application);
        assert!(Microbenchmark::pgbench_rw().application);
    }
}
