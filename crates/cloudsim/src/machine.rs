//! A single simulated VM (or bare-metal node).

use crate::components::{Component, ComponentVec};
use crate::credits::CreditState;
use crate::region::Region;
use crate::sku::VmSku;
use tuna_stats::ar1::Ar1;
use tuna_stats::rng::{hash_combine, Rng};

/// Unique machine identity within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u64);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// What a measurement epoch observes on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Effective per-component speed factors (placement × interference ×
    /// credit throttling); ~1.0 is nominal.
    pub speeds: ComponentVec,
    /// The latent interference states this epoch (visible to the guest
    /// only through resource counters — the noise-adjuster's signal).
    pub interference: ComponentVec,
    /// The machine's placement factors.
    pub placement: ComponentVec,
    /// Whether burstable credits were depleted during this epoch.
    pub credits_depleted: bool,
    /// Whether the VM sits on a crowded host.
    pub crowded: bool,
    /// The epoch index at which this snapshot was taken.
    pub epoch: u64,
}

/// One simulated machine.
///
/// Each measurement epoch ([`Machine::observe`]) advances the per-component
/// AR(1) interference processes one step (≈ one 5-minute evaluation) and
/// returns the effective component speeds. Placement factors are drawn at
/// provisioning and stay fixed unless a rare live-migration redraws them.
#[derive(Debug, Clone)]
pub struct Machine {
    id: MachineId,
    sku: VmSku,
    region: Region,
    placement: ComponentVec,
    crowded: bool,
    interference: [Ar1; 5],
    credits: Option<CreditState>,
    rng: Rng,
    epoch: u64,
}

impl Machine {
    /// Provisions a machine: draws placement (possibly crowded) and
    /// initializes interference from its stationary distribution.
    ///
    /// Deterministic given `(parent, id)` — cluster seeds fan out from a
    /// single root.
    pub fn provision(id: u64, sku: &VmSku, region: &Region, parent: &Rng) -> Machine {
        let mut rng = parent.fork(hash_combine(0x4D41_4348, id));
        let crowded = rng.chance(region.crowded_prob);
        let placement = Self::draw_placement(sku, region, crowded, &mut rng);
        let interference = Self::draw_interference(sku, region, &mut rng);
        let credits = sku.burstable.map(|spec| {
            // VMs join the fleet at a random point of their credit cycle.
            let bal = rng.range_f64(0.0, 1.0) * spec.capacity;
            CreditState::with_balance(spec, bal)
        });
        Machine {
            id: MachineId(id),
            sku: sku.clone(),
            region: region.clone(),
            placement,
            crowded,
            interference,
            credits,
            rng,
            epoch: 0,
        }
    }

    fn draw_placement(sku: &VmSku, region: &Region, crowded: bool, rng: &mut Rng) -> ComponentVec {
        let mut placement = ComponentVec::ones();
        for c in Component::ALL {
            let cov = sku.placement_cov.get(c) * region.placement_scale;
            let factor = (1.0 + cov * rng.next_gaussian()).max(0.05);
            placement.set(c, factor);
        }
        if crowded {
            let heavy = 1.0 - region.crowded_penalty;
            let light = 1.0 - region.crowded_penalty * 0.2;
            placement.memory *= heavy;
            placement.cache *= heavy;
            placement.os *= heavy;
            placement.cpu *= light;
            placement.disk *= light;
        }
        placement
    }

    fn draw_interference(sku: &VmSku, region: &Region, rng: &mut Rng) -> [Ar1; 5] {
        let mk = |c: Component, rng: &mut Rng| {
            Ar1::new(
                sku.interference_phi,
                sku.interference_std.get(c) * region.interference_scale,
                rng,
            )
            .expect("valid AR(1) parameters")
        };
        [
            mk(Component::Cpu, rng),
            mk(Component::Disk, rng),
            mk(Component::Memory, rng),
            mk(Component::Cache, rng),
            mk(Component::Os, rng),
        ]
    }

    /// The machine id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// A stable 64-bit identity derived from the placement draw — used for
    /// deterministic per-(machine, config) decisions such as query-plan
    /// tipping, which must not depend on sampling order.
    pub fn identity(&self) -> u64 {
        let mut h = self.id.0 ^ 0x5EED_FACE;
        for c in Component::ALL {
            h = hash_combine(h, self.placement.get(c).to_bits());
        }
        h
    }

    /// The SKU.
    pub fn sku(&self) -> &VmSku {
        &self.sku
    }

    /// The region.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Placement factors.
    pub fn placement(&self) -> &ComponentVec {
        &self.placement
    }

    /// Whether the VM landed on a crowded host.
    pub fn is_crowded(&self) -> bool {
        self.crowded
    }

    /// Absolute performance scale of the SKU.
    pub fn perf_scale(&self) -> f64 {
        self.sku.perf_scale
    }

    /// Current epoch counter.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs one measurement epoch under the given per-component demand
    /// (utilization fractions in `[0, 1]`), advancing interference and the
    /// credit model, and returns the observed snapshot.
    pub fn observe(&mut self, demand: &ComponentVec) -> Snapshot {
        self.epoch += 1;

        // Rare live migration: new host, new neighbors.
        if self.sku.migration_prob > 0.0 && self.rng.chance(self.sku.migration_prob) {
            self.crowded = self.rng.chance(self.region.crowded_prob);
            self.placement =
                Self::draw_placement(&self.sku, &self.region, self.crowded, &mut self.rng);
            for p in &mut self.interference {
                p.reset(&mut self.rng);
            }
        }

        let mut interference = ComponentVec::default();
        for (i, c) in Component::ALL.into_iter().enumerate() {
            interference.set(c, self.interference[i].step(&mut self.rng));
        }

        // Credit accounting: burstable credits burn with CPU + disk load;
        // the work done per wall-clock window (and hence the burn) varies.
        let mut credits_depleted = false;
        if let Some(credits) = &mut self.credits {
            let util = 0.5 * (demand.cpu + demand.disk).clamp(0.0, 2.0);
            let burn_noise = (1.0 + 0.25 * self.rng.next_gaussian()).max(0.1);
            credits_depleted = credits.run_epoch(util, burn_noise);
        }

        let mut speeds = ComponentVec::ones();
        for c in Component::ALL {
            // Small per-measurement jitter on top of the structured noise.
            let jitter = 1.0 + 0.001 * self.rng.next_gaussian();
            let mut speed = self.placement.get(c) * (1.0 + interference.get(c)).max(0.05) * jitter;
            if credits_depleted && matches!(c, Component::Cpu | Component::Disk) {
                speed *= self
                    .credits
                    .as_ref()
                    .map(|cs| cs.spec().depleted_factor)
                    .unwrap_or(1.0);
            }
            speeds.set(c, speed.max(0.01));
        }

        Snapshot {
            speeds,
            interference,
            placement: self.placement,
            credits_depleted,
            crowded: self.crowded,
            epoch: self.epoch,
        }
    }

    /// Advances `steps` idle epochs (no demand, interference evolves,
    /// credits recover).
    pub fn advance(&mut self, steps: usize) {
        for _ in 0..steps {
            self.epoch += 1;
            for p in &mut self.interference {
                p.step(&mut self.rng);
            }
            if let Some(credits) = &mut self.credits {
                credits.idle_epoch();
            }
        }
    }

    /// Current credit balance, if burstable.
    pub fn credit_balance(&self) -> Option<f64> {
        self.credits.as_ref().map(|c| c.balance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_stats::online::Welford;

    fn demand() -> ComponentVec {
        ComponentVec::new(0.5, 0.5, 0.5, 0.5, 0.5)
    }

    #[test]
    fn provisioning_is_deterministic() {
        let parent = Rng::seed_from(1);
        let a = Machine::provision(7, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        let b = Machine::provision(7, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        assert_eq!(a.placement(), b.placement());
        assert_eq!(a.identity(), b.identity());
    }

    #[test]
    fn different_ids_get_different_placements() {
        let parent = Rng::seed_from(1);
        let a = Machine::provision(1, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        let b = Machine::provision(2, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        assert_ne!(a.placement(), b.placement());
        assert_ne!(a.identity(), b.identity());
    }

    #[test]
    fn speeds_hover_around_placement() {
        let parent = Rng::seed_from(3);
        let mut m = Machine::provision(0, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        let mut w = Welford::new();
        for _ in 0..2000 {
            let snap = m.observe(&demand());
            w.push(snap.speeds.cache / m.placement().cache);
        }
        // Mean relative speed ~1; dispersion ~ cache interference std (7.9%).
        assert!((w.mean() - 1.0).abs() < 0.02, "mean {}", w.mean());
        assert!((w.std_dev() - 0.0794).abs() < 0.03, "std {}", w.std_dev());
    }

    #[test]
    fn cpu_much_quieter_than_cache() {
        let parent = Rng::seed_from(4);
        let mut m = Machine::provision(0, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        let mut cpu = Welford::new();
        let mut cache = Welford::new();
        for _ in 0..3000 {
            let s = m.observe(&demand());
            cpu.push(s.speeds.cpu);
            cache.push(s.speeds.cache);
        }
        assert!(
            cache.cov() > cpu.cov() * 10.0,
            "cpu {} cache {}",
            cpu.cov(),
            cache.cov()
        );
    }

    #[test]
    fn burstable_depletes_under_load_and_recovers() {
        let parent = Rng::seed_from(5);
        let mut m = Machine::provision(0, &VmSku::b8ms(), &Region::westus2(), &parent);
        let heavy = ComponentVec::new(1.0, 1.0, 0.5, 0.5, 0.3);

        // Sustained bursting must deplete within a few epochs.
        let mut depleted_speed = None;
        for _ in 0..50 {
            let s = m.observe(&heavy);
            if s.credits_depleted {
                depleted_speed = Some(s.speeds.disk);
                break;
            }
        }
        let depleted_speed = depleted_speed.expect("sustained load must deplete credits");

        // Idle long enough and the bank refills; the first post-recovery
        // epoch runs at full speed.
        m.advance(300);
        let s = m.observe(&heavy);
        assert!(!s.credits_depleted, "credits should recover after idling");
        assert!(
            depleted_speed < s.speeds.disk * 0.6,
            "depletion must cut >40%: {depleted_speed} vs {}",
            s.speeds.disk
        );
    }

    #[test]
    fn non_burstable_never_depletes() {
        let parent = Rng::seed_from(6);
        let mut m = Machine::provision(0, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        for _ in 0..500 {
            assert!(!m.observe(&ComponentVec::ones()).credits_depleted);
        }
        assert_eq!(m.credit_balance(), None);
    }

    #[test]
    fn crowded_hosts_slower_in_crowded_region() {
        let parent = Rng::seed_from(7);
        let region = Region::centralus();
        let sku = VmSku::d8s_v5();
        let mut crowded_mem = Vec::new();
        let mut normal_mem = Vec::new();
        for id in 0..400 {
            let m = Machine::provision(id, &sku, &region, &parent);
            if m.is_crowded() {
                crowded_mem.push(m.placement().memory);
            } else {
                normal_mem.push(m.placement().memory);
            }
        }
        assert!(!crowded_mem.is_empty(), "centralus should crowd ~30%");
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&crowded_mem) < avg(&normal_mem));
    }

    #[test]
    fn epoch_advances() {
        let parent = Rng::seed_from(8);
        let mut m = Machine::provision(0, &VmSku::d8s_v5(), &Region::westus2(), &parent);
        assert_eq!(m.epoch(), 0);
        m.observe(&demand());
        m.advance(5);
        assert_eq!(m.epoch(), 6);
    }

    #[test]
    fn identity_stable_across_observations() {
        let parent = Rng::seed_from(9);
        let mut m = Machine::provision(3, &VmSku::c220g5(), &Region::cloudlab(), &parent);
        let before = m.identity();
        for _ in 0..10 {
            m.observe(&demand());
        }
        assert_eq!(m.identity(), before);
    }
}
