//! Longitudinal cloud measurement study driver (§3.2, Table 1).
//!
//! Replays the paper's methodology at configurable scale: long-running VMs
//! sampled repeatedly for the study duration versus fleets of short-lived
//! VMs (provision → measure → deprovision) that sample placement diversity,
//! across regions and SKUs. The report regenerates:
//!
//! - Figure 3 (burstable vs non-burstable application benchmarks),
//! - Figure 4 (component microbenchmark variance),
//! - Figure 6 (long- vs short-running memory bandwidth by month),
//! - Table 1's "This Work" row (instances / samples / duration).

use crate::machine::Machine;
use crate::microbench::Microbenchmark;
use crate::region::Region;
use crate::sku::VmSku;
use tuna_stats::online::Welford;
use tuna_stats::rng::{hash_combine, Rng};

/// VM lifespan class in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lifespan {
    /// Runs the entire study; seldom migrates.
    Long,
    /// Provisioned, measured once, deprovisioned.
    Short,
}

impl std::fmt::Display for Lifespan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lifespan::Long => write!(f, "long"),
            Lifespan::Short => write!(f, "short"),
        }
    }
}

/// Study scale and instrument configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Duration in weeks (paper: 68).
    pub weeks: usize,
    /// Regions to cover (paper: westus2, eastus).
    pub regions: Vec<Region>,
    /// SKUs to cover (paper: D8s_v5, B8ms).
    pub skus: Vec<VmSku>,
    /// Long-running VMs per (region, SKU) pair (paper: 3).
    pub long_vms_per_combo: usize,
    /// Short-lived VMs provisioned per week per (region, SKU) pair.
    pub short_vms_per_week: usize,
    /// Measurement sessions per long VM per week.
    pub long_sessions_per_week: usize,
    /// Idle epochs between long-VM sessions (decorrelates interference).
    pub gap_steps: usize,
    /// Benchmarks to run each session.
    pub benches: Vec<Microbenchmark>,
    /// Whether to retain raw samples (needed for distribution figures).
    pub keep_samples: bool,
    /// Root seed.
    pub seed: u64,
}

impl StudyConfig {
    /// A scaled-down default that finishes in well under a second but
    /// preserves the paper's proportions (~1/25 of the sample count).
    pub fn scaled_default() -> Self {
        StudyConfig {
            weeks: 68,
            regions: vec![Region::westus2(), Region::eastus()],
            skus: vec![VmSku::d8s_v5(), VmSku::b8ms()],
            long_vms_per_combo: 3,
            short_vms_per_week: 40,
            long_sessions_per_week: 21,
            gap_steps: 12,
            benches: Microbenchmark::catalog(),
            keep_samples: true,
            seed: 2023_0528,
        }
    }

    /// A fast configuration for unit tests.
    pub fn quick() -> Self {
        StudyConfig {
            weeks: 8,
            short_vms_per_week: 10,
            long_sessions_per_week: 6,
            ..Self::scaled_default()
        }
    }

    /// Full-scale configuration approximating the paper's 43k instances.
    pub fn full_scale() -> Self {
        StudyConfig {
            short_vms_per_week: 160,
            ..Self::scaled_default()
        }
    }
}

/// Identifies one measurement series.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeriesKey {
    /// Benchmark name.
    pub bench: String,
    /// Region name.
    pub region: String,
    /// SKU name.
    pub sku: String,
    /// VM lifespan class.
    pub lifespan: Lifespan,
}

/// Aggregates for one series.
#[derive(Debug, Clone)]
pub struct StudySeries {
    /// Series identity.
    pub key: SeriesKey,
    /// Whole-study statistics.
    pub overall: Welford,
    /// Per-month (4-week bucket) statistics, for Figure 6.
    pub monthly: Vec<Welford>,
    /// Raw samples (present when `keep_samples`).
    pub samples: Vec<f64>,
}

impl StudySeries {
    fn new(key: SeriesKey, months: usize) -> Self {
        StudySeries {
            key,
            overall: Welford::new(),
            monthly: vec![Welford::new(); months],
            samples: Vec::new(),
        }
    }

    fn push(&mut self, month: usize, value: f64, keep: bool) {
        self.overall.push(value);
        if let Some(m) = self.monthly.get_mut(month) {
            m.push(value);
        }
        if keep {
            self.samples.push(value);
        }
    }

    /// Samples normalized by the series mean ("relative performance" in
    /// Figures 3 and 4).
    pub fn relative_samples(&self) -> Vec<f64> {
        let mean = self.overall.mean();
        if mean == 0.0 {
            return Vec::new();
        }
        self.samples.iter().map(|s| s / mean).collect()
    }
}

/// Study output.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// All measurement series.
    pub series: Vec<StudySeries>,
    /// Total measurements taken.
    pub total_samples: u64,
    /// Total VM instances used (long + short).
    pub total_instances: u64,
    /// Study duration in weeks.
    pub weeks: usize,
}

impl StudyReport {
    /// Looks up a series.
    pub fn series(
        &self,
        bench: &str,
        region: &str,
        sku: &str,
        lifespan: Lifespan,
    ) -> Option<&StudySeries> {
        self.series.iter().find(|s| {
            s.key.bench == bench
                && s.key.region == region
                && s.key.sku == sku
                && s.key.lifespan == lifespan
        })
    }

    /// CoV of a series, if present.
    pub fn cov(&self, bench: &str, region: &str, sku: &str, lifespan: Lifespan) -> Option<f64> {
        self.series(bench, region, sku, lifespan)
            .map(|s| s.overall.cov())
    }

    /// Pools the short-lifespan CoV of `bench` on `sku` across all
    /// regions, weighting by sample count.
    pub fn pooled_short_cov(&self, bench: &str, sku: &str) -> Option<f64> {
        let mut pooled = Welford::new();
        for s in &self.series {
            if s.key.bench == bench && s.key.sku == sku && s.key.lifespan == Lifespan::Short {
                pooled.merge(&s.overall);
            }
        }
        if pooled.count() == 0 {
            None
        } else {
            Some(pooled.cov())
        }
    }
}

/// Runs the study.
pub fn run_study(config: &StudyConfig) -> StudyReport {
    let months = config.weeks.div_ceil(4);
    let root = Rng::seed_from(hash_combine(config.seed, 0x57D7_0001));
    let mut series: Vec<StudySeries> = Vec::new();
    let mut total_samples = 0u64;
    let mut total_instances = 0u64;

    let series_index = |series: &mut Vec<StudySeries>, key: SeriesKey| -> usize {
        if let Some(i) = series.iter().position(|s| s.key == key) {
            i
        } else {
            series.push(StudySeries::new(key, months));
            series.len() - 1
        }
    };

    // Resolve the per-bench series slot once per (region, sku, lifespan)
    // combination — the old path built a three-`String` key and ran a
    // linear key scan for *every sample*, which dominated the study
    // driver's measurement-generation loop at full scale.
    let resolve = |series: &mut Vec<StudySeries>,
                   region: &Region,
                   sku: &VmSku,
                   benches: &[Microbenchmark],
                   lifespan: Lifespan|
     -> Vec<usize> {
        benches
            .iter()
            .map(|bench| {
                series_index(
                    series,
                    SeriesKey {
                        bench: bench.name.to_string(),
                        region: region.name.clone(),
                        sku: sku.name.clone(),
                        lifespan,
                    },
                )
            })
            .collect()
    };

    let mut next_vm_id = 0u64;
    for region in &config.regions {
        for sku in &config.skus {
            // Long-running VMs: provisioned once, sampled all study long.
            let long_idx = resolve(&mut series, region, sku, &config.benches, Lifespan::Long);
            let mut long_vms: Vec<Machine> = (0..config.long_vms_per_combo)
                .map(|_| {
                    next_vm_id += 1;
                    total_instances += 1;
                    Machine::provision(next_vm_id, sku, region, &root)
                })
                .collect();
            for week in 0..config.weeks {
                let month = week / 4;
                for vm in &mut long_vms {
                    for _ in 0..config.long_sessions_per_week {
                        for (bench, &idx) in config.benches.iter().zip(&long_idx) {
                            let reading = bench.run(vm);
                            series[idx].push(month, reading, config.keep_samples);
                            total_samples += 1;
                        }
                        vm.advance(config.gap_steps);
                    }
                }
            }

            // Short-lived fleet: fresh placement per VM, one pass of the
            // instrument set, then deprovision.
            let short_idx = resolve(&mut series, region, sku, &config.benches, Lifespan::Short);
            for week in 0..config.weeks {
                let month = week / 4;
                for _ in 0..config.short_vms_per_week {
                    next_vm_id += 1;
                    total_instances += 1;
                    let mut vm = Machine::provision(next_vm_id, sku, region, &root);
                    for (bench, &idx) in config.benches.iter().zip(&short_idx) {
                        let reading = bench.run(&mut vm);
                        series[idx].push(month, reading, config.keep_samples);
                        total_samples += 1;
                    }
                }
            }
        }
    }

    // Pre-resolving series slots creates them before any sample lands;
    // drop the never-sampled ones so degenerate configs (zero weeks or
    // VMs) report exactly what the old lazy path did: no series.
    series.retain(|s| s.overall.count() > 0);

    StudyReport {
        series,
        total_samples,
        total_instances,
        weeks: config.weeks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_stats::summary;

    fn quick_report() -> StudyReport {
        run_study(&StudyConfig::quick())
    }

    #[test]
    fn counts_are_consistent() {
        let cfg = StudyConfig::quick();
        let r = quick_report();
        let combos = cfg.regions.len() * cfg.skus.len();
        let expected_instances =
            combos * (cfg.long_vms_per_combo + cfg.weeks * cfg.short_vms_per_week);
        assert_eq!(r.total_instances, expected_instances as u64);
        let per_session = cfg.benches.len();
        let expected_samples = combos
            * per_session
            * (cfg.long_vms_per_combo * cfg.weeks * cfg.long_sessions_per_week
                + cfg.weeks * cfg.short_vms_per_week);
        assert_eq!(r.total_samples, expected_samples as u64);
    }

    #[test]
    fn figure4_component_ordering_holds_for_short_fleet() {
        let r = quick_report();
        let cov = |bench: &str| {
            r.cov(bench, "westus2", "Standard_D8s_v5", Lifespan::Short)
                .unwrap()
        };
        let cpu = cov("sysbench-cpu-prime");
        let disk = cov("fio-randwrite-aio");
        let mem = cov("mlc-maxbw-1to1");
        let os = cov("osbench-create-threads");
        let cache = cov("stress-ng-cache");
        assert!(cpu < 0.012, "cpu {cpu}");
        assert!(disk < 0.012, "disk {disk}");
        assert!(
            cpu < mem && mem < cache,
            "cpu {cpu} mem {mem} cache {cache}"
        );
        assert!(mem > 0.02, "mem {mem}");
        assert!(os > 0.05, "os {os}");
        assert!(cache > 0.08, "cache {cache}");
    }

    #[test]
    fn burstable_apps_have_higher_variance_than_nonburstable() {
        let r = quick_report();
        let b = r
            .cov("pgbench-rw", "westus2", "Standard_B8ms", Lifespan::Short)
            .unwrap();
        let nb = r
            .cov("pgbench-rw", "westus2", "Standard_D8s_v5", Lifespan::Short)
            .unwrap();
        assert!(b > nb * 2.0, "burstable {b} vs non-burstable {nb}");
    }

    #[test]
    fn burstable_pgbench_is_bimodal() {
        // Figure 3: credit depletion creates a low-performance mode below
        // 60% of the mean that essentially never occurs on non-burstable.
        let r = quick_report();
        let bs = r
            .series("pgbench-rw", "westus2", "Standard_B8ms", Lifespan::Short)
            .unwrap()
            .relative_samples();
        let nb = r
            .series("pgbench-rw", "westus2", "Standard_D8s_v5", Lifespan::Short)
            .unwrap()
            .relative_samples();
        let low_frac = |v: &[f64]| v.iter().filter(|&&x| x < 0.75).count() as f64 / v.len() as f64;
        assert!(low_frac(&bs) > 0.05, "burstable low mode {}", low_frac(&bs));
        assert!(low_frac(&nb) < 0.01, "non-burstable {}", low_frac(&nb));
    }

    #[test]
    fn long_vms_see_less_dispersion_than_short_fleet() {
        // Figure 6's point: a single long-lived VM does not capture the
        // across-placement variance the short fleet sees.
        let r = quick_report();
        let long = r
            .cov(
                "mlc-maxbw-1to1",
                "westus2",
                "Standard_D8s_v5",
                Lifespan::Long,
            )
            .unwrap();
        let short = r
            .cov(
                "mlc-maxbw-1to1",
                "westus2",
                "Standard_D8s_v5",
                Lifespan::Short,
            )
            .unwrap();
        assert!(long < short, "long {long} vs short {short}");
    }

    #[test]
    fn monthly_series_cover_study() {
        let r = quick_report();
        let s = r
            .series(
                "mlc-maxbw-1to1",
                "westus2",
                "Standard_D8s_v5",
                Lifespan::Long,
            )
            .unwrap();
        assert_eq!(s.monthly.len(), 2); // 8 weeks = 2 months.
        assert!(s.monthly.iter().all(|m| m.count() > 0));
    }

    #[test]
    fn relative_samples_centred_on_one() {
        let r = quick_report();
        let s = r
            .series(
                "mlc-maxbw-1to1",
                "westus2",
                "Standard_D8s_v5",
                Lifespan::Short,
            )
            .unwrap();
        let rel = s.relative_samples();
        assert!(!rel.is_empty());
        assert!((summary::mean(&rel) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_study_reports_no_series() {
        // Zero weeks: nothing is ever sampled, so no series may exist
        // (pre-resolved slots must not leak out as empty series whose
        // cov() would read as Some(0.0) = "perfectly stable").
        let cfg = StudyConfig {
            weeks: 0,
            ..StudyConfig::quick()
        };
        let r = run_study(&cfg);
        assert_eq!(r.total_samples, 0);
        assert!(r.series.is_empty());
        assert_eq!(
            r.cov(
                "mlc-maxbw-1to1",
                "westus2",
                "Standard_D8s_v5",
                Lifespan::Short
            ),
            None
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = quick_report();
        let b = quick_report();
        assert_eq!(a.total_samples, b.total_samples);
        let sa = a
            .series("pgbench-rw", "eastus", "Standard_B8ms", Lifespan::Short)
            .unwrap();
        let sb = b
            .series("pgbench-rw", "eastus", "Standard_B8ms", Lifespan::Short)
            .unwrap();
        assert_eq!(sa.overall.mean(), sb.overall.mean());
    }
}
