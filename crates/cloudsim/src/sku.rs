//! VM SKU definitions calibrated to the paper's measurement study.

use crate::components::ComponentVec;
use crate::credits::CreditSpec;

/// A virtual-machine (or bare-metal) SKU.
///
/// The two noise channels per component:
/// - `placement_cov`: dispersion of the *placement factor* drawn once per
///   VM (which host, which neighbors on average) — dominates across-VM
///   variance for short-lived VM fleets;
/// - `interference_std`: stationary deviation of the within-VM AR(1)
///   interference process — what a single VM sees over time.
///
/// The paper's Figure 4 CoVs are the combination of both
/// (`sqrt(p^2 + i^2)`), which the defaults below reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSku {
    /// SKU name, e.g. `"Standard_D8s_v5"`.
    pub name: String,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Guest memory in GiB.
    pub memory_gb: f64,
    /// Across-placement coefficient of variation per component.
    pub placement_cov: ComponentVec,
    /// Stationary std of the AR(1) interference per component.
    pub interference_std: ComponentVec,
    /// AR(1) autocorrelation of interference (per 5-minute step).
    pub interference_phi: f64,
    /// Probability per step that a long-running VM live-migrates
    /// (redrawing its placement).
    pub migration_prob: f64,
    /// Credit model for burstable SKUs.
    pub burstable: Option<CreditSpec>,
    /// Absolute performance scale relative to D8s_v5 (bare metal is
    /// faster).
    pub perf_scale: f64,
    /// Absolute per-component speed relative to D8s_v5. Relative *noise*
    /// lives in `placement_cov`/`interference_std`; this captures that a
    /// bare-metal box has more cores and no hypervisor (fast CPU/OS) but a
    /// local SATA disk instead of a premium cloud SSD (slow random IO) —
    /// the reason the paper's Figure 13 shows 19x headroom over the
    /// default config on CloudLab.
    pub component_scale: ComponentVec,
}

impl VmSku {
    /// Azure `Standard_D8s_v5` with an SSDv2 data disk — the paper's main
    /// worker SKU. Component CoVs match §3.2: CPU 0.17%, disk 0.36%,
    /// memory 4.92%, OS 9.82%, cache 14.39%.
    pub fn d8s_v5() -> Self {
        VmSku {
            name: "Standard_D8s_v5".to_string(),
            vcpus: 8,
            memory_gb: 32.0,
            placement_cov: ComponentVec::new(0.0012, 0.0025, 0.040, 0.120, 0.080),
            interference_std: ComponentVec::new(0.0012, 0.0026, 0.0286, 0.0794, 0.0570),
            interference_phi: 0.85,
            migration_prob: 2e-5,
            burstable: None,
            perf_scale: 1.0,
            component_scale: ComponentVec::ones(),
        }
    }

    /// Azure `Standard_B8ms` — the burstable SKU of Figure 3: oversubscribed
    /// (wider placement spread) plus the credit-depletion bimodality.
    pub fn b8ms() -> Self {
        VmSku {
            name: "Standard_B8ms".to_string(),
            vcpus: 8,
            memory_gb: 32.0,
            placement_cov: ComponentVec::new(0.030, 0.040, 0.070, 0.150, 0.110),
            interference_std: ComponentVec::new(0.020, 0.030, 0.050, 0.090, 0.080),
            interference_phi: 0.85,
            migration_prob: 2e-5,
            burstable: Some(CreditSpec::b_series_default()),
            perf_scale: 0.92,
            component_scale: ComponentVec::uniform(0.92),
        }
    }

    /// CloudLab `c220g5` bare metal — no virtualization, no neighbors:
    /// tiny placement variance (part-to-part silicon differences) and very
    /// small temporal noise. Faster in absolute terms than the cloud VM
    /// (the paper's Figure 13 throughput is ~3x Figure 11a's).
    pub fn c220g5() -> Self {
        VmSku {
            name: "c220g5".to_string(),
            vcpus: 40,
            memory_gb: 192.0,
            placement_cov: ComponentVec::new(0.0015, 0.0030, 0.0080, 0.0120, 0.0060),
            interference_std: ComponentVec::new(0.0010, 0.0020, 0.0060, 0.0080, 0.0050),
            interference_phi: 0.7,
            migration_prob: 0.0,
            burstable: None,
            perf_scale: 3.0,
            component_scale: ComponentVec::new(4.5, 0.105, 3.75, 3.75, 6.0),
        }
    }

    /// Expected total CoV per component (placement and interference
    /// combined in quadrature) — what a large short-lived-VM study
    /// measures.
    pub fn expected_total_cov(&self) -> ComponentVec {
        self.placement_cov
            .zip(&self.interference_std, |p, i| (p * p + i * i).sqrt())
    }

    /// Whether the SKU is burstable.
    pub fn is_burstable(&self) -> bool {
        self.burstable.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::Component;

    #[test]
    fn d8s_v5_total_covs_match_paper() {
        // §3.2 reports CPU 0.17%, disk 0.36%, mem 4.92%, OS 9.82%,
        // cache 14.39%.
        let total = VmSku::d8s_v5().expected_total_cov();
        assert!((total.cpu - 0.0017).abs() < 3e-4, "cpu {}", total.cpu);
        assert!((total.disk - 0.0036).abs() < 4e-4, "disk {}", total.disk);
        assert!((total.memory - 0.0492).abs() < 3e-3, "mem {}", total.memory);
        assert!((total.os - 0.0982).abs() < 5e-3, "os {}", total.os);
        assert!((total.cache - 0.1439).abs() < 8e-3, "cache {}", total.cache);
    }

    #[test]
    fn component_cov_ordering_matches_paper() {
        // cpu < disk < memory < os < cache.
        let t = VmSku::d8s_v5().expected_total_cov();
        assert!(t.get(Component::Cpu) < t.get(Component::Disk));
        assert!(t.get(Component::Disk) < t.get(Component::Memory));
        assert!(t.get(Component::Memory) < t.get(Component::Os));
        assert!(t.get(Component::Os) < t.get(Component::Cache));
    }

    #[test]
    fn burstable_flag() {
        assert!(!VmSku::d8s_v5().is_burstable());
        assert!(VmSku::b8ms().is_burstable());
        assert!(!VmSku::c220g5().is_burstable());
    }

    #[test]
    fn bare_metal_quieter_than_cloud() {
        let bm = VmSku::c220g5().expected_total_cov();
        let vm = VmSku::d8s_v5().expected_total_cov();
        for c in [Component::Memory, Component::Cache, Component::Os] {
            assert!(bm.get(c) < vm.get(c), "{c} louder on bare metal");
        }
    }

    #[test]
    fn bare_metal_faster() {
        assert!(VmSku::c220g5().perf_scale > VmSku::d8s_v5().perf_scale);
    }
}
